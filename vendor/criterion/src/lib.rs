//! An offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim supplies the subset
//! of Criterion's API the workspace's bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` / `iter_custom`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! warmup-then-measure loop that prints mean per-iteration times. It produces honest
//! wall-clock numbers, not Criterion's statistical analysis; the point is that
//! `cargo bench` compiles, runs, and reports comparable figures without the network.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench target by [`criterion_main!`].
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets throughput metadata (accepted for API compatibility; not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!(
                "{}/{:<32} {:>12}  ({} iters, {} samples)",
                self.name,
                id,
                format_time(report.mean),
                report.iters,
                report.samples
            ),
            None => println!("{}/{id}: no measurement recorded", self.name),
        }
        self
    }

    /// Ends the group (Criterion-compatible no-op beyond formatting).
    pub fn finish(&mut self) {}
}

/// Throughput metadata (accepted but unused by this shim).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

struct Report {
    mean: Duration,
    iters: u64,
    samples: usize,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Pick an iteration count per sample aiming at measurement_time total.
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let total_iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
        let samples = self.sample_size.max(2);
        let iters_per_sample = (total_iters / samples as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        self.report = Some(Report {
            mean: total / iters.max(1) as u32,
            iters,
            samples,
        });
    }

    /// Times `routine`, which receives an iteration count and returns the elapsed time
    /// for exactly that many iterations (Criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        // Calibrate: one small batch to estimate per-iteration cost.
        let probe_iters = 16u64;
        let probe = routine(probe_iters).max(Duration::from_nanos(1));
        let per_iter = probe / probe_iters as u32;

        let budget = self.measurement_time.max(Duration::from_millis(1));
        let total_iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
        let samples = self.sample_size.max(2);
        let iters_per_sample = (total_iters / samples as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            total += routine(iters_per_sample);
            iters += iters_per_sample;
        }
        self.report = Some(Report {
            mean: total / iters.max(1) as u32,
            iters,
            samples,
        });
    }
}

fn format_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a bench group: `criterion_group!(benches, target_a, target_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        group.finish();
    }

    #[test]
    fn iter_custom_records_a_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for i in 0..iters {
                    black_box(i);
                }
                start.elapsed()
            })
        });
    }

    #[test]
    fn format_time_scales_units() {
        assert!(format_time(Duration::from_nanos(12)).contains("ns"));
        assert!(format_time(Duration::from_micros(12)).contains("µs"));
        assert!(format_time(Duration::from_millis(12)).contains("ms"));
        assert!(format_time(Duration::from_secs(2)).contains(" s"));
    }
}
