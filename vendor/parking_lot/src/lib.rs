//! An offline stand-in for the `parking_lot` crate, providing the subset of its API
//! this workspace uses (`Mutex`, `MutexGuard`, `Condvar`) with the same no-poisoning
//! semantics, implemented over `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace vendors this
//! shim instead of the real crate. The API is call-compatible for the operations used
//! here: `Mutex::lock` returns a guard directly (no `Result`), `Mutex::try_lock`
//! returns an `Option`, and `Condvar::wait` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with `parking_lot`-style (panic-free, non-poisoning) API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poisoning is ignored, as in
    /// `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access to the protected value through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
///
/// The inner `std` guard lives in an `Option` so [`Condvar::wait`] can move it out and
/// back while the caller holds the wrapper by `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with `parking_lot`-style `wait(&mut guard)` API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified, then reacquires
    /// the lock before returning. Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// As [`Condvar::wait`], but returns after `timeout` even if not notified. The
    /// result reports whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait ended by timeout.
#[derive(Copy, Clone, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            std::thread::sleep(Duration::from_millis(10));
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        t.join().unwrap();
    }
}
