//! Mutator-concurrent incremental zone collection (**GC v3**, DESIGN.md §11).
//!
//! A monolithic collection (`gc.rs`, the A6 ablation shape) pauses the triggering
//! mutator for the whole evacuation — the pause grows with the live set. The
//! incremental mode bounds the mutator pause by ~one scan block instead:
//!
//! 1. **Start (the measured pause)** — at an owner's safe point, the zone heaps'
//!    chunk lists are *flipped out* (the mutator resumes allocating into fresh,
//!    untagged chunks), the old chunks are stamped from-space (plus the quarantine
//!    rescue walk), and only the domain frame's **pins** are evacuated, through
//!    [`hh_sched::EvacEngine::seed_roots`]. The engine is left installed in
//!    `ActiveGc` and the mutator resumes.
//! 2. **Increments** — the remaining wavefront drains in bounded slices at later
//!    safe points (`Inner::incremental_tick` from `maybe_collect`, one scan
//!    block: `GC_INCREMENT_WORDS`) and on idle scheduler workers (the pool's
//!    idle hook, `GC_IDLE_INCREMENT_WORDS`). Safe-point drains are mutator
//!    pauses and feed the pause recorder; idle-worker drains cost only
//!    otherwise-wasted cycles, record no pause sample, and carry most of the
//!    wavefront.
//! 3. **Write barrier** — while a window is open, every mutating entry point
//!    forwards a from-space operand *before* the write
//!    (`Inner::gc_barrier` / `Inner::gc_barrier_value` via
//!    [`hh_sched::EvacEngine::barrier_forward`]): the copy exists and the
//!    forwarding pointer is installed before the write resolves, so the existing
//!    write-then-recheck fast paths re-apply the write on the to-space master and
//!    no update is ever lost. Reads need no barrier: `read_imm` fields are
//!    immutable (any copy serves), and `read_mut` already rechecks the forwarding
//!    pointer — a from-space object is frozen the moment its forwarding pointer
//!    is installed, because every subsequent write barriers first.
//! 4. **Finalize** — when an increment reports the wavefront empty, one thread —
//!    preferably an idle worker, since the quiescence handshake is not bounded
//!    like a drain slice (safe points only claim it through the
//!    `GC_FINALIZE_STALENESS` valve, or when forced) —
//!    claims the collection (`ActiveGc::finalizing`), runs the engine's
//!    closed/retired handshake (residual barrier traffic is drained, late barrier
//!    calls bounce to ordinary forwarding resolution), adopts the to-space chunk
//!    lists into the zone heaps *without* touching the mutator's current bump
//!    chunk ([`hh_heaps::Heap::adopt_collected_chunks`]), and retires the
//!    from-space.
//!
//! **Root-set completeness.** A window spans joins, so tasks forked *during* the
//! window may receive from-space pointers. Every pointer they store passes the
//! value barrier (`Inner::gc_barrier_value` in `write_ptr`), and every pin they
//! take is forwarded at `pin` time — so nothing reachable from a frame younger
//! than the window can keep a from-space address past retirement. Frames *older*
//! than the window cannot hold zone pointers: an owner starts with no live
//! descendants (it sits between its joins), and a borrower starts only under a
//! momentary exclusive steal-gate acquisition (no stolen task in flight), exactly
//! the sync collector's quiescence argument — but held only for the seed pause.
//! Unpinned Rust locals keep the established semantics: readable until the reuse
//! horizon, rescued by a later collection's quarantine walk if still reachable.

use crate::gc::HierZone;
use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{ChunkGcState, ChunkId, ObjPtr, GC_MAX_ZONE_SLOTS};
use hh_sched::{EvacEngine, SCAN_BLOCK_WORDS};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Word budget of one *safe-point* drain slice (one scan block): the knob that
/// bounds a mutator pause independently of the live-set size. Kept at a single
/// block so a safe-point drain holds the engine as briefly as possible — on an
/// oversubscribed machine every extra microsecond of hold time is another
/// chance to absorb a scheduler preemption into a recorded pause.
pub(crate) const GC_INCREMENT_WORDS: usize = SCAN_BLOCK_WORDS as usize;

/// Word budget of one *idle-worker* drain slice. Idle workers burn free cycles
/// and record no pause sample, so they take bigger bites (and carry most of
/// the wavefront) while safe-point slices stay minimal.
pub(crate) const GC_IDLE_INCREMENT_WORDS: usize = 4 * SCAN_BLOCK_WORDS as usize;

/// After this many safe-point drains have observed the wavefront empty without
/// any idle worker claiming the finalize, the next safe-point drain claims it
/// itself. Finalize (quiescence handshake + merge + retirement) is preferably
/// idle-worker work — it is not bounded like a drain slice — but a saturated
/// pool must not leave the window open indefinitely: at most one window exists
/// per runtime, so a lingering one blocks all future collections.
const GC_FINALIZE_STALENESS: usize = 64;

/// One in-flight incremental collection. Installed in `Inner::active_gc` between
/// the roots-only start pause and the finalize; shared (via `Arc`) with every
/// thread that drains an increment or takes the write barrier's cold path.
pub(crate) struct ActiveGc {
    /// The evacuation engine, in mutator-concurrent mode (one member slot plus
    /// the hidden barrier slot).
    pub(crate) engine: EvacEngine<HierZone>,
    /// Safe-point drains that observed the wavefront empty while the window
    /// stayed unclaimed (see `GC_FINALIZE_STALENESS`).
    empty_safepoint_ticks: AtomicUsize,
    /// The flipped-out from-space chunk lists, per zone heap — retired at
    /// finalize (the zone heaps' own lists were emptied at the flip).
    old_chunks: Vec<(HeapId, Vec<ChunkId>)>,
    /// Run tag of the zone's heaps; `end_run` force-finalizes a window whose run
    /// is ending, otherwise both semispaces would leak (neither is on a heap's
    /// chunk list during the window, so run-end disposal would miss them).
    pub(crate) zone_run_tag: u64,
    /// Claim flag: exactly one thread runs the finalize handshake.
    finalizing: AtomicBool,
}

impl ActiveGc {
    /// True once a thread has claimed finalization of this window.
    pub(crate) fn is_finalizing(&self) -> bool {
        self.finalizing.load(Ordering::Acquire)
    }
}

impl Inner {
    /// Starts an incremental collection of `zone` (resolved, non-empty), seeding
    /// `roots` (rewritten in place) as the complete current root set. Returns
    /// `false` — having collected nothing — when GC is disabled, the zone
    /// overflows the chunk tag's slot range, or another window is already open
    /// (at most one per runtime; contending triggers keep draining the open one
    /// from their own safe points instead, which is what makes it finish).
    ///
    /// The caller must guarantee root-set completeness (see the module docs):
    /// owners call between joins; borrowers call under a momentary exclusive
    /// steal-gate acquisition.
    pub(crate) fn start_incremental(&self, zone: Vec<HeapId>, roots: &mut [ObjPtr]) -> bool {
        if !self.config.enable_gc || zone.is_empty() || zone.len() > GC_MAX_ZONE_SLOTS {
            return false;
        }
        let Some(mut guard) = self.active_gc.try_lock() else {
            return false;
        };
        if guard.is_some() {
            return false;
        }
        let start = Instant::now();
        let store = Arc::clone(self.registry.store());
        let epoch = store.next_gc_epoch();
        let zone_run_tag = self.registry.heap(zone[0]).run_tag();
        // Flip: take every zone heap's chunks out. The mutator's next allocation
        // opens a fresh (untagged, hence zone-outside) chunk, so everything it
        // allocates from here on is correctly excluded from the collection.
        let old_chunks: Vec<(HeapId, Vec<ChunkId>)> = zone
            .iter()
            .map(|&h| (h, self.registry.heap(h).replace_chunks(Vec::new(), 0)))
            .collect();
        self.stamp_chunks(&store, &zone, epoch, &old_chunks);
        let engine = EvacEngine::new(
            self.hier_zone(&store, &zone),
            Arc::clone(&store),
            epoch,
            1,
            true,
        );
        // Evacuate the pins — the only part of the live set the mutator waits
        // for. Publication order: barriers must be fully armed (epoch, engine,
        // then the flag, Release) before any *other* thread can reach a
        // from-space object; until this function returns none can (owner: no
        // live descendants; borrower: steal gate held by the caller).
        engine.seed_roots(|fwd| {
            for r in roots.iter_mut() {
                *r = fwd(*r);
            }
        });
        let n_heaps = zone.len();
        self.active_gc_epoch.store(epoch, Ordering::Release);
        *guard = Some(Arc::new(ActiveGc {
            engine,
            empty_safepoint_ticks: AtomicUsize::new(0),
            old_chunks,
            zone_run_tag,
            finalizing: AtomicBool::new(false),
        }));
        self.incremental_active.store(true, Ordering::Release);
        drop(guard);
        self.fire_hook(crate::hooks::GcScheduleEvent::WindowStart { epoch });
        if n_heaps > 1 {
            self.counters
                .subtree_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        let pause = start.elapsed();
        self.counters.add_gc_time(pause);
        self.counters.record_gc_pause(pause);
        true
    }

    /// Drains one bounded increment of the open window, if any. Returns `true`
    /// when a window was open (work was done, or its finalize was observed /
    /// completed). `record_pause` distinguishes mutator safe-point drains (a
    /// real pause, sampled) from idle-worker drains (free cycles, GC time only).
    ///
    /// Safe-point drains take one scan block and — crucially — do **not** claim
    /// the finalize when they observe the wavefront empty: the finalize's
    /// quiescence handshake waits on other threads and is not bounded like a
    /// drain slice, so it belongs on an idle worker, where it pauses no
    /// mutator. A staleness valve (`GC_FINALIZE_STALENESS`) keeps a saturated
    /// pool from leaving the window open indefinitely.
    pub(crate) fn incremental_tick(&self, record_pause: bool) -> bool {
        let gc = {
            match &*self.active_gc.lock() {
                Some(g) => Arc::clone(g),
                None => return false,
            }
        };
        let start = Instant::now();
        let budget = if record_pause {
            GC_INCREMENT_WORDS
        } else {
            GC_IDLE_INCREMENT_WORDS
        };
        let wavefront_empty = gc.engine.drain_increment(budget);
        self.counters.gc_increments.fetch_add(1, Ordering::Relaxed);
        let may_finalize = wavefront_empty
            && (!record_pause
                || gc.empty_safepoint_ticks.fetch_add(1, Ordering::Relaxed)
                    >= GC_FINALIZE_STALENESS);
        if may_finalize && !gc.finalizing.swap(true, Ordering::AcqRel) {
            self.finalize_claimed(&gc, start, record_pause);
            return true;
        }
        let pause = start.elapsed();
        self.counters.add_gc_time(pause);
        if record_pause {
            self.counters.record_gc_pause(pause);
        }
        true
    }

    /// Force-finalizes the open window if `filter` accepts it, blocking until the
    /// window is closed. Used by the monolithic collector's prologue (any window:
    /// `collect_zone` requires a quiescent zone) and by `end_run` (the ending
    /// run's window: its semispaces are on no heap's chunk list and would leak).
    pub(crate) fn finalize_incremental_now(&self, filter: impl Fn(&ActiveGc) -> bool) {
        if !self.config.incremental_gc {
            return;
        }
        loop {
            let gc = {
                match &*self.active_gc.lock() {
                    Some(g) if filter(g) => Arc::clone(g),
                    _ => return,
                }
            };
            if gc.finalizing.swap(true, Ordering::AcqRel) {
                // Another thread claimed it; wait for the uninstall — the
                // *last* step of finalization, so the claimer's survivor
                // adoption and from-space retirement are complete before this
                // returns — then re-check (a different window may have opened
                // since). Waiting only for the claim flag, or for any earlier
                // finalize step, would let `end_run` dispose a tree the
                // claimer is still adopting survivors into (DESIGN.md §11.5).
                let mut waited = false;
                while {
                    let slot = self.active_gc.lock();
                    slot.as_ref().is_some_and(|g| Arc::ptr_eq(g, &gc))
                } {
                    if !waited {
                        waited = true;
                        self.fire_hook(crate::hooks::GcScheduleEvent::FinalizeWait {
                            epoch: gc.engine.epoch(),
                        });
                    }
                    std::thread::yield_now();
                }
                continue;
            }
            self.finalize_claimed(&gc, Instant::now(), true);
            return;
        }
    }

    /// Completes a claimed window: engine handshake, uninstall, to-space
    /// adoption, from-space retirement, statistics. `started` marks where this
    /// thread's pause began (its final drain, for `incremental_tick`).
    ///
    /// **Panic safety.** The schedule hooks fired here may panic (the
    /// fault-injection layer models crashes exactly that way). This thread
    /// owns the `finalizing` claim, and nothing ever clears that flag:
    /// unwinding without completing would leave the window installed forever,
    /// spinning every `finalize_incremental_now` waiter (`end_run`, monolithic
    /// collects) and pinning the run epoch — the epoch leak of ISSUE 10. So
    /// the hook calls run under an unwind guard that completes the remaining
    /// finalize steps *hook-free* before letting the panic continue. The
    /// hook-free tail itself (`finalize_merge_and_uninstall`) consults no
    /// hooks and must not panic.
    fn finalize_claimed(&self, gc: &Arc<ActiveGc>, started: Instant, record_pause: bool) {
        struct FinalizeGuard<'a> {
            inner: &'a Inner,
            gc: &'a Arc<ActiveGc>,
            engine_finalized: bool,
            completed: bool,
        }
        impl Drop for FinalizeGuard<'_> {
            fn drop(&mut self) {
                if self.completed {
                    return;
                }
                if !self.engine_finalized {
                    self.gc.engine.finalize();
                }
                self.inner.finalize_merge_and_uninstall(self.gc);
                self.inner
                    .counters
                    .gc_finalize_rescues
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut guard = FinalizeGuard {
            inner: self,
            gc,
            engine_finalized: false,
            completed: false,
        };
        let epoch = gc.engine.epoch();
        self.fire_hook(crate::hooks::GcScheduleEvent::FinalizeClaimed { epoch });
        // Residual drain + barrier quiescence. Barriers must stay answerable
        // until `retired` flips inside, so the active flag is cleared only after.
        gc.engine.finalize();
        guard.engine_finalized = true;
        self.fire_hook(crate::hooks::GcScheduleEvent::FinalizePreMerge { epoch });
        self.finalize_merge_and_uninstall(gc);
        guard.completed = true;
        let pause = started.elapsed();
        self.counters.add_gc_time(pause);
        if record_pause {
            self.counters.record_gc_pause(pause);
        }
        // Fired after the guard is disarmed: the window is fully closed, so a
        // panic here (the `finalize-done` fault site) is pure propagation.
        self.fire_hook(crate::hooks::GcScheduleEvent::FinalizeDone { epoch });
    }

    /// Hook-free tail of a claimed finalize: survivor adoption, from-space
    /// retirement, window uninstall (LAST), collection counters. Shared by the
    /// normal `finalize_claimed` path and its unwind guard, which replays the
    /// tail after a hook panic without re-firing hooks (re-firing could inject
    /// a second fault and turn recovery into an abort loop).
    fn finalize_merge_and_uninstall(&self, gc: &Arc<ActiveGc>) {
        let store = self.registry.store();
        let outcome = gc.engine.merge();
        for ((heap, old), (chunks, words)) in gc.old_chunks.iter().zip(outcome.per_slot) {
            // A zone heap may have been joined away mid-window (a borrower-start
            // descendant whose splice happened after the flip): its survivors
            // belong to whatever heap holds its objects now.
            let live = self.registry.resolve(*heap);
            if !chunks.is_empty() {
                self.registry
                    .heap(live)
                    .adopt_collected_chunks(chunks, words);
            }
            // From-space chunks carry the run's own tag, so under overlapping
            // runs they quarantine behind this run's epoch, not a conservative
            // latest-issued stamp. A chunk whose tag now reads `ToSpace` was
            // promoted in place (a dedicated large-object chunk handed over
            // wholesale) — it was just adopted above and must not be retired.
            for &c in old {
                if matches!(
                    store.chunk(c).gc_state(gc.engine.epoch()),
                    ChunkGcState::ToSpace(_)
                ) {
                    continue;
                }
                store.retire_chunk(c);
            }
        }
        // Uninstall LAST — after survivor adoption and from-space retirement.
        // `finalize_incremental_now`'s waiter (the `end_run` path) unblocks on
        // this uninstall; doing it any earlier let an ending run dispose its
        // heap tree and advance the epoch-reclamation watermark while this
        // thread was still adopting its survivors, recycling the chunks those
        // survivors point into under a younger run (DESIGN.md §11.5). Barriers
        // taken between `engine.finalize()` and here get `None` from the
        // retired engine and fall back to the forwarding chain, so keeping the
        // window installed through the adopt/retire phase is benign.
        {
            let mut slot = self.active_gc.lock();
            debug_assert!(
                slot.as_ref().is_some_and(|g| Arc::ptr_eq(g, gc)),
                "finalizing a window that is not installed"
            );
            *slot = None;
            self.incremental_active.store(false, Ordering::Release);
        }
        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        self.counters
            .gc_incremental_collections
            .fetch_add(1, Ordering::Relaxed);
        if outcome.steal_blocks > 0 {
            self.counters
                .gc_steal_blocks
                .fetch_add(outcome.steal_blocks, Ordering::Relaxed);
        }
        self.counters
            .gc_copied_words
            .fetch_add(outcome.copied_words, Ordering::Relaxed);
        // The debug invariant walk (`verify_heaps`) is deliberately skipped here:
        // it requires a quiescent zone, and at an incremental finalize the zone's
        // mutator is running on another frame (or another thread, for idle-worker
        // finalizes). The stress lane covers the same ground with the end-of-run
        // `check_disentangled` walk instead.
    }

    /// The write barrier's object hook: before a mutating operation touches
    /// `obj`, forward it out of the from-space so the operation's own
    /// write-then-recheck path lands on the to-space master. Two-level fast
    /// path: a plain config test (compiled shape, free when the feature is off),
    /// then one atomic flag load per operation while it is on.
    #[inline]
    pub(crate) fn gc_barrier(&self, obj: ObjPtr) {
        if !self.config.incremental_gc {
            return;
        }
        if obj.is_null() || !self.incremental_active.load(Ordering::Acquire) {
            return;
        }
        self.gc_barrier_slow(obj);
    }

    /// The write barrier's value hook: as `Inner::gc_barrier`, but returns the
    /// forwarded pointer so the caller *stores* a retained (to-space) address —
    /// used where a pointer is published into a place the collector will not
    /// revisit (`write_ptr`'s value operand, `pin` slots of mid-window frames).
    #[inline]
    pub(crate) fn gc_barrier_value(&self, p: ObjPtr) -> ObjPtr {
        if !self.config.incremental_gc {
            return p;
        }
        if p.is_null() || !self.incremental_active.load(Ordering::Acquire) {
            return p;
        }
        self.gc_barrier_value_slow(p)
    }

    #[cold]
    fn gc_barrier_slow(&self, obj: ObjPtr) {
        let _ = self.gc_barrier_value_slow(obj);
    }

    /// Cold path: only reached while a window is open. One chunk-tag load
    /// filters out everything outside the zone before any lock is touched.
    #[cold]
    fn gc_barrier_value_slow(&self, p: ObjPtr) -> ObjPtr {
        let store = self.registry.store();
        let epoch = self.active_gc_epoch.load(Ordering::Acquire);
        let chunk = store.chunk(p.chunk());
        // A stale epoch (a window that closed between the flag load and here)
        // decodes as `Outside`: the closed window needed no barrier, and a chunk
        // stamped by a *newer* window reads that window's epoch or `Outside`
        // conservatively — the re-check under the engine's own epoch below
        // settles it.
        if !matches!(chunk.gc_state(epoch), ChunkGcState::FromSpace(_)) {
            return p;
        }
        let gc = {
            match &*self.active_gc.lock() {
                Some(g) => Arc::clone(g),
                None => return resolve_fwd_chain(store, p),
            }
        };
        if gc.engine.epoch() != epoch
            && !matches!(
                chunk.gc_state(gc.engine.epoch()),
                ChunkGcState::FromSpace(_)
            )
        {
            return resolve_fwd_chain(store, p);
        }
        match gc.engine.barrier_forward(p) {
            Some(fwd) => fwd,
            // Retired between the flag load and the call: the evacuation is
            // complete, so ordinary forwarding resolution takes over.
            None => resolve_fwd_chain(store, p),
        }
    }
}

/// Chases a forwarding chain to its end (no compression — this is a rare
/// post-retirement bounce; readability of every hop holds until the reuse
/// horizon).
fn resolve_fwd_chain(store: &hh_objmodel::ChunkStore, mut p: ObjPtr) -> ObjPtr {
    loop {
        let v = store.view(p);
        if !v.has_fwd() {
            return p;
        }
        p = v.fwd();
    }
}
