//! # hh-runtime — hierarchical memory management for mutable state
//!
//! This crate is the Rust reproduction of the primary contribution of Guatto, Westrick,
//! Raghunathan, Acar and Fluet, *Hierarchical Memory Management for Mutable State*
//! (PPoPP 2018): a task-parallel runtime whose memory is organized as a hierarchy of
//! heaps mirroring the fork/join task tree, extended with support for **mutable** data.
//!
//! The key invariant is *disentanglement*: a pointer stored in a heap may only point
//! into the same heap or an ancestor heap. Purely functional programs maintain this for
//! free; mutation can break it (an update can create a *down* or *cross* pointer). The
//! runtime preserves the invariant by **promotion**: before a pointer write would create
//! a down-pointer, the pointee (and everything reachable from it) is copied up into the
//! target's heap. Copies of an object are linked by forwarding pointers; the shallowest
//! copy is the **master copy** and all mutable accesses are redirected to it.
//!
//! Module map (↔ paper):
//!
//! | module       | paper                                                            |
//! |--------------|------------------------------------------------------------------|
//! | [`ctx`]      | Figure 3 high-level operations, Figure 5 `forkjoin`                |
//! | [`ops`]      | Figure 6 `findMaster`, `readMutable`, `writeNonptr`; Figure 7 `writePtr` / `writePromote` |
//! | [`promote`]  | Figure 7 `promote` (batched Cheney pass + path compression, v2)    |
//! | [`gc`]       | Figure 14 / Appendix A promotion-aware copy collection             |
//! | [`invariants`] | debug-build disentanglement / forwarding-acyclicity checker      |
//! | [`runtime`]  | runtime construction, scheduler integration, statistics            |
//! | [`config`]   | tunables (workers, chunk size, GC threshold, fast-path ablations)  |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod ctx;
pub mod gc;
pub mod hooks;
pub mod incremental;
pub mod invariants;
pub mod ops;
pub mod promote;
pub mod runtime;

pub use config::HhConfig;
pub use ctx::HhCtx;
pub use hooks::{FaultPlan, FaultSite, GcScheduleHooks};
pub use runtime::{DisentanglementReport, HhRuntime};

pub use hh_api::{ParCtx, Runtime};
pub use hh_heaps::{EntanglementViolation, HeapId};
pub use hh_objmodel::{ObjKind, ObjPtr};
