//! Debug-build invariant checking (promotion v2).
//!
//! When [`crate::HhConfig::check_invariants`] is set **and** the build carries
//! `debug_assertions`, the runtime re-verifies its two structural invariants at the
//! moments they could break:
//!
//! * **after every promotion** — each freshly promoted copy must be disentangled
//!   (none of its pointer fields may reach a heap that is not an ancestor-or-self of
//!   the promotion target, in particular no heap strictly deeper than the target)
//!   and every forwarding chain touched must be acyclic;
//! * **after every collection** — the collected zone's surviving objects must hold
//!   only ancestor-or-self pointers, and no survivor may carry a forwarding cycle.
//!
//! Both checks run only over memory the calling task has exclusive access to at that
//! point (the promotion holds WRITE locks on the whole path and inspects only the
//! copies it just made; a collection's zone is quiescent by the GC gating argument of
//! DESIGN.md §4.2/§5), so they are race-free even under heavy stealing. Violations
//! panic with the offending objects, which is exactly what the stress harness
//! (`crates/core/tests/stress.rs`) wants: a seed that corrupts the hierarchy fails
//! loudly at the operation that corrupted it, not at some later checksum.
//!
//! In release builds (`debug_assertions` off) every entry point is a no-op branch on
//! a constant, so the checker costs nothing.

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{ChunkStore, ObjPtr, ObjView};

impl Inner {
    /// True if the invariant checker should run: debug build + config opt-in
    /// (the default config opts in exactly when `debug_assertions` are on).
    #[inline]
    pub(crate) fn invariants_enabled(&self) -> bool {
        cfg!(debug_assertions) && self.config.check_invariants
    }

    /// Post-promotion check over the pass's fresh copies (see module docs). The
    /// caller still holds the WRITE locks of the promotion path, so the copies are
    /// unreachable by any concurrent `findMaster`; the check must therefore not take
    /// any heap lock itself (it only reads registry metadata and chunk words).
    pub(crate) fn verify_promotion(&self, target: HeapId, copies: &[ObjPtr]) {
        if !self.invariants_enabled() {
            return;
        }
        let store: &ChunkStore = self.registry.store();
        let target = self.registry.resolve(target);
        for &copy in copies {
            let v = store.view(copy);
            assert_fwd_acyclic(store, copy);
            for f in 0..v.n_ptr() {
                let p = v.field_ptr(f);
                if p.is_null() {
                    continue;
                }
                assert_fwd_acyclic(store, p);
                let to_heap = self.registry.heap_of(p);
                assert!(
                    self.registry.is_ancestor_or_self(to_heap, target),
                    "promotion invariant violated: copy {copy:?} (target heap {target:?}, \
                     depth {}) field {f} points to {p:?} in non-ancestor heap {to_heap:?} \
                     (depth {}); holder {}; target {}",
                    self.registry.depth(target),
                    self.registry.depth(to_heap),
                    store.chunk(copy.chunk()).forensics(),
                    store.chunk(p.chunk()).forensics(),
                );
            }
        }
    }

    /// Post-collection check over the collected zone (see module docs): every
    /// survivor's pointer fields must stay within the survivor's heap or an
    /// ancestor, and no survivor may carry a forwarding cycle. The zone is quiescent
    /// while this runs (same precondition as the collection itself).
    pub(crate) fn verify_heaps(&self, zone: &[HeapId]) {
        if !self.invariants_enabled() {
            return;
        }
        let store: &ChunkStore = self.registry.store();
        for &h in zone {
            let heap = self.registry.heap(h);
            if !heap.is_live() {
                continue;
            }
            for chunk_id in heap.chunks() {
                let chunk = store.chunk(chunk_id);
                let mut off = 0usize;
                while off < chunk.used() {
                    let view = ObjView::new(chunk, off as u32);
                    let header = view.header();
                    if off + header.size_words() > chunk.used() {
                        // Raw bump-gap tail: a failed `try_bump` advances the
                        // cursor past the last real object (benign over-bump), so
                        // the words from here on are unwritten — not objects.
                        break;
                    }
                    let obj = ObjPtr::new(chunk_id, off as u32);
                    assert_fwd_acyclic(store, obj);
                    for f in 0..header.n_ptr() {
                        let p = view.field_ptr(f);
                        if p.is_null() {
                            continue;
                        }
                        let to_heap = self.registry.heap_of(p);
                        assert!(
                            self.registry.is_ancestor_or_self(to_heap, h),
                            "collection invariant violated: object {obj:?} in heap {h:?} \
                             (depth {}) field {f} points to {p:?} in non-ancestor heap \
                             {to_heap:?} (depth {}); holder {}; target {}",
                            heap.depth(),
                            self.registry.depth(to_heap),
                            chunk.forensics(),
                            store.chunk(p.chunk()).forensics(),
                        );
                    }
                    off += header.size_words();
                }
            }
        }
    }
}

/// Panics if the forwarding chain starting at `from` contains a cycle (Floyd's
/// tortoise-and-hare, so the check is O(chain length) with no allocation).
fn assert_fwd_acyclic(store: &ChunkStore, from: ObjPtr) {
    let step = |p: ObjPtr| -> Option<ObjPtr> {
        let v = store.view(p);
        let next = v.fwd();
        if next.is_null() {
            None
        } else {
            Some(next)
        }
    };
    let mut slow = from;
    let mut fast = from;
    loop {
        let Some(f1) = step(fast) else { return };
        let Some(f2) = step(f1) else { return };
        fast = f2;
        slow = step(slow).expect("tortoise cannot outrun the hare");
        assert!(
            slow != fast,
            "forwarding cycle detected on the chain starting at {from:?}"
        );
    }
}
