//! Runtime configuration.

/// Tunables of the hierarchical-heap runtime.
///
/// The two `enable_*` flags exist for the ablation experiments (DESIGN.md, A1): they
/// disable the single-instruction / few-instruction fast paths of Figure 8 so the cost
/// of always taking the locking slow path can be measured.
#[derive(Clone, Debug)]
pub struct HhConfig {
    /// Number of scheduler worker threads.
    pub n_workers: usize,
    /// Default chunk size in words (larger objects get dedicated chunks).
    pub chunk_words: usize,
    /// A task heap whose allocation volume exceeds this many words becomes eligible for
    /// collection at the next safe point.
    pub gc_threshold_words: usize,
    /// Size of the GC team a collection runs on (GC v2 / ablation A4).
    ///
    /// `0` (the default) means "the pool size": the triggering worker plus up to
    /// `n_workers - 1` drafted helpers — parked or idle pool workers that pick up
    /// the collection's helper jobs instead of sleeping through the pause. `1`
    /// preserves the v1 single-threaded collection shape (no team, no forwarding
    /// CAS) as the A4 ablation baseline; values above the pool size are clamped.
    /// Helpers are best-effort — a busy pool contributes fewer members and the
    /// collection still completes. See DESIGN.md §9.
    pub gc_workers: usize,
    /// Master switch for garbage collection (disabled for some microbenchmarks).
    pub enable_gc: bool,
    /// Enable the fast path of `readMutable` / `writeNonptr` (skip `findMaster` when the
    /// object has no forwarding pointer).
    pub enable_read_write_fast_path: bool,
    /// Enable the fast path of `writePtr` (skip master lookup and depth comparison when
    /// the object is in the current task's heap and has no forwarding pointer).
    pub enable_write_ptr_fast_path: bool,
    /// Cap, in words, on the chunk store's free pool (memory v2).
    ///
    /// Chunks retired by collections flow back to the allocator through size-classed
    /// free lists once they pass the reuse horizon (see DESIGN.md §5). When the free
    /// pool would exceed this many words, the excess chunks are released instead of
    /// kept for reuse, bounding the runtime's resident footprint between bursts.
    pub max_free_words: usize,
    /// Use the batched transitive promotion pass (promotion v2 / ablation A3).
    ///
    /// When enabled (the default), a promoting pointer write evacuates the pointee's
    /// reachable closure in one Cheney-style pass with a single allocation cursor on
    /// the target heap (one allocation-lock acquisition and one counter flush per
    /// *pass*), and resolutions compress forwarding chains as they walk them. When
    /// disabled, the v1 shape is used: one registry allocation, one heap-statistics
    /// update, and two counter increments per *object*. The flag exists so the
    /// `promote_overhead` bench and `repro promote` can quantify the difference.
    pub batched_promotion: bool,
    /// Run the debug-build invariant checker (promotion v2).
    ///
    /// When enabled **and** the build has `debug_assertions`, the runtime verifies
    /// after every promotion that each freshly promoted copy is disentangled (no
    /// field points into a heap strictly deeper than the promotion target) with an
    /// acyclic forwarding chain, and after every collection that the collected zone
    /// contains no down-pointers and no forwarding cycles. Violations panic with the
    /// offending objects. Defaults to on in debug builds (so every debug `cargo
    /// test` run is checked) and compiles to nothing in release builds.
    pub check_invariants: bool,
    /// Reclaim retired chunks per run via the epoch watermark (ablation A5 when
    /// off).
    ///
    /// When enabled (the default), every `run` draws a monotone epoch from the
    /// store's `RunEpochs`, its heap tree is disposed *at run end*, and the
    /// quarantine is drained up to the min-active-epoch watermark — so one run's
    /// chunks recycle while other runs are still mid-flight (the quiescence-free
    /// horizon a server needs; see DESIGN.md §5). When disabled, the v2 global
    /// horizon is used: completed runs' trees are disposed at the next `run` start
    /// that observes **no** active run, which under sustained overlapping load
    /// never happens — the A5 ablation exists to measure exactly that degradation.
    pub epoch_reclaim: bool,
    /// Server mode: promote the "no `ObjPtr` crosses runs" rule from documented
    /// convention to a debug assertion. Every mutable-access entry point checks (in
    /// debug builds) that the object's chunk belongs to the accessing run — a stale
    /// pointer into a chunk that was quarantined or recycled to another run panics
    /// instead of silently resolving through recycled memory. Off by default (the
    /// check costs one atomic load per access).
    pub server_mode: bool,
    /// Collect owned leaf heaps incrementally, concurrent with their mutator
    /// (GC v3 / ablation A6 when off).
    ///
    /// When enabled, an owner-triggered leaf collection pauses the mutator only to
    /// evacuate its pinned roots; the mutator then resumes while the remaining live
    /// set drains in bounded increments (~one scan block each) at subsequent safe
    /// points and on idle scheduler workers. A write barrier on every mutating
    /// entry point forwards from-space objects on access, so the mutator never
    /// writes to a stale copy. The zone is retired once the wavefront is drained
    /// and in-flight barrier accesses have quiesced. Off by default (the A6
    /// ablation: monolithic stop-the-mutator collections, GC v2 shape) because the
    /// barrier costs one atomic flag load per mutating operation even when no
    /// collection is active. See DESIGN.md §11.
    pub incremental_gc: bool,
    /// Create child heaps lazily, at steal time (scheduler v2 / ablation A2).
    ///
    /// When enabled (the default), `join` does not create heaps up front: both
    /// branches of an unstolen fork run in the parent's heap — the branch that was not
    /// stolen executes sequentially on the forking worker, so this is observably the
    /// sequential execution — and a fresh child heap is created only when a thief
    /// actually takes the right branch. Skipped creations are counted in the
    /// `heaps_elided` statistic. When disabled, every fork eagerly creates two child
    /// heaps and splices them back at the join, as in the v1 runtime; the flag exists
    /// so that ablation and the promotion-machinery tests can pin the eager shape.
    pub lazy_child_heaps: bool,
}

impl HhConfig {
    /// Configuration with `n_workers` workers and default memory parameters.
    pub fn with_workers(n_workers: usize) -> Self {
        HhConfig {
            n_workers,
            ..Default::default()
        }
    }
}

impl Default for HhConfig {
    fn default() -> Self {
        HhConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            chunk_words: 8 * 1024,
            gc_threshold_words: 4 * 1024 * 1024,
            gc_workers: 0,
            enable_gc: true,
            enable_read_write_fast_path: true,
            enable_write_ptr_fast_path: true,
            max_free_words: 64 * 1024 * 1024, // 512 MiB of reusable chunk memory
            batched_promotion: true,
            check_invariants: cfg!(debug_assertions),
            epoch_reclaim: true,
            server_mode: false,
            incremental_gc: false,
            lazy_child_heaps: true,
        }
    }
}

impl HhConfig {
    /// Configuration with the v1 eager per-fork child heaps (see
    /// [`HhConfig::lazy_child_heaps`]). Used by the ablation experiments and by tests
    /// that exercise the promotion machinery deterministically (an unstolen branch
    /// under the lazy policy allocates in the parent's heap, so its publishing writes
    /// are same-heap and promote nothing).
    pub fn eager_heaps(n_workers: usize) -> Self {
        HhConfig {
            n_workers,
            lazy_child_heaps: false,
            ..Default::default()
        }
    }

    /// Configuration with mutator-concurrent incremental leaf collections (GC v3,
    /// see [`HhConfig::incremental_gc`]). The default shape — monolithic
    /// stop-the-mutator collections — is the A6 ablation this contrasts with.
    pub fn incremental(n_workers: usize) -> Self {
        HhConfig {
            n_workers,
            incremental_gc: true,
            ..Default::default()
        }
    }

    /// Configuration with the v2 global reuse horizon (ablation A5, see
    /// [`HhConfig::epoch_reclaim`]): retired chunks are reclaimed only at a `run`
    /// start with no other run active. Under overlapping runs recycling degrades to
    /// nothing — the contrast the `serve` experiment measures.
    pub fn global_horizon(n_workers: usize) -> Self {
        HhConfig {
            n_workers,
            epoch_reclaim: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = HhConfig::default();
        assert!(c.n_workers >= 1);
        assert!(c.chunk_words >= 16);
        assert!(c.gc_threshold_words > c.chunk_words);
        assert!(c.max_free_words > c.gc_threshold_words);
        assert!(c.enable_gc && c.enable_read_write_fast_path && c.enable_write_ptr_fast_path);
        assert!(c.batched_promotion);
        assert_eq!(c.gc_workers, 0, "default GC team = pool size");
        assert!(
            !c.incremental_gc,
            "incremental collection is opt-in; the default shape is the A6 ablation"
        );
        assert!(HhConfig::incremental(2).incremental_gc);
        assert_eq!(
            c.check_invariants,
            cfg!(debug_assertions),
            "invariant checking defaults to on exactly in debug builds"
        );
    }

    #[test]
    fn with_workers_overrides_only_workers() {
        let c = HhConfig::with_workers(3);
        assert_eq!(c.n_workers, 3);
        assert_eq!(c.chunk_words, HhConfig::default().chunk_words);
    }
}
