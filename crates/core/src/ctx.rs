//! The per-task context: Figure 3's operations bound to one task and its heap.

use crate::runtime::Inner;
use hh_api::ParCtx;
use hh_heaps::HeapId;
use hh_objmodel::{Header, ObjKind, ObjPtr};
use hh_sched::Worker;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The shared shadow stack of one heap's **ownership domain**: the heap's owner plus
/// every task borrowing the heap under the lazy steal-time policy. All of those tasks
/// execute on one worker thread (that is what made the elision sound), nested on its
/// call stack, so a single pin vector — allocated once when the heap's owner context
/// is created, and shared by `Arc::clone` with each borrower — holds every pin that
/// can point into the heap. That makes it the complete root set for any collection of
/// the heap, no matter which domain member triggers it or which sibling frames a
/// help-loop interleaving has suspended. The mutex is uncontended (single-thread
/// access); it exists to keep the frame `Send + Sync` across the fork closures.
struct RootFrame {
    pins: Mutex<Vec<ObjPtr>>,
}

impl RootFrame {
    fn new() -> Arc<RootFrame> {
        Arc::new(RootFrame {
            pins: Mutex::new(Vec::new()),
        })
    }
}

/// The context of one running task in the hierarchical-heap runtime.
///
/// A context is created for the root task by `HhRuntime::run` (see
/// [`Runtime::run`](hh_api::Runtime::run)) and for every child task by `join` (the
/// paper's `forkjoin`, Figure 5). It
/// knows the task's heap — always a leaf of the hierarchy while the task runs — and
/// carries the task's shadow stack of GC roots.
///
/// Under the lazy steal-time heap policy (`lazy_child_heaps`, the default), a context
/// either **owns** its heap (the root task, a stolen branch, or any branch in eager
/// mode — the heap was created for this task) or **borrows** the parent's heap (an
/// unstolen branch, which runs sequentially on the forking worker). Owners collect on
/// threshold between their joins; borrowers collect the shared heap only while no
/// stolen task is in flight (the steal gate), using the heap domain's shared shadow
/// stack as the root set. See the `RootFrame` and `maybe_collect_borrowed`
/// internals and DESIGN.md §4.2 / §5.
pub struct HhCtx {
    inner: Arc<Inner>,
    heap: HeapId,
    /// Epoch of the run this task belongs to (the heap's run tag; 0 when the run is
    /// not epoch-tracked). Read by the server-mode cross-run assertion, which only
    /// exists in debug builds — hence dead in release.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    run_tag: u64,
    worker: Worker,
    /// True if this task's heap was created for it (root / stolen / eager mode), false
    /// if it runs in its parent's heap under the lazy policy.
    owns_heap: bool,
    /// The shadow stack of this task's heap domain — shared with the heap's owner and
    /// every other borrower of the heap (see [`RootFrame`]). Owners allocate a fresh
    /// one; borrowers clone the forking context's, so the fork fast path stays
    /// allocation-free.
    frame: Arc<RootFrame>,
    /// Cancellation token of the run this task belongs to (`None` for plain
    /// `run` calls): polled at `maybe_collect` and fork entry, so every task of
    /// the run unwinds cooperatively once the server cancels it or its deadline
    /// fires (DESIGN.md §13).
    run_ctl: Option<Arc<hh_api::RunCtl>>,
    /// Keeps `HhCtx: !Sync` (as it was when the shadow stack was a `RefCell`): a
    /// context belongs to the task executing it, and the GC gating arguments assume
    /// no other thread can drive its operations — without this marker, a branch
    /// closure could capture `&HhCtx` of the suspended parent and, from a stolen
    /// branch, race its allocations and collections from another worker.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

/// Follows a (possibly stale) pointer's forwarding chain to its final master copy.
/// Used by [`HhCtx::unpin`]'s stale-pointer fallback; readability of every hop is
/// guaranteed by the store's reuse horizon (no recycling while a run is active).
fn resolve_fwd(store: &hh_objmodel::ChunkStore, mut p: ObjPtr) -> ObjPtr {
    loop {
        let v = store.view(p);
        if !v.has_fwd() {
            return p;
        }
        p = v.fwd();
    }
}

impl HhCtx {
    pub(crate) fn new(
        inner: Arc<Inner>,
        heap: HeapId,
        worker: Worker,
        owns_heap: bool,
        run_ctl: Option<Arc<hh_api::RunCtl>>,
    ) -> HhCtx {
        let run_tag = inner.registry.heap(heap).run_tag();
        HhCtx {
            inner,
            heap,
            run_tag,
            worker,
            owns_heap,
            frame: RootFrame::new(),
            run_ctl,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// A context that borrows the forking context's heap (lazy policy, unstolen
    /// branch): same heap, same shared shadow stack, same cancellation token.
    fn new_borrowed(
        domain_frame: Arc<RootFrame>,
        inner: Arc<Inner>,
        heap: HeapId,
        worker: Worker,
        run_ctl: Option<Arc<hh_api::RunCtl>>,
    ) -> HhCtx {
        let run_tag = inner.registry.heap(heap).run_tag();
        HhCtx {
            inner,
            heap,
            run_tag,
            worker,
            owns_heap: false,
            frame: domain_frame,
            run_ctl,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// Cooperative abort poll: unwinds with a typed [`hh_api::RunAbort`] payload
    /// once the run's token has fired. One atomic load per call for runs with a
    /// token; free (a `None` test) for plain `run` calls.
    #[inline]
    fn poll_abort(&self) {
        if let Some(ctl) = &self.run_ctl {
            ctl.check();
        }
    }

    /// Server-mode cross-run assertion (debug builds only): the chunk an accessed
    /// object lives in must belong to this task's run. A stale `ObjPtr` carried
    /// across runs points into a chunk that is either still quarantined under its
    /// old run's tag or already recycled to a different run — both read as a foreign
    /// tag here and panic instead of silently resolving through recycled memory.
    ///
    /// The one undetectable case is a chunk recycled back into the *same* run that
    /// is doing the access (possible only for pointers retired mid-run by a
    /// collection); those still hit the zeroed-header / generation-tag debug checks
    /// of the object layer. Chunk-level tags are the strongest check available
    /// without fattening `ObjPtr` beyond 64 bits.
    #[inline]
    fn check_cross_run(&self, obj: ObjPtr) {
        #[cfg(debug_assertions)]
        if self.inner.config.server_mode && !obj.is_null() {
            let tag = self.inner.registry.store().chunk(obj.chunk()).run_tag();
            assert!(
                tag == self.run_tag,
                "cross-run ObjPtr: {obj:?} points into a chunk of run epoch {tag}, \
                 accessed from run epoch {}",
                self.run_tag
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = obj;
    }

    /// The heap this task allocates into.
    pub fn heap(&self) -> HeapId {
        self.heap
    }

    /// True if this task's heap was created for it; false for an unstolen branch
    /// running in its parent's heap (lazy steal-time heap policy).
    pub fn owns_heap(&self) -> bool {
        self.owns_heap
    }

    /// Depth of this task's heap in the hierarchy (root task = 0). Under the lazy
    /// policy an unstolen branch reports its parent's depth — it *is* running in the
    /// parent's heap.
    pub fn depth(&self) -> u32 {
        self.inner.registry.heap(self.heap).depth()
    }

    /// Forces a collection of this task's heap, regardless of the threshold, when it
    /// is safe to run one. Only pinned objects are guaranteed to be retained
    /// (unpinned from-space data stays readable through forwarding but no longer
    /// counts as live memory). The heap domain's shared shadow stack forms the root
    /// set.
    ///
    /// On a task that owns its heap this always collects (between its joins nothing
    /// else can reach the heap). On a task that *borrows* its heap (lazy policy),
    /// the collection is best-effort: an in-flight stolen task may be reading this
    /// heap lock-free as one of its ancestors, so the call is skipped — never run
    /// unsoundly — unless the steal gate is free. Returns `true` if a collection ran.
    pub fn force_collect(&self) -> bool {
        if !self.owns_heap {
            // Same gating as `maybe_collect_borrowed`; `try_write` (not a blocking
            // `write`) also avoids self-deadlock when the caller is itself a
            // descendant of a stolen task that holds the gate's read lock.
            let Ok(_gate) = self.inner.steal_gate.try_write() else {
                return false;
            };
            let mut roots = self.frame.pins.lock();
            self.inner.collect_subtree(self.heap, &mut roots);
            return true;
        }
        let mut roots = self.frame.pins.lock();
        self.inner.collect_heap(self.heap, &mut roots);
        true
    }

    /// Number of currently pinned roots in this task's heap domain (diagnostics).
    pub fn root_count(&self) -> usize {
        self.frame.pins.lock().len()
    }

    /// The v1 eager fork shape (`lazy_child_heaps == false`): one fresh heap per
    /// child, run both branches, then join both child heaps back into the parent heap
    /// (a constant-time list splice). Kept for ablation A2 and for tests that need
    /// every branch to own a heap.
    fn join_eager<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let heap_f = self.inner.registry.new_child_heap(self.heap);
        let heap_g = self.inner.registry.new_child_heap(self.heap);
        self.inner
            .counters
            .heaps_created
            .fetch_add(2, Ordering::Relaxed);

        let inner_a = Arc::clone(&self.inner);
        let inner_b = Arc::clone(&self.inner);
        let ctl_a = self.run_ctl.clone();
        let ctl_b = self.run_ctl.clone();
        let (ra, rb) = self.worker.join(
            move || {
                let worker = Worker::current_in(&inner_a.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = HhCtx::new(inner_a, heap_f, worker, true, ctl_a);
                fa(&ctx)
            },
            move || {
                let worker = Worker::current_in(&inner_b.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = HhCtx::new(inner_b, heap_g, worker, true, ctl_b);
                fb(&ctx)
            },
        );

        self.inner.registry.join_heap(self.heap, heap_f);
        self.inner.registry.join_heap(self.heap, heap_g);
        (ra, rb)
    }

    /// Threshold collection for a context that borrows its heap: a *subtree*
    /// collection of the borrowed heap plus its completed descendants.
    ///
    /// Sound because nothing outside this heap's ownership domain can observe the
    /// subtree mid-collection once `steal_gate.try_write()` succeeds: no stolen task
    /// is in flight anywhere (each holds a read lock for its whole run and could be
    /// reading this heap as an ancestor), and none can start until the write guard
    /// drops. Any live *descendant* heap was created by a steal, so — with the gate
    /// held — its owner has already finished and the heap only awaits its join
    /// splice; no task runs in it and its pins were dropped when its task completed.
    /// Everything *inside* the domain runs on this worker's thread, suspended
    /// beneath this frame, and its pins all live in the shared domain frame — the
    /// complete root set, rewritten in place by the collector. Ancestors above the
    /// owner cannot hold pointers into a heap created after their frames suspended,
    /// and no heap outside the subtree can point into it (that would be
    /// entanglement). A completed descendant's unpinned data (e.g. a branch's return
    /// value, held only in a suspended Rust frame) is not retained; like all unpinned
    /// from-space data it stays readable through the retired chunks until the
    /// store's reuse horizon, and is rescued by the next collection that can reach
    /// it. See DESIGN.md §5.
    fn maybe_collect_borrowed(&self) {
        let Ok(_gate) = self.inner.steal_gate.try_write() else {
            return;
        };
        // The domain frame holds every pin that can point into this heap — the
        // owner's and every borrower's, including frames suspended by help-loop
        // interleaving — so it is the complete root set (see `RootFrame`).
        let mut roots = self.frame.pins.lock();
        self.inner.collect_subtree(self.heap, &mut roots);
    }
}

impl ParCtx for HhCtx {
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
        // Modeled allocation failure (the chaos layer's OOM site): checked
        // before any counter or heap state is touched, so an injected failure
        // leaves nothing half-done. One relaxed load when no hooks are
        // installed.
        if self.inner.hook_alloc_fault() {
            std::panic::panic_any(hh_api::InjectedFault { site: "alloc" });
        }
        let header = Header::new(n_ptr + n_nonptr, n_ptr, kind);
        self.inner
            .counters
            .allocated_words
            .fetch_add(header.size_words() as u64, Ordering::Relaxed);
        self.inner.registry.alloc_obj(self.heap, header)
    }

    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
        // readImmutable: single load, never consults the forwarding chain (Figure 6).
        self.check_cross_run(obj);
        self.inner.registry.store().view(obj).field(field)
    }

    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
        self.check_cross_run(obj);
        self.inner.read_mut_impl(obj, field)
    }

    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
        self.check_cross_run(obj);
        self.inner.write_nonptr_impl(obj, field, val);
    }

    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
        self.check_cross_run(obj);
        self.check_cross_run(ptr);
        self.inner.write_ptr_impl(self.heap, obj, field, ptr);
    }

    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.check_cross_run(obj);
        self.inner.cas_nonptr_impl(obj, field, expected, new)
    }

    fn obj_len(&self, obj: ObjPtr) -> usize {
        self.check_cross_run(obj);
        self.inner.registry.store().view(obj).n_fields()
    }

    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        // Immutable fields never change and never need the forwarding chain: a single
        // view resolution amortizes the whole slice.
        if out.is_empty() {
            return;
        }
        self.check_cross_run(obj);
        self.inner.counters.record_bulk(out.len() as u64);
        let v = self.inner.registry.store().view(obj);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = v.field(start + k);
        }
    }

    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        self.check_cross_run(obj);
        self.inner.read_mut_bulk_impl(obj, start, out);
    }

    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        self.check_cross_run(obj);
        self.inner.write_nonptr_bulk_impl(obj, start, vals);
    }

    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        self.check_cross_run(obj);
        self.inner.fill_nonptr_impl(obj, start, len, val);
    }

    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        self.check_cross_run(src);
        self.check_cross_run(dst);
        self.inner
            .copy_nonptr_impl(src, src_start, dst, dst_start, len);
    }

    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // Fork entry is the second cancellation point (with `maybe_collect`):
        // it bounds abort latency for fork-heavy phases that allocate little.
        self.poll_abort();
        if !self.inner.config.lazy_child_heaps {
            return self.join_eager(fa, fb);
        }
        // forkjoin, steal-time heap placement: no heap is created up front. The left
        // branch always runs inline on this worker, sequentially — it continues in
        // the parent's heap. The right branch learns from the scheduler whether it
        // was actually stolen (the on-steal hook): if so, the *thief* creates one
        // fresh child heap for it (paying the heap cost only where parallelism
        // actually happened); if not, it runs sequentially after the left branch,
        // also in the parent's heap, and the fork was heap-free.
        let parent_heap = self.heap;
        let frame_a = Arc::clone(&self.frame);
        let frame_b = Arc::clone(&self.frame);
        let inner_a = Arc::clone(&self.inner);
        let inner_b = Arc::clone(&self.inner);
        let ctl_a = self.run_ctl.clone();
        let ctl_b = self.run_ctl.clone();
        let (ra, (rb, stolen_heap)) = self.worker.join_context(
            move || {
                let worker = Worker::current_in(&inner_a.pool)
                    .expect("task branch must execute on a pool worker");
                // The left branch always executes inline on the forking worker: it
                // continues in the parent's heap, with its shadow stack chained to
                // the suspended forking frame.
                let ctx = HhCtx::new_borrowed(frame_a, inner_a, parent_heap, worker, ctl_a);
                fa(&ctx)
            },
            move |stolen| {
                let worker = Worker::current_in(&inner_b.pool)
                    .expect("task branch must execute on a pool worker");
                if stolen {
                    // Hold the steal gate (shared) for the whole stolen run: this
                    // task reads its ancestor heaps lock-free, so borrowers must not
                    // collect them while it is in flight (see
                    // `maybe_collect_borrowed`).
                    let gate_owner = Arc::clone(&inner_b);
                    let _gate = gate_owner
                        .steal_gate
                        .read()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    let heap = inner_b.registry.new_child_heap(parent_heap);
                    let counters = &inner_b.counters;
                    counters.heaps_created.fetch_add(1, Ordering::Relaxed);
                    // The left sibling's heap is still elided.
                    counters.heaps_elided.fetch_add(1, Ordering::Relaxed);
                    let ctx = HhCtx::new(inner_b, heap, worker, true, ctl_b);
                    (fb(&ctx), Some(heap))
                } else {
                    inner_b
                        .counters
                        .heaps_elided
                        .fetch_add(2, Ordering::Relaxed);
                    // Unstolen: runs on the forking worker, in the parent's heap,
                    // chained to the suspended forking frame.
                    let ctx = HhCtx::new_borrowed(frame_b, inner_b, parent_heap, worker, ctl_b);
                    (fb(&ctx), None)
                }
            },
        );
        // Only a stolen branch created a heap, so only that one needs the join splice.
        if let Some(heap) = stolen_heap {
            self.inner.registry.join_heap(parent_heap, heap);
        }
        (ra, rb)
    }

    fn pin(&self, obj: ObjPtr) {
        // Under an open incremental window the pin slot must hold a *retained*
        // address: frames created mid-window were not part of the seeded root
        // set, so the pinned object is evacuated here, through the barrier,
        // instead (no-op when no window is open or the object is outside it).
        let obj = self.inner.gc_barrier_value(obj);
        self.frame.pins.lock().push(obj);
    }

    fn unpin(&self, obj: ObjPtr) {
        let mut roots = self.frame.pins.lock();
        if let Some(pos) = roots.iter().rposition(|r| *r == obj) {
            roots.swap_remove(pos);
            return;
        }
        // A collection (or promotion) between pin and unpin rewrote the pin slot
        // in place, so the caller may hold a stale from-space address and the
        // slot some other hop of the object's forwarding history — and path
        // compression can shortcut either pointer past the other's hop. Old
        // copies stay readable until the reuse horizon, and forwarding is
        // confluent (every hop reaches the same final master), so compare
        // resolved masters rather than raw pointers to keep pin/unpin balanced
        // across collections.
        if obj.is_null() {
            return;
        }
        let store = self.inner.registry.store();
        let master = resolve_fwd(store, obj);
        if let Some(pos) = roots
            .iter()
            .rposition(|r| !r.is_null() && resolve_fwd(store, *r) == master)
        {
            roots.swap_remove(pos);
        }
    }

    fn maybe_collect(&self) {
        // Cooperative cancellation fires at the same safe points that may run
        // GC work: a poll here bounds how long a cancelled run keeps computing
        // by the workload's own collect-poll cadence (`par_for` leaves, loop
        // bodies), with no extra instrumentation.
        self.poll_abort();
        if self.inner.config.incremental_gc {
            // Safe points service an open window first: bounded drains must keep
            // running even while this heap is below threshold, and a contending
            // trigger helps the open collection finish instead of stacking a
            // monolithic pause on top of it.
            if self.inner.incremental_tick(true) {
                return;
            }
            // Test-only: installed schedule hooks may force a window open at
            // this safe point even under threshold (no-op in production).
            if !self.inner.should_collect(self.heap) && !self.inner.hook_force_collect() {
                return;
            }
            if self.owns_heap {
                // The owner starts between its own joins: no live descendants,
                // so the domain frame's pins are the complete root set (any
                // completed child was already joined, its chunks absorbed into
                // this heap's — now flipped — list).
                let top = self.inner.registry.resolve(self.heap);
                let mut roots = self.frame.pins.lock();
                let _ = self.inner.start_incremental(vec![top], &mut roots);
            } else {
                // A borrower needs the sync path's quiescence argument at seed
                // time — an in-flight stolen task may hold pins into this heap
                // taken before the window — but only for the seed pause: the
                // gate drops as soon as the mutator resumes, and everything
                // forked afterwards is covered by the barriers.
                let Ok(_gate) = self.inner.steal_gate.try_write() else {
                    return;
                };
                let zone = self.inner.registry.live_subtree(self.heap);
                let mut roots = self.frame.pins.lock();
                let _ = self.inner.start_incremental(zone, &mut roots);
            }
            return;
        }
        if !self.inner.should_collect(self.heap) {
            return;
        }
        if self.owns_heap {
            // The owner collects between its own joins: it has no live descendants
            // then, and no concurrent task has this heap on its ancestor path.
            let mut roots = self.frame.pins.lock();
            self.inner.collect_heap(self.heap, &mut roots);
        } else {
            // A borrower may collect the shared heap only when provably nothing else
            // can observe it (no stolen task in flight, chain covers all of the
            // heap's live contexts) — the common case in sequential stretches.
            self.maybe_collect_borrowed();
        }
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }
}
