//! The per-task context: Figure 3's operations bound to one task and its heap.

use crate::runtime::Inner;
use hh_api::ParCtx;
use hh_heaps::HeapId;
use hh_objmodel::{Header, ObjKind, ObjPtr};
use hh_sched::Worker;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The context of one running task in the hierarchical-heap runtime.
///
/// A context is created for the root task by [`HhRuntime::run`](crate::HhRuntime::run)
/// and for every child task by [`HhCtx::join`] (the paper's `forkjoin`, Figure 5). It
/// knows the task's heap — always a leaf of the hierarchy while the task runs — and
/// carries the task's shadow stack of GC roots.
pub struct HhCtx {
    inner: Arc<Inner>,
    heap: HeapId,
    worker: Worker,
    roots: RefCell<Vec<ObjPtr>>,
}

impl HhCtx {
    pub(crate) fn new(inner: Arc<Inner>, heap: HeapId, worker: Worker) -> HhCtx {
        HhCtx {
            inner,
            heap,
            worker,
            roots: RefCell::new(Vec::new()),
        }
    }

    /// The heap this task allocates into.
    pub fn heap(&self) -> HeapId {
        self.heap
    }

    /// Depth of this task's heap in the hierarchy (root task = 0).
    pub fn depth(&self) -> u32 {
        self.inner.registry.heap(self.heap).depth()
    }

    /// Forces a collection of this task's heap regardless of the threshold. Only pinned
    /// objects are guaranteed to be retained (unpinned from-space data stays readable
    /// through forwarding but no longer counts as live memory).
    pub fn force_collect(&self) {
        let mut roots = self.roots.borrow_mut();
        self.inner.collect_heap(self.heap, &mut roots);
    }

    /// Number of currently pinned roots (diagnostics).
    pub fn root_count(&self) -> usize {
        self.roots.borrow().len()
    }
}

impl ParCtx for HhCtx {
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
        let header = Header::new(n_ptr + n_nonptr, n_ptr, kind);
        self.inner
            .counters
            .allocated_words
            .fetch_add(header.size_words() as u64, Ordering::Relaxed);
        self.inner.registry.alloc_obj(self.heap, header)
    }

    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
        // readImmutable: single load, never consults the forwarding chain (Figure 6).
        self.inner.registry.store().view(obj).field(field)
    }

    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.read_mut_impl(obj, field)
    }

    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
        self.inner.write_nonptr_impl(obj, field, val);
    }

    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
        self.inner.write_ptr_impl(self.heap, obj, field, ptr);
    }

    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.inner.cas_nonptr_impl(obj, field, expected, new)
    }

    fn obj_len(&self, obj: ObjPtr) -> usize {
        self.inner.registry.store().view(obj).n_fields()
    }

    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        // Immutable fields never change and never need the forwarding chain: a single
        // view resolution amortizes the whole slice.
        if out.is_empty() {
            return;
        }
        self.inner.counters.record_bulk(out.len() as u64);
        let v = self.inner.registry.store().view(obj);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = v.field(start + k);
        }
    }

    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        self.inner.read_mut_bulk_impl(obj, start, out);
    }

    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        self.inner.write_nonptr_bulk_impl(obj, start, vals);
    }

    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        self.inner.fill_nonptr_impl(obj, start, len, val);
    }

    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        self.inner
            .copy_nonptr_impl(src, src_start, dst, dst_start, len);
    }

    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // forkjoin (Figure 5): one fresh heap per child, run both branches, then join
        // both child heaps back into the parent heap (a constant-time list splice).
        let heap_f = self.inner.registry.new_child_heap(self.heap);
        let heap_g = self.inner.registry.new_child_heap(self.heap);
        self.inner
            .counters
            .heaps_created
            .fetch_add(2, Ordering::Relaxed);

        let inner_a = Arc::clone(&self.inner);
        let inner_b = Arc::clone(&self.inner);
        let (ra, rb) = self.worker.join(
            move || {
                let worker = Worker::current_in(&inner_a.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = HhCtx::new(inner_a, heap_f, worker);
                fa(&ctx)
            },
            move || {
                let worker = Worker::current_in(&inner_b.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = HhCtx::new(inner_b, heap_g, worker);
                fb(&ctx)
            },
        );

        self.inner.registry.join_heap(self.heap, heap_f);
        self.inner.registry.join_heap(self.heap, heap_g);
        (ra, rb)
    }

    fn pin(&self, obj: ObjPtr) {
        self.roots.borrow_mut().push(obj);
    }

    fn unpin(&self, obj: ObjPtr) {
        let mut roots = self.roots.borrow_mut();
        if let Some(pos) = roots.iter().rposition(|r| *r == obj) {
            roots.swap_remove(pos);
        }
    }

    fn maybe_collect(&self) {
        if self.inner.should_collect(self.heap) {
            let mut roots = self.roots.borrow_mut();
            self.inner.collect_heap(self.heap, &mut roots);
        }
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }
}
