//! Promotion-aware semispace collection of a heap-hierarchy subtree — **GC v2:
//! parallel, hash-free evacuation**.
//!
//! The v1 collector (the paper's §3.4 / Figure 14, generalized to subtrees) was a
//! single-threaded Cheney pass whose inner loop paid a `HashSet<ChunkId>` membership
//! probe, a registry `heap_of` resolution, and a `HashMap` to-space lookup per
//! visited object while the pool's other workers sat parked. GC v2 attacks both
//! levels:
//!
//! * **Hash-free membership** — at zone assembly every chunk of the zone is stamped
//!   with an epoch-tagged *collection state* ([`hh_objmodel::ChunkGcState`]):
//!   `forward`'s three-way test ("already a to-space copy?" / "outside the zone?" /
//!   "live from-space object, and of which heap?") collapses into **one atomic load
//!   of chunk metadata**. Epochs are drawn fresh per collection
//!   ([`hh_objmodel::ChunkStore::next_gc_epoch`]), so nothing is ever cleared and
//!   concurrent collections of disjoint subtrees cannot confuse each other's tags.
//! * **Parallel evacuation** — the collection runs on a *GC team*
//!   ([`hh_sched::TeamSync`]): the triggering worker plus parked/idle pool workers
//!   drafted through [`hh_sched::Pool::run_gc_team`], sized by
//!   [`crate::HhConfig::gc_workers`]. Each member owns private to-space bump cursors
//!   per zone heap (chunks held by `Arc`, so the per-copy path does no chunk-table
//!   lookup — the same trick as promotion v2's `Heap::batch_alloc`) and publishes
//!   *scan blocks* — contiguous spans of fully copied objects in its to-space
//!   chunks — on a Chase–Lev [`hh_sched::SpanDeque`]; idle members steal blocks from
//!   busy ones, wavefront-style. Forwarding pointers are installed by **CAS**
//!   ([`hh_objmodel::ObjView::try_set_fwd`]), so two members racing to evacuate the
//!   same object resolve to one winner; the loser retags its already-allocated copy
//!   as an opaque filler ([`hh_objmodel::ObjView::retag_as_filler`]) and follows the
//!   winner. With `gc_workers = 1` (ablation A4) no team is drafted and the
//!   forwarding install degrades to a plain store — the v1 shape minus the hash
//!   probes.
//!
//! Termination is the classic idle-team rule: a member that finds no local span, no
//! tail of its own cursors, and nothing to steal announces itself idle; when every
//! registered member is idle and every deque is empty, no new work can appear (idle
//! members create none) and the collection is over. Membership is dynamic — helpers
//! are best-effort and may arrive mid-collection or not at all — see
//! [`hh_sched::TeamSync`]. DESIGN.md §9 gives the full correctness argument,
//! including why the CAS race and the block hand-off are safe.

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{Chunk, ChunkGcState, ChunkId, ChunkStore, ObjPtr, ObjView, GC_MAX_ZONE_SLOTS};
use hh_sched::{Span, SpanDeque, TeamSync};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A member flushes the unscanned tail of its current to-space chunk to its deque
/// (making it stealable) whenever it grows past this many words. Blocks therefore
/// carry at least this much scan work (except final tails), keeping steal traffic
/// amortized over hundreds of objects.
const SCAN_BLOCK_WORDS: u32 = 512;

#[inline]
fn pack_span(chunk: ChunkId, start: u32, end: u32) -> Span {
    (((chunk.0 as u64) << 32) | start as u64, end as u64)
}

#[inline]
fn unpack_span(span: Span) -> (ChunkId, u32, u32) {
    (ChunkId((span.0 >> 32) as u32), span.0 as u32, span.1 as u32)
}

/// One team member's private to-space state for one zone heap (identified by its
/// zone *slot*; the slot is what from-space chunk tags carry, so `forward` never
/// consults the registry).
#[derive(Default)]
struct WorkerTo {
    /// Chunks this member allocated for the heap, in allocation order.
    chunks: Vec<ChunkId>,
    /// Current bump chunk, held by `Arc` so the per-copy path performs no
    /// chunk-table lookup.
    current: Option<Arc<Chunk>>,
    /// End offset of the last fully written copy in `current`. Everything below it
    /// is walkable: completed survivors or scrubbed race-loser fillers.
    filled: u32,
    /// Offset up to which spans of `current` have been handed out for scanning.
    scanned: u32,
    /// Words occupied in this to-space (survivors plus race-loser fillers) — the
    /// heap's post-collection allocation volume.
    words: usize,
}

/// One team member's collection state: per-heap to-space cursors plus statistics.
#[derive(Default)]
struct GcWorker {
    tos: Vec<WorkerTo>,
    /// Words of survivors this member won (excludes race-loser fillers).
    copied_words: u64,
    /// Words wasted on evacuation-race losses.
    waste_words: u64,
    /// Scan blocks this member stole from other members' deques.
    steal_blocks: u64,
    /// Xorshift state for randomized steal-victim order.
    rng: u64,
}

/// State shared by every member of one collection team.
struct GcShared {
    store: Arc<ChunkStore>,
    /// This collection's epoch (chunk tags are tested against it).
    epoch: u64,
    /// Raw heap id per zone slot, for tagging freshly allocated to-space chunks.
    heap_raws: Vec<u32>,
    /// Run epoch per zone slot (the heap's run tag). To-space chunks inherit it so
    /// that (a) the server-mode cross-run assertion accepts survivors and (b) when
    /// the run later disposes, its to-space chunks carry the run's own epoch stamp
    /// into quarantine instead of a conservative latest-issued stamp — under
    /// overlapping runs the conservative stamp would park them behind every
    /// younger run and visibly degrade recycling.
    heap_tags: Vec<u64>,
    /// One scan-block deque per member slot (owner pushes/pops, others steal).
    deques: Vec<SpanDeque>,
    /// One private state per member slot (locked by its member for the whole
    /// collection; the mutex exists so the triggering thread can merge afterwards).
    slots: Vec<Mutex<GcWorker>>,
    sync: TeamSync,
    /// The root set, rewritten in place by member 0.
    roots: Mutex<Vec<ObjPtr>>,
    /// Set by member 0 once every root has been forwarded; checked after the team
    /// departs to catch any regression of the trigger pre-registration (a team
    /// terminating without member 0 would retire the zone with all live data).
    roots_seeded: AtomicBool,
    /// Install forwarding by CAS (team size > 1); plain store when single-threaded.
    concurrent: bool,
}

/// Allocates a copy of `header` in member `w`'s to-space for zone slot `slot`,
/// returning the pointer, the chunk it landed in, and whether that chunk is a
/// dedicated large-object chunk. Mirrors the placement rules of `Heap::alloc_obj`:
/// large objects get dedicated chunks without displacing the bump chunk.
fn alloc_to(
    shared: &GcShared,
    w: &mut GcWorker,
    my_slot: usize,
    slot: u16,
    header: hh_objmodel::Header,
) -> (ObjPtr, Arc<Chunk>, bool) {
    let store = &shared.store;
    let to = &mut w.tos[slot as usize];
    let size = header.size_words();
    to.words += size;
    if store.needs_dedicated_chunk(header) {
        let (chunk, ptr) = store.alloc_dedicated_for_run(
            shared.heap_raws[slot as usize],
            header,
            shared.heap_tags[slot as usize],
        );
        chunk.set_gc_to_space(shared.epoch, slot);
        to.chunks.push(chunk.id());
        return (ptr, chunk, true);
    }
    if let Some(cur) = &to.current {
        if let Some(ptr) = store.alloc_in_chunk_for_copy(cur, header) {
            return (ptr, Arc::clone(cur), false);
        }
    }
    // Current chunk absent or full: open a new one. Flush the old chunk's unscanned
    // tail first — `take_tail` only looks at the *current* chunk, so scan work left
    // behind in a retired cursor would otherwise be lost.
    if let Some(prev) = &to.current {
        if to.filled > to.scanned {
            shared.deques[my_slot].push(pack_span(prev.id(), to.scanned, to.filled));
        }
    }
    let chunk = store.alloc_chunk_for_run(
        shared.heap_raws[slot as usize],
        size,
        shared.heap_tags[slot as usize],
    );
    chunk.set_gc_to_space(shared.epoch, slot);
    to.chunks.push(chunk.id());
    to.current = Some(Arc::clone(&chunk));
    to.filled = 0;
    to.scanned = 0;
    let ptr = store
        .alloc_in_chunk_for_copy(&chunk, header)
        .expect("fresh to-space chunk too small for the object it was sized for");
    (ptr, chunk, false)
}

/// Records a completed (fully written, forwarding-resolved) copy: advances the
/// member's filled boundary and publishes scan blocks. Called for winners *and*
/// scrubbed race losers — both are walkable and must be covered by some span so
/// block walks stay contiguous.
#[allow(clippy::too_many_arguments)]
fn complete_copy(
    shared: &GcShared,
    w: &mut GcWorker,
    my_slot: usize,
    heap_slot: u16,
    copy: ObjPtr,
    size: usize,
    dedicated: bool,
    has_ptrs: bool,
) {
    if dedicated {
        // Dedicated chunks hold exactly one object; publish it as its own block if
        // it has pointer fields to scan.
        if has_ptrs {
            shared.deques[my_slot].push(pack_span(
                copy.chunk(),
                copy.offset(),
                copy.offset() + size as u32,
            ));
        }
        return;
    }
    let to = &mut w.tos[heap_slot as usize];
    debug_assert_eq!(to.filled, copy.offset(), "out-of-order copy completion");
    to.filled = copy.offset() + size as u32;
    if to.filled - to.scanned >= SCAN_BLOCK_WORDS {
        let chunk = to.current.as_ref().expect("completing into no chunk").id();
        shared.deques[my_slot].push(pack_span(chunk, to.scanned, to.filled));
        to.scanned = to.filled;
    }
}

/// `cheneyCopy` (Figure 14) — the hash-free, race-tolerant step. Returns the
/// relocated address of `obj` with respect to this collection.
///
/// * a chunk tag of `ToSpace` identifies a copy made by this collection — reuse it;
/// * `Outside` identifies an object beyond the zone — an ancestor heap, a copy made
///   by an earlier *promotion* (reusing it eliminates the duplicate left in the
///   subtree), or, defensively, any unrelated heap;
/// * `FromSpace(slot)` is live data of the zone: follow its forwarding chain if one
///   exists, otherwise evacuate it into `slot`'s to-space and race to install the
///   forwarding pointer.
fn forward(shared: &GcShared, w: &mut GcWorker, my_slot: usize, obj: ObjPtr) -> ObjPtr {
    if obj.is_null() {
        return ObjPtr::NULL;
    }
    let store = &shared.store;
    let mut cur = obj;
    loop {
        let chunk = store.chunk(cur.chunk());
        let heap_slot = match chunk.gc_state(shared.epoch) {
            // Case 1: already a to-space copy made by this collection.
            // Case 2: outside the collection zone.
            ChunkGcState::ToSpace(_) | ChunkGcState::Outside => return cur,
            ChunkGcState::FromSpace(slot) => slot,
        };
        let v = ObjView::new(chunk, cur.offset());
        // Follow forwarding chains (they may lead to a promotion copy above us, to
        // a to-space copy, or to another from-space object of the zone).
        let fwd = v.fwd();
        if !fwd.is_null() {
            cur = fwd;
            continue;
        }
        // Case 3: live from-space object — evacuate it into its own heap's
        // to-space, then race to publish the copy.
        let header = v.header();
        let size = header.size_words();
        let (copy, copy_chunk, dedicated) = alloc_to(shared, w, my_slot, heap_slot, header);
        let cv = ObjView::new(&copy_chunk, copy.offset());
        for f in 0..header.n_fields() {
            cv.set_field(f, v.field(f));
        }
        let won = if shared.concurrent {
            v.try_set_fwd(copy).is_ok()
        } else {
            v.set_fwd(copy);
            true
        };
        if won {
            w.copied_words += size as u64;
            complete_copy(
                shared,
                w,
                my_slot,
                heap_slot,
                copy,
                size,
                dedicated,
                header.n_ptr() > 0,
            );
            return copy;
        }
        // Another member won the race: our copy is unreachable. Retag it as an
        // opaque filler so scans and invariant walks never interpret its fields as
        // pointers, keep it covered by the span (walkers must be able to step over
        // it), and adopt the winner's copy.
        cv.retag_as_filler();
        w.waste_words += size as u64;
        complete_copy(shared, w, my_slot, heap_slot, copy, size, dedicated, false);
        cur = v.fwd();
        debug_assert!(!cur.is_null(), "lost the forwarding race to a NULL");
    }
}

/// Walks every object of a scan block, forwarding its pointer fields. The block
/// covers only fully written copies (winners and scrubbed fillers), starts and ends
/// at object boundaries, and is owned exclusively by this member (deque removal is
/// exactly-once), so plain field stores suffice.
fn scan_span(shared: &GcShared, w: &mut GcWorker, my_slot: usize, span: Span) {
    let (chunk_id, start, end) = unpack_span(span);
    let chunk = Arc::clone(shared.store.chunk(chunk_id));
    let mut off = start;
    while off < end {
        let v = ObjView::new(&chunk, off);
        let header = v.header();
        for f in 0..header.n_ptr() {
            let old = v.field_ptr(f);
            let new = forward(shared, w, my_slot, old);
            if new != old {
                v.set_field_ptr(f, new);
            }
        }
        off += header.size_words() as u32;
    }
}

/// Claims the unscanned tail of one of this member's own current chunks, if any.
fn take_tail(w: &mut GcWorker) -> Option<Span> {
    for to in w.tos.iter_mut() {
        if to.filled > to.scanned {
            let chunk = to.current.as_ref().expect("filled words without a chunk");
            let span = pack_span(chunk.id(), to.scanned, to.filled);
            to.scanned = to.filled;
            return Some(span);
        }
    }
    None
}

/// Steals a scan block from another member's deque, scanning victims from a random
/// starting point.
fn steal_span(shared: &GcShared, my_slot: usize, w: &mut GcWorker) -> Option<Span> {
    let n = shared.deques.len();
    if n <= 1 {
        return None;
    }
    let mut x = w.rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w.rng = x;
    let start = (x % n as u64) as usize;
    for k in 0..n {
        let victim = (start + k) % n;
        if victim == my_slot {
            continue;
        }
        if let Some(span) = shared.deques[victim].steal() {
            return Some(span);
        }
    }
    None
}

/// The team-member body: process own blocks, then own tails, then steal; announce
/// idle when nothing is visible and terminate when the whole team is idle with
/// empty deques. Member 0 (the triggering worker) additionally forwards the root
/// set before entering the loop. Member 0 is **pre-registered** at team
/// construction ([`TeamSync::with_trigger`]) — before any helper job is published —
/// and non-idle throughout seeding, so a fast helper that joins first and finds no
/// work can never observe an all-idle team and finish the collection before the
/// roots have seeded the wavefront.
fn run_member(shared: &GcShared, slot: usize) {
    if slot >= shared.slots.len() {
        return;
    }
    if slot != 0 && !shared.sync.try_register() {
        // A drafted helper that arrived after the collection finished (stale
        // injector job) — nothing to do.
        return;
    }
    let mut w = shared.slots[slot].lock();
    w.tos.resize_with(shared.heap_raws.len(), WorkerTo::default);
    w.rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(slot as u64 + 1) | 1;
    if slot == 0 {
        let mut roots = shared.roots.lock();
        for r in roots.iter_mut() {
            *r = forward(shared, &mut w, slot, *r);
        }
        shared.roots_seeded.store(true, Ordering::Release);
    }
    loop {
        if let Some(span) = shared.deques[slot].pop() {
            scan_span(shared, &mut w, slot, span);
            continue;
        }
        if let Some(span) = take_tail(&mut w) {
            scan_span(shared, &mut w, slot, span);
            continue;
        }
        if let Some(span) = steal_span(shared, slot, &mut w) {
            w.steal_blocks += 1;
            scan_span(shared, &mut w, slot, span);
            continue;
        }
        // Nothing visible: announce idle and wait for either work or termination.
        shared.sync.enter_idle();
        let finished = loop {
            if shared.sync.is_done() {
                break true;
            }
            if shared.deques.iter().any(|d| !d.is_empty()) {
                shared.sync.exit_idle();
                break false;
            }
            if shared.sync.all_idle() && shared.deques.iter().all(|d| d.is_empty()) {
                // Every member idle and no block queued: idle members create no
                // work, so this state is stable — the collection is complete.
                shared.sync.finish();
                break true;
            }
            std::thread::yield_now();
        };
        if finished {
            break;
        }
    }
    drop(w);
    shared.sync.depart();
}

impl Inner {
    /// Effective GC team size: `gc_workers` (0 = "pool size"), clamped to the pool.
    fn gc_team_size(&self) -> usize {
        let configured = if self.config.gc_workers == 0 {
            self.pool.n_workers()
        } else {
            self.config.gc_workers
        };
        configured.clamp(1, self.pool.n_workers())
    }

    /// True if `heap`'s allocation volume warrants a collection at the next safe point.
    pub(crate) fn should_collect(&self, heap: HeapId) -> bool {
        self.config.enable_gc
            && self.registry.heap(heap).allocated_words() >= self.config.gc_threshold_words
    }

    /// Collects the (leaf) heap `heap_id`, treating `roots` as the root set and
    /// rewriting each root to its new location.
    ///
    /// Thanks to disentanglement no other task can hold pointers into a leaf heap, so
    /// the owning task collects it without synchronizing with any *mutator* — exactly
    /// the independence property the paper's design is built around. (The drafted GC
    /// team members touch only the quiescent zone and its to-space.) This is the
    /// degenerate (single-heap) case of [`Inner::collect_subtree`].
    pub(crate) fn collect_heap(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        self.collect_zone(vec![top], roots);
    }

    /// Collects the whole live subtree rooted at `heap_id`: the (resolved) heap
    /// itself plus every live descendant, in one promotion-aware evacuation.
    ///
    /// The live descendants are heaps created by steals whose fork has not joined
    /// yet. The caller must hold the steal gate exclusively (see
    /// `HhCtx::maybe_collect_borrowed`): that guarantees no stolen task is executing
    /// anywhere, so every such descendant's owner has already finished — the heap is
    /// merely waiting for its join splice — and the only running tasks of the subtree
    /// are the caller's own domain, whose pins form `roots`. Memory merged upward at
    /// earlier joins (now part of the internal node's chunk list) is evacuated along
    /// with everything else, so it stops being immortal.
    pub(crate) fn collect_subtree(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        let zone = self.registry.live_subtree(top);
        self.collect_zone(zone, roots);
    }

    /// The shared collection body: evacuates `zone` (a set of live heaps), treating
    /// `roots` as the root set and rewriting each root to its new location. Every
    /// survivor is evacuated into a to-space owned by its own (resolved) heap, so a
    /// subtree collection preserves each survivor's placement in the hierarchy.
    ///
    /// See the module docs for the GC v2 structure (chunk-tag membership, the team,
    /// scan-block stealing, the CAS forwarding race).
    fn collect_zone(&self, zone: Vec<HeapId>, roots: &mut [ObjPtr]) {
        if !self.config.enable_gc {
            return;
        }
        let zone_ids = if self.invariants_enabled() {
            zone.clone()
        } else {
            Vec::new()
        };
        let start = Instant::now();
        let store = Arc::clone(self.registry.store());
        let n_heaps = zone.len();
        assert!(
            n_heaps <= GC_MAX_ZONE_SLOTS,
            "collection zone exceeds the chunk tag's slot range"
        );
        let team = self.gc_team_size();
        let epoch = store.next_gc_epoch();

        // --- Zone assembly: stamp membership into chunk metadata. ----------------
        let old_chunks: Vec<(HeapId, Vec<ChunkId>)> = zone
            .iter()
            .map(|&h| (h, self.registry.heap(h).chunks()))
            .collect();
        for (slot, (_, chunks)) in old_chunks.iter().enumerate() {
            for &c in chunks {
                store.chunk(c).set_gc_from_space(epoch, slot as u16);
            }
        }
        // Rescue pass: chunks retired by earlier collections stay readable until
        // the reuse horizon, and a root may still point into one (an unpinned local
        // re-pinned after the collection that retired the chunk). Their owner
        // resolves into the zone, so stamp them from-space too — the tag-based
        // membership test then rescues reachable objects stranded there, exactly as
        // v1's `heap_of` resolution did. Assembly-time cost, off the per-object
        // hot loop. The walk runs *under the quarantine lock* (`with_quarantine`):
        // epoch reclamation frees quarantined chunks while other runs are
        // mid-flight, so a snapshot taken outside the lock could stamp a chunk
        // that a concurrent `reclaim_watermark` has just recycled to another run.
        // Holding the lock pins quarantine membership for the duration of the
        // stamping; chunks of *this* zone's run cannot become reclaimable
        // concurrently anyway (the run is still active, so the watermark is at or
        // below its epoch).
        {
            let slot_of: std::collections::HashMap<HeapId, u16> = zone
                .iter()
                .enumerate()
                .map(|(i, &h)| (h, i as u16))
                .collect();
            store.with_quarantine(|quarantined| {
                for &(id, _retired_at) in quarantined {
                    let chunk = store.chunk(id);
                    let owner = HeapId::from_raw(chunk.owner());
                    if owner.is_none() || (owner.raw() as usize) >= self.registry.n_heaps() {
                        continue;
                    }
                    if let Some(&slot) = slot_of.get(&self.registry.resolve(owner)) {
                        chunk.set_gc_from_space(epoch, slot);
                    }
                }
            });
        }

        // --- Run the evacuation on the team. -------------------------------------
        let shared = Arc::new(GcShared {
            store: Arc::clone(&store),
            epoch,
            heap_raws: zone.iter().map(|h| h.raw()).collect(),
            heap_tags: zone
                .iter()
                .map(|&h| self.registry.heap(h).run_tag())
                .collect(),
            deques: (0..team).map(|_| SpanDeque::new()).collect(),
            slots: (0..team).map(|_| Mutex::new(GcWorker::default())).collect(),
            // Pre-register the triggering member: helper jobs are published (and
            // parked workers woken) before `work(0)` runs, and a helper alone must
            // not be able to terminate the team before member 0 seeds the roots.
            sync: TeamSync::with_trigger(),
            roots: Mutex::new(roots.to_vec()),
            roots_seeded: AtomicBool::new(false),
            concurrent: team > 1,
        });
        if team > 1 {
            let work: Arc<dyn Fn(usize) + Send + Sync> = {
                let shared = Arc::clone(&shared);
                Arc::new(move |slot| run_member(&shared, slot))
            };
            self.pool.run_gc_team(team - 1, work);
        } else {
            run_member(&shared, 0);
        }
        shared.sync.await_departures();
        debug_assert!(
            shared.roots_seeded.load(Ordering::Acquire),
            "GC team finished without member 0 forwarding the roots"
        );
        roots.copy_from_slice(&shared.roots.lock());

        // --- Merge per-member to-spaces and install them. ------------------------
        let mut copied_total = 0u64;
        let mut waste_total = 0u64;
        let mut occupied_total = 0u64;
        let mut steal_blocks = 0u64;
        let mut per_heap: Vec<(Vec<ChunkId>, usize, Option<ChunkId>)> =
            (0..n_heaps).map(|_| (Vec::new(), 0, None)).collect();
        for slot in shared.slots.iter() {
            let mut w = slot.lock();
            copied_total += w.copied_words;
            waste_total += w.waste_words;
            steal_blocks += w.steal_blocks;
            for (hi, to) in w.tos.iter_mut().enumerate() {
                let merged = &mut per_heap[hi];
                merged.0.append(&mut to.chunks);
                merged.1 += to.words;
                occupied_total += to.words as u64;
                if let Some(cur) = to.current.take() {
                    // Remember *a* partially filled bump chunk; it becomes the
                    // heap's resume point. Other members' partial chunks keep their
                    // unused tails (bounded internal fragmentation, reclaimed at
                    // the heap's next collection).
                    merged.2 = Some(cur.id());
                }
            }
        }
        // To-space conservation: every allocated word is either a survivor or an
        // evacuation-race filler.
        debug_assert_eq!(
            copied_total + waste_total,
            occupied_total,
            "to-space words unaccounted for"
        );
        for (hi, (heap, old)) in old_chunks.into_iter().enumerate() {
            let (mut chunks, words, partial) = std::mem::take(&mut per_heap[hi]);
            if chunks.is_empty() {
                debug_assert_eq!(words, 0, "to-space words without to-space chunks");
                // Zero survivors. A heap that also had no from-space chunks (an
                // empty descendant swept into the zone) needs no flip at all;
                // otherwise install the empty to-space so the old chunks retire.
                if !old.is_empty() {
                    self.registry.heap(heap).replace_chunks(Vec::new(), 0);
                }
            } else {
                // `replace_chunks` resumes bump allocation from the *last* chunk of
                // the list; make sure that is a partially filled bump chunk, not a
                // full or dedicated chunk that happened to be merged after it. The
                // chunk list is unordered apart from this invariant, so a
                // constant-time swap_remove replaces v1's O(n) `Vec::remove`
                // shuffle — and the common single-member case already has the bump
                // chunk last, skipping the reorder entirely.
                if let Some(cur) = partial {
                    if chunks.last() != Some(&cur) {
                        if let Some(pos) = chunks.iter().position(|&c| c == cur) {
                            chunks.swap_remove(pos);
                            chunks.push(cur);
                        }
                    }
                }
                self.registry.heap(heap).replace_chunks(chunks, words);
            }
            // Retire the old from-space. Old chunk contents stay readable until the
            // store's reuse horizon passes (they enter the quarantine — see
            // `ChunkStore::reclaim_retired`), which keeps stale `ObjPtr` copies
            // held in Rust locals harmless — they resolve through forwarding
            // pointers on their next mutable access. See DESIGN.md §2 and §5.
            for c in old {
                store.retire_chunk(c);
            }
        }

        // --- Statistics. ---------------------------------------------------------
        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        if n_heaps > 1 {
            self.counters
                .subtree_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        if team > 1 {
            self.counters
                .gc_parallel_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        if steal_blocks > 0 {
            self.counters
                .gc_steal_blocks
                .fetch_add(steal_blocks, Ordering::Relaxed);
        }
        self.counters
            .gc_copied_words
            .fetch_add(copied_total, Ordering::Relaxed);
        let pause = start.elapsed();
        self.counters.add_gc_time(pause);
        self.counters
            .gc_max_pause_ns
            .fetch_max(pause.as_nanos() as u64, Ordering::Relaxed);

        // Debug builds: re-verify disentanglement and forwarding acyclicity over the
        // just-collected zone (the zone is still quiescent — same precondition the
        // collection itself ran under). No-op in release builds.
        self.verify_heaps(&zone_ids);
    }
}
