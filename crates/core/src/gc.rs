//! Promotion-aware semispace collection of a leaf heap
//! (the paper's §3.4 and Appendix A, Figure 14).

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{ChunkId, Header, ObjPtr};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// To-space allocation state used during one collection.
struct ToSpace {
    chunks: Vec<ChunkId>,
    chunk_set: HashSet<ChunkId>,
    current: Option<ChunkId>,
    copied_words: usize,
}

impl ToSpace {
    fn new() -> ToSpace {
        ToSpace {
            chunks: Vec::new(),
            chunk_set: HashSet::new(),
            current: None,
            copied_words: 0,
        }
    }

    fn alloc(
        &mut self,
        store: &Arc<hh_objmodel::ChunkStore>,
        owner_raw: u32,
        header: Header,
    ) -> ObjPtr {
        if let Some(cur) = self.current {
            let chunk = store.chunk(cur);
            if let Some(ptr) = store.alloc_in_chunk(chunk, header) {
                self.copied_words += header.size_words();
                return ptr;
            }
        }
        let chunk = store.alloc_chunk(owner_raw, header.size_words());
        let ptr = store
            .alloc_in_chunk(&chunk, header)
            .expect("fresh to-space chunk too small");
        self.current = Some(chunk.id());
        self.chunks.push(chunk.id());
        self.chunk_set.insert(chunk.id());
        self.copied_words += header.size_words();
        ptr
    }
}

impl Inner {
    /// True if `heap`'s allocation volume warrants a collection at the next safe point.
    pub(crate) fn should_collect(&self, heap: HeapId) -> bool {
        self.config.enable_gc
            && self.registry.heap(heap).allocated_words() >= self.config.gc_threshold_words
    }

    /// Collects the (leaf) heap `heap_id`, treating `roots` as the root set and
    /// rewriting each root to its new location.
    ///
    /// Thanks to disentanglement no other task can hold pointers into a leaf heap, so
    /// the owning task collects it without any locking or synchronization — exactly the
    /// independence property the paper's design is built around. The collection is the
    /// promotion-aware Cheney copy of Figure 14:
    ///
    /// * a forwarding chain that leads into the to-space identifies a copy made by this
    ///   collection — reuse it;
    /// * a chain that leads out of the collected heap (into an ancestor from-space)
    ///   identifies a copy made by an earlier *promotion* — reuse it, thereby
    ///   eliminating the duplicate left in this heap;
    /// * otherwise the object is live data of this heap and is evacuated to to-space.
    pub(crate) fn collect_heap(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        if !self.config.enable_gc {
            return;
        }
        let start = Instant::now();
        let store = self.registry.store();
        let heap_id = self.registry.resolve(heap_id);
        let heap = self.registry.heap(heap_id);
        let old_chunks = heap.chunks();

        let mut to = ToSpace::new();
        let mut pending: Vec<ObjPtr> = Vec::new();

        for r in roots.iter_mut() {
            *r = self.cheney_forward(heap_id, *r, &mut to, &mut pending);
        }
        while let Some(copy) = pending.pop() {
            let v = store.view(copy);
            for f in 0..v.n_ptr() {
                let old = v.field_ptr(f);
                let new = self.cheney_forward(heap_id, old, &mut to, &mut pending);
                v.set_field_ptr(f, new);
            }
        }

        // Install the to-space as the heap's new from-space and retire the old chunks.
        // Old chunk contents stay readable (this is a simulator: memory is reclaimed
        // only in the accounting sense), which keeps stale `ObjPtr` copies held in Rust
        // locals harmless — they resolve through forwarding pointers on their next
        // mutable access. See DESIGN.md (substitution for precise stack maps).
        let new_chunks = to.chunks.clone();
        heap.replace_chunks(new_chunks, to.copied_words);
        for c in &old_chunks {
            store.retire_chunk(*c);
        }

        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        self.counters
            .gc_copied_words
            .fetch_add(to.copied_words as u64, Ordering::Relaxed);
        self.counters.add_gc_time(start.elapsed());
    }

    /// `cheneyCopy` (Figure 14), worklist formulation. Returns the relocated address of
    /// `obj` with respect to a collection of `top_heap`.
    fn cheney_forward(
        &self,
        top_heap: HeapId,
        obj: ObjPtr,
        to: &mut ToSpace,
        pending: &mut Vec<ObjPtr>,
    ) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        let store = self.registry.store();
        let mut cur = obj;
        loop {
            // Case 1: already a to-space copy made by this collection.
            if to.chunk_set.contains(&cur.chunk()) {
                return cur;
            }
            // Case 2: outside the collection zone — either an ancestor heap (including
            // copies introduced by earlier promotions) or, defensively, any other heap.
            if self.registry.heap_of(cur) != top_heap {
                return cur;
            }
            let v = store.view(cur);
            // Follow forwarding chains (they may lead to a promotion copy above us, to a
            // to-space copy, or to another from-space object of this heap).
            if v.has_fwd() {
                cur = v.fwd();
                continue;
            }
            // Case 3: live from-space object of this heap — evacuate it.
            let header = v.header();
            let copy = to.alloc(store, top_heap.raw(), header);
            let cv = store.view(copy);
            for f in 0..header.n_fields() {
                cv.set_field(f, v.field(f));
            }
            v.set_fwd(copy);
            pending.push(copy);
            return copy;
        }
    }
}
