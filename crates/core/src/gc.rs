//! Promotion-aware semispace collection of a heap-hierarchy subtree
//! (the paper's §3.4 and Appendix A, Figure 14, generalized from one leaf heap to a
//! subtree: an internal node plus its completed descendants).

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{ChunkId, ChunkStore, Header, ObjPtr};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// To-space allocation state of one heap participating in a collection.
#[derive(Default)]
struct ToSpace {
    chunks: Vec<ChunkId>,
    current: Option<ChunkId>,
    copied_words: usize,
}

/// One promotion-aware Cheney collection over a set of heaps (the *zone*).
///
/// Every object is evacuated into a to-space owned by its own (resolved) heap, so a
/// subtree collection preserves each survivor's placement in the hierarchy — a
/// completed descendant's live data stays in that descendant, ready for the join
/// splice that will eventually merge it upward.
struct SubtreeCollector<'a> {
    inner: &'a Inner,
    /// The heaps being evacuated.
    zone: HashSet<HeapId>,
    /// Per-heap to-space allocation state.
    tos: HashMap<HeapId, ToSpace>,
    /// Every to-space chunk of this collection (for the "already copied" test).
    to_chunks: HashSet<ChunkId>,
    /// Worklist of copies whose pointer fields still need scanning.
    pending: Vec<ObjPtr>,
}

impl SubtreeCollector<'_> {
    /// Allocates a copy of `header` in `heap`'s to-space.
    ///
    /// Objects larger than the default chunk size get a dedicated chunk without
    /// displacing the current bump chunk, so a large-object detour does not abandon
    /// the partially filled chunk that subsequent small survivors still fit in.
    fn alloc_to(&mut self, store: &Arc<ChunkStore>, heap: HeapId, header: Header) -> ObjPtr {
        let to = self.tos.entry(heap).or_default();
        let size = header.size_words();
        to.copied_words += size;
        if store.needs_dedicated_chunk(header) {
            let (chunk, ptr) = store.alloc_dedicated(heap.raw(), header);
            to.chunks.push(chunk.id());
            self.to_chunks.insert(chunk.id());
            return ptr;
        }
        if let Some(cur) = to.current {
            let chunk = store.chunk(cur);
            if let Some(ptr) = store.alloc_in_chunk(chunk, header) {
                return ptr;
            }
        }
        let chunk = store.alloc_chunk(heap.raw(), size);
        let ptr = store
            .alloc_in_chunk(&chunk, header)
            .expect("fresh to-space chunk too small");
        to.current = Some(chunk.id());
        to.chunks.push(chunk.id());
        self.to_chunks.insert(chunk.id());
        ptr
    }

    /// `cheneyCopy` (Figure 14), worklist formulation over a multi-heap zone. Returns
    /// the relocated address of `obj` with respect to this collection.
    fn forward(&mut self, obj: ObjPtr) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        // Copy the `&Inner` out so the store borrow is independent of `&mut self`.
        let inner = self.inner;
        let store = inner.registry.store();
        let mut cur = obj;
        loop {
            // Case 1: already a to-space copy made by this collection.
            if self.to_chunks.contains(&cur.chunk()) {
                return cur;
            }
            // Case 2: outside the collection zone — an ancestor heap (including
            // copies introduced by earlier promotions) or, defensively, any other
            // heap. Note that `heap_of` resolves merges, so chunks retired by earlier
            // collections whose owner resolves into the zone are treated as in-zone:
            // a reachable object stranded in a retired chunk is rescued here.
            let heap = self.inner.registry.heap_of(cur);
            if !self.zone.contains(&heap) {
                return cur;
            }
            let v = store.view(cur);
            // Follow forwarding chains (they may lead to a promotion copy above us,
            // to a to-space copy, or to another from-space object of the zone).
            if v.has_fwd() {
                cur = v.fwd();
                continue;
            }
            // Case 3: live from-space object of the zone — evacuate it into its own
            // heap's to-space.
            let header = v.header();
            let copy = self.alloc_to(store, heap, header);
            let cv = store.view(copy);
            for f in 0..header.n_fields() {
                cv.set_field(f, v.field(f));
            }
            v.set_fwd(copy);
            self.pending.push(copy);
            return copy;
        }
    }
}

impl Inner {
    /// True if `heap`'s allocation volume warrants a collection at the next safe point.
    pub(crate) fn should_collect(&self, heap: HeapId) -> bool {
        self.config.enable_gc
            && self.registry.heap(heap).allocated_words() >= self.config.gc_threshold_words
    }

    /// Collects the (leaf) heap `heap_id`, treating `roots` as the root set and
    /// rewriting each root to its new location.
    ///
    /// Thanks to disentanglement no other task can hold pointers into a leaf heap, so
    /// the owning task collects it without any locking or synchronization — exactly
    /// the independence property the paper's design is built around. This is the
    /// degenerate (single-heap) case of [`Inner::collect_subtree`].
    pub(crate) fn collect_heap(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        self.collect_zone(vec![top], roots);
    }

    /// Collects the whole live subtree rooted at `heap_id`: the (resolved) heap
    /// itself plus every live descendant, in one promotion-aware Cheney pass.
    ///
    /// The live descendants are heaps created by steals whose fork has not joined
    /// yet. The caller must hold the steal gate exclusively (see
    /// `HhCtx::maybe_collect_borrowed`): that guarantees no stolen task is executing
    /// anywhere, so every such descendant's owner has already finished — the heap is
    /// merely waiting for its join splice — and the only running tasks of the subtree
    /// are the caller's own domain, whose pins form `roots`. Memory merged upward at
    /// earlier joins (now part of the internal node's chunk list) is evacuated along
    /// with everything else, so it stops being immortal.
    pub(crate) fn collect_subtree(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        let zone = self.registry.live_subtree(top);
        self.collect_zone(zone, roots);
    }

    /// The shared collection body: evacuates `zone` (a set of live heaps), treating
    /// `roots` as the root set and rewriting each root to its new location.
    ///
    /// The collection is the promotion-aware Cheney copy of Figure 14:
    ///
    /// * a forwarding chain that leads into a to-space identifies a copy made by this
    ///   collection — reuse it;
    /// * a chain that leads out of the zone (into an ancestor from-space) identifies
    ///   a copy made by an earlier *promotion* — reuse it, thereby eliminating the
    ///   duplicate left in this subtree;
    /// * otherwise the object is live data of the zone and is evacuated into the
    ///   to-space of its own heap.
    fn collect_zone(&self, zone: Vec<HeapId>, roots: &mut [ObjPtr]) {
        if !self.config.enable_gc {
            return;
        }
        let zone_ids = if self.invariants_enabled() {
            zone.clone()
        } else {
            Vec::new()
        };
        let start = Instant::now();
        let store = self.registry.store();
        let old_chunks: Vec<(HeapId, Vec<ChunkId>)> = zone
            .iter()
            .map(|&h| (h, self.registry.heap(h).chunks()))
            .collect();
        let n_heaps = zone.len();

        let mut col = SubtreeCollector {
            inner: self,
            zone: zone.into_iter().collect(),
            tos: HashMap::new(),
            to_chunks: HashSet::new(),
            pending: Vec::new(),
        };
        for r in roots.iter_mut() {
            *r = col.forward(*r);
        }
        while let Some(copy) = col.pending.pop() {
            let v = store.view(copy);
            for f in 0..v.n_ptr() {
                let old = v.field_ptr(f);
                let new = col.forward(old);
                v.set_field_ptr(f, new);
            }
        }

        // Install each heap's to-space as its new from-space and retire the old
        // chunks. Old chunk contents stay readable until the store's reuse horizon
        // passes (they enter the quarantine — see `ChunkStore::reclaim_retired`),
        // which keeps stale `ObjPtr` copies held in Rust locals harmless — they
        // resolve through forwarding pointers on their next mutable access. See
        // DESIGN.md §2 (substitution for precise stack maps) and §5.
        let mut copied_total = 0usize;
        for (heap, old) in old_chunks {
            let mut to = col.tos.remove(&heap).unwrap_or_default();
            copied_total += to.copied_words;
            // `replace_chunks` resumes bump allocation from the *last* chunk of the
            // list; make sure that is the partially filled bump chunk, not a full
            // dedicated large-object chunk that happened to be evacuated after it.
            if let Some(cur) = to.current {
                if to.chunks.last() != Some(&cur) {
                    if let Some(pos) = to.chunks.iter().position(|&c| c == cur) {
                        to.chunks.remove(pos);
                        to.chunks.push(cur);
                    }
                }
            }
            self.registry
                .heap(heap)
                .replace_chunks(to.chunks, to.copied_words);
            for c in old {
                store.retire_chunk(c);
            }
        }

        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        if n_heaps > 1 {
            self.counters
                .subtree_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .gc_copied_words
            .fetch_add(copied_total as u64, Ordering::Relaxed);
        self.counters.add_gc_time(start.elapsed());

        // Debug builds: re-verify disentanglement and forwarding acyclicity over the
        // just-collected zone (the zone is still quiescent — same precondition the
        // collection itself ran under). No-op in release builds.
        self.verify_heaps(&zone_ids);
    }
}
