//! Promotion-aware semispace collection of a heap-hierarchy subtree — **GC v2:
//! parallel, hash-free evacuation**, on the shared evacuation engine
//! ([`hh_sched::EvacEngine`], GC v3).
//!
//! The v1 collector (the paper's §3.4 / Figure 14, generalized to subtrees) was a
//! single-threaded Cheney pass whose inner loop paid a `HashSet<ChunkId>` membership
//! probe, a registry `heap_of` resolution, and a `HashMap` to-space lookup per
//! visited object while the pool's other workers sat parked. GC v2 attacks both
//! levels:
//!
//! * **Hash-free membership** — at zone assembly every chunk of the zone is stamped
//!   with an epoch-tagged *collection state* ([`hh_objmodel::ChunkGcState`]):
//!   the forward step's three-way test ("already a to-space copy?" / "outside the
//!   zone?" / "live from-space object, and of which heap?") collapses into **one
//!   atomic load of chunk metadata**. Epochs are drawn fresh per collection
//!   ([`hh_objmodel::ChunkStore::next_gc_epoch`]), so nothing is ever cleared and
//!   concurrent collections of disjoint subtrees cannot confuse each other's tags.
//! * **Parallel evacuation** — the collection runs on a *GC team*
//!   ([`hh_sched::TeamSync`]): the triggering worker plus parked/idle pool workers
//!   drafted through [`hh_sched::Pool::run_gc_team`], sized by
//!   [`crate::HhConfig::gc_workers`]. With `gc_workers = 1` (ablation A4) no team
//!   is drafted and the forwarding install degrades to a plain store — the v1
//!   shape minus the hash probes.
//!
//! Since GC v3, the member body, span pack/steal loop, CAS forwarding race, and
//! idle-termination protocol live in **one** shared module — `hh_sched::evac` —
//! consumed by this collector and the flat baseline collector alike. This module
//! contributes only what is hierarchical about the collection: the slot-to-heap
//! mapping (`HierZone`, one to-space per zone heap so survivors keep their
//! placement in the hierarchy), zone assembly (chunk stamping plus the quarantine
//! rescue walk), and the post-collection installation of per-heap chunk lists.
//! DESIGN.md §9 gives the full correctness argument for the team protocol, §11
//! for the incremental mode built on the same engine.

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::{Chunk, ChunkId, ChunkStore, Header, ObjPtr, GC_MAX_ZONE_SLOTS};
use hh_sched::{EvacEngine, EvacZone};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// The hierarchical slot-to-heap mapping: zone slot `i` allocates to-space
/// chunks owned (and run-tagged) by the zone's `i`-th heap, so a subtree
/// collection preserves each survivor's placement in the hierarchy.
pub(crate) struct HierZone {
    store: Arc<ChunkStore>,
    /// Raw heap id per zone slot, for tagging freshly allocated to-space chunks.
    heap_raws: Vec<u32>,
    /// Run epoch per zone slot (the heap's run tag). To-space chunks inherit it
    /// so that (a) the server-mode cross-run assertion accepts survivors and
    /// (b) when the run later disposes, its to-space chunks carry the run's own
    /// epoch stamp into quarantine instead of a conservative latest-issued
    /// stamp — under overlapping runs the conservative stamp would park them
    /// behind every younger run and visibly degrade recycling.
    heap_tags: Vec<u64>,
}

impl EvacZone for HierZone {
    fn n_slots(&self) -> usize {
        self.heap_raws.len()
    }

    fn alloc_dedicated(&self, slot: u16, header: Header) -> (Arc<Chunk>, ObjPtr) {
        self.store.alloc_dedicated_for_run(
            self.heap_raws[slot as usize],
            header,
            self.heap_tags[slot as usize],
        )
    }

    fn alloc_chunk(&self, slot: u16, min_words: usize) -> Arc<Chunk> {
        self.store.alloc_chunk_for_run(
            self.heap_raws[slot as usize],
            min_words,
            self.heap_tags[slot as usize],
        )
    }
}

impl Inner {
    /// Effective GC team size: `gc_workers` (0 = "pool size"), clamped to the pool.
    pub(crate) fn gc_team_size(&self) -> usize {
        let configured = if self.config.gc_workers == 0 {
            self.pool.n_workers()
        } else {
            self.config.gc_workers
        };
        configured.clamp(1, self.pool.n_workers())
    }

    /// True if `heap`'s allocation volume warrants a collection at the next safe point.
    pub(crate) fn should_collect(&self, heap: HeapId) -> bool {
        self.config.enable_gc
            && self.registry.heap(heap).allocated_words() >= self.config.gc_threshold_words
    }

    /// Collects the (leaf) heap `heap_id`, treating `roots` as the root set and
    /// rewriting each root to its new location.
    ///
    /// Thanks to disentanglement no other task can hold pointers into a leaf heap, so
    /// the owning task collects it without synchronizing with any *mutator* — exactly
    /// the independence property the paper's design is built around. (The drafted GC
    /// team members touch only the quiescent zone and its to-space.) This is the
    /// degenerate (single-heap) case of [`Inner::collect_subtree`].
    pub(crate) fn collect_heap(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        self.collect_zone(vec![top], roots);
    }

    /// Collects the whole live subtree rooted at `heap_id`: the (resolved) heap
    /// itself plus every live descendant, in one promotion-aware evacuation.
    ///
    /// The live descendants are heaps created by steals whose fork has not joined
    /// yet. The caller must hold the steal gate exclusively (see
    /// `HhCtx::maybe_collect_borrowed`): that guarantees no stolen task is executing
    /// anywhere, so every such descendant's owner has already finished — the heap is
    /// merely waiting for its join splice — and the only running tasks of the subtree
    /// are the caller's own domain, whose pins form `roots`. Memory merged upward at
    /// earlier joins (now part of the internal node's chunk list) is evacuated along
    /// with everything else, so it stops being immortal.
    pub(crate) fn collect_subtree(&self, heap_id: HeapId, roots: &mut [ObjPtr]) {
        let top = self.registry.resolve(heap_id);
        let zone = self.registry.live_subtree(top);
        self.collect_zone(zone, roots);
    }

    /// Stamps the zone's chunks from-space for `epoch` and returns the per-heap
    /// old chunk lists. Shared between the synchronous and incremental
    /// collection paths.
    ///
    /// Besides the heaps' own chunk lists, this runs the **rescue pass**:
    /// chunks retired by earlier collections stay readable until the reuse
    /// horizon, and a root may still point into one (an unpinned local
    /// re-pinned after the collection that retired the chunk). Their owner
    /// resolves into the zone, so stamp them from-space too — the tag-based
    /// membership test then rescues reachable objects stranded there, exactly
    /// as v1's `heap_of` resolution did. Assembly-time cost, off the per-object
    /// hot loop. The walk runs *under the quarantine lock* (`with_quarantine`):
    /// epoch reclamation frees quarantined chunks while other runs are
    /// mid-flight, so a snapshot taken outside the lock could stamp a chunk
    /// that a concurrent `reclaim_watermark` has just recycled to another run.
    /// Holding the lock pins quarantine membership for the duration of the
    /// stamping; chunks of *this* zone's run cannot become reclaimable
    /// concurrently anyway (the run is still active, so the watermark is at or
    /// below its epoch).
    pub(crate) fn stamp_zone(
        &self,
        store: &Arc<ChunkStore>,
        zone: &[HeapId],
        epoch: u64,
    ) -> Vec<(HeapId, Vec<ChunkId>)> {
        let old_chunks: Vec<(HeapId, Vec<ChunkId>)> = zone
            .iter()
            .map(|&h| (h, self.registry.heap(h).chunks()))
            .collect();
        self.stamp_chunks(store, zone, epoch, &old_chunks);
        old_chunks
    }

    /// The stamping body of [`Inner::stamp_zone`], taking the per-heap chunk
    /// lists explicitly: the incremental start path flips each zone heap's list
    /// *out* first (`replace_chunks(Vec::new(), 0)`, so the resuming mutator
    /// allocates into fresh zone-outside chunks) and stamps the flipped-out
    /// lists, which `heap.chunks()` no longer returns.
    pub(crate) fn stamp_chunks(
        &self,
        store: &Arc<ChunkStore>,
        zone: &[HeapId],
        epoch: u64,
        old_chunks: &[(HeapId, Vec<ChunkId>)],
    ) {
        for (slot, (_, chunks)) in old_chunks.iter().enumerate() {
            for &c in chunks {
                store.chunk(c).set_gc_from_space(epoch, slot as u16);
            }
        }
        {
            let slot_of: std::collections::HashMap<HeapId, u16> = zone
                .iter()
                .enumerate()
                .map(|(i, &h)| (h, i as u16))
                .collect();
            store.with_quarantine(|quarantined| {
                for &(id, _retired_at) in quarantined {
                    let chunk = store.chunk(id);
                    let owner = HeapId::from_raw(chunk.owner());
                    if owner.is_none() || (owner.raw() as usize) >= self.registry.n_heaps() {
                        continue;
                    }
                    if let Some(&slot) = slot_of.get(&self.registry.resolve(owner)) {
                        chunk.set_gc_from_space(epoch, slot);
                    }
                }
            });
        }
    }

    /// Builds the engine's zone mapping for `zone`.
    pub(crate) fn hier_zone(&self, store: &Arc<ChunkStore>, zone: &[HeapId]) -> HierZone {
        HierZone {
            store: Arc::clone(store),
            heap_raws: zone.iter().map(|h| h.raw()).collect(),
            heap_tags: zone
                .iter()
                .map(|&h| self.registry.heap(h).run_tag())
                .collect(),
        }
    }

    /// The shared collection body: evacuates `zone` (a set of live heaps), treating
    /// `roots` as the root set and rewriting each root to its new location. Every
    /// survivor is evacuated into a to-space owned by its own (resolved) heap, so a
    /// subtree collection preserves each survivor's placement in the hierarchy.
    ///
    /// See the module docs for the GC v2 structure (chunk-tag membership, the team,
    /// scan-block stealing, the CAS forwarding race — all in `hh_sched::evac` now).
    pub(crate) fn collect_zone(&self, zone: Vec<HeapId>, roots: &mut [ObjPtr]) {
        if !self.config.enable_gc {
            return;
        }
        // A monolithic collection requires a quiescent zone; an open incremental
        // window (necessarily of a disjoint zone, but conservatively: any) is
        // completed first so the two engines never interleave on shared store
        // structures' lifecycle (quarantine stamps, heap chunk lists).
        self.finalize_incremental_now(|_| true);
        let zone_ids = if self.invariants_enabled() {
            zone.clone()
        } else {
            Vec::new()
        };
        let start = Instant::now();
        let store = Arc::clone(self.registry.store());
        let n_heaps = zone.len();
        assert!(
            n_heaps <= GC_MAX_ZONE_SLOTS,
            "collection zone exceeds the chunk tag's slot range"
        );
        let team = self.gc_team_size();
        let epoch = store.next_gc_epoch();

        // --- Zone assembly: stamp membership into chunk metadata. ----------------
        let old_chunks = self.stamp_zone(&store, &zone, epoch);

        // --- Run the evacuation on the team. -------------------------------------
        let engine = Arc::new(EvacEngine::new(
            self.hier_zone(&store, &zone),
            Arc::clone(&store),
            epoch,
            team,
            false,
        ));
        // The root set, rewritten in place by the trigger (slot 0). It lives in
        // a shared vector because `run_gc_team` runs the trigger through the
        // same `Fn(usize)` closure it publishes to helpers.
        let shared_roots = Arc::new(Mutex::new(roots.to_vec()));
        if team > 1 {
            let work: Arc<dyn Fn(usize) + Send + Sync> = {
                let engine = Arc::clone(&engine);
                let shared_roots = Arc::clone(&shared_roots);
                Arc::new(move |slot| {
                    if slot == 0 {
                        engine.run_trigger(|fwd| {
                            for r in shared_roots.lock().iter_mut() {
                                *r = fwd(*r);
                            }
                        });
                    } else {
                        engine.run_helper(slot);
                    }
                })
            };
            self.pool.run_gc_team(team - 1, work);
        } else {
            engine.run_trigger(|fwd| {
                for r in shared_roots.lock().iter_mut() {
                    *r = fwd(*r);
                }
            });
        }
        engine.await_team();
        roots.copy_from_slice(&shared_roots.lock());

        // --- Merge per-member to-spaces and install them. ------------------------
        let outcome = engine.merge();
        self.install_to_spaces(&store, epoch, old_chunks, outcome.per_slot);

        // --- Statistics. ---------------------------------------------------------
        self.record_collection(
            n_heaps,
            team,
            outcome.steal_blocks,
            outcome.copied_words,
            start.elapsed(),
        );

        // Debug builds: re-verify disentanglement and forwarding acyclicity over the
        // just-collected zone (the zone is still quiescent — same precondition the
        // collection itself ran under). No-op in release builds.
        self.verify_heaps(&zone_ids);
    }

    /// Installs the merged to-spaces into their heaps and retires the old
    /// from-space chunks. `epoch` is the collection's epoch: an old chunk whose
    /// tag now reads `ToSpace` was promoted in place (a dedicated large-object
    /// chunk handed over wholesale) — it is part of the installed to-space and
    /// must not be retired.
    pub(crate) fn install_to_spaces(
        &self,
        store: &Arc<ChunkStore>,
        epoch: u64,
        old_chunks: Vec<(HeapId, Vec<ChunkId>)>,
        per_slot: Vec<(Vec<ChunkId>, usize)>,
    ) {
        for ((heap, old), (chunks, words)) in old_chunks.into_iter().zip(per_slot) {
            if chunks.is_empty() {
                debug_assert_eq!(words, 0, "to-space words without to-space chunks");
                // Zero survivors. A heap that also had no from-space chunks (an
                // empty descendant swept into the zone) needs no flip at all;
                // otherwise install the empty to-space so the old chunks retire.
                if !old.is_empty() {
                    self.registry.heap(heap).replace_chunks(Vec::new(), 0);
                }
            } else {
                // The engine's merge already moved a partially filled bump chunk
                // to the end of the list — the heap's resume point.
                self.registry.heap(heap).replace_chunks(chunks, words);
            }
            // Retire the old from-space. Old chunk contents stay readable until the
            // store's reuse horizon passes (they enter the quarantine — see
            // `ChunkStore::reclaim_retired`), which keeps stale `ObjPtr` copies
            // held in Rust locals harmless — they resolve through forwarding
            // pointers on their next mutable access. See DESIGN.md §2 and §5.
            for c in old {
                if matches!(
                    store.chunk(c).gc_state(epoch),
                    hh_objmodel::ChunkGcState::ToSpace(_)
                ) {
                    continue; // promoted in place — now part of the to-space
                }
                store.retire_chunk(c);
            }
        }
    }

    /// Bumps the collection counters and records the pause.
    pub(crate) fn record_collection(
        &self,
        n_heaps: usize,
        team: usize,
        steal_blocks: u64,
        copied_words: u64,
        pause: std::time::Duration,
    ) {
        use std::sync::atomic::Ordering;
        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        if n_heaps > 1 {
            self.counters
                .subtree_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        if team > 1 {
            self.counters
                .gc_parallel_collections
                .fetch_add(1, Ordering::Relaxed);
        }
        if steal_blocks > 0 {
            self.counters
                .gc_steal_blocks
                .fetch_add(steal_blocks, Ordering::Relaxed);
        }
        self.counters
            .gc_copied_words
            .fetch_add(copied_words, Ordering::Relaxed);
        self.counters.add_gc_time(pause);
        self.counters.record_gc_pause(pause);
    }
}
