//! Statistics counters shared by all tasks of a runtime.

use hh_api::{LatencyRecorder, RunStats};
use hh_objmodel::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters accumulated by the runtime; snapshotted into [`RunStats`].
#[derive(Default, Debug)]
pub struct Counters {
    /// Nanoseconds spent in garbage collections (summed over workers).
    pub gc_nanos: AtomicU64,
    /// Number of collections.
    pub gc_count: AtomicU64,
    /// Words copied by collections (survivors).
    pub gc_copied_words: AtomicU64,
    /// Words allocated by mutators.
    pub allocated_words: AtomicU64,
    /// Batched promotion passes performed (one per promoting pointer write).
    pub promotions: AtomicU64,
    /// Objects copied by promotions.
    pub promoted_objects: AtomicU64,
    /// Words copied by promotions.
    pub promoted_words: AtomicU64,
    /// Forwarding-pointer hops walked by `findMaster` and promotion chases.
    pub fwd_hops: AtomicU64,
    /// Forwarding-chain hops short-cut to the master by path compression.
    pub fwd_compressions: AtomicU64,
    /// Lock-path scratch buffers allocated (or grown) by the promotion machinery.
    /// After warm-up this stays flat: `write_promote` reuses one per-worker buffer
    /// set instead of allocating fresh `Vec`s per promotion (regression-tested).
    pub promo_buf_allocs: AtomicU64,
    /// Pointer writes that took the promotion path.
    pub promoting_writes: AtomicU64,
    /// Pointer writes that took the non-promoting slow path.
    pub slow_ptr_writes: AtomicU64,
    /// Pointer writes that took the fast path.
    pub fast_ptr_writes: AtomicU64,
    /// Heaps created.
    pub heaps_created: AtomicU64,
    /// Heap creations (and their `join_heap` splices) skipped because the fork was not
    /// stolen and the branch ran in the parent's heap (lazy steal-time heap policy).
    pub heaps_elided: AtomicU64,
    /// Successful steals observed through the scheduler's on-steal hook (resettable,
    /// unlike the pool-lifetime counters).
    pub sched_steals: AtomicU64,
    /// Bulk field operations executed.
    pub bulk_ops: AtomicU64,
    /// Words moved by bulk field operations.
    pub bulk_words: AtomicU64,
    /// `findMaster` resolutions performed inside bulk operations (at most one per
    /// object operand, i.e. amortized across each contiguous slice).
    pub bulk_master_lookups: AtomicU64,
    /// Collections whose zone spanned more than one heap (an internal node plus its
    /// completed descendants — see `Inner::collect_subtree`).
    pub subtree_collections: AtomicU64,
    /// Collections run in team mode (helpers drafted, i.e. configured team size
    /// > 1; participation is best-effort — see `gc_steal_blocks`; GC v2).
    pub gc_parallel_collections: AtomicU64,
    /// Scan blocks stolen between GC team members during collections.
    pub gc_steal_blocks: AtomicU64,
    /// Longest single collection pause observed, in nanoseconds (updated by
    /// `fetch_max`; resettable).
    pub gc_max_pause_ns: AtomicU64,
    /// Bounded drain increments executed by incremental collections (each at most
    /// `GC_INCREMENT_WORDS` of scanning; safepoint ticks and idle-worker drains).
    pub gc_increments: AtomicU64,
    /// Collections that ran mutator-concurrently (incremental windows finalized).
    pub gc_incremental_collections: AtomicU64,
    /// Every mutator-observed GC pause (one sample per STW collection, per
    /// incremental seed / safepoint tick / finalize). Feeds the pause CDF in
    /// `RunStats`; idle-worker drains do not pause a mutator and are not sampled.
    pub gc_pauses: parking_lot::Mutex<LatencyRecorder>,
    /// Runs that ended by unwind (panic, cooperative abort, or injected fault)
    /// rather than by returning; the teardown guard completed their epoch end.
    /// Not part of `RunStats` — read through `HhRuntime::aborted_runs`.
    pub runs_aborted: AtomicU64,
    /// Incremental finalizes completed by the unwind guard after a schedule
    /// hook panicked mid-finalize (the injected-crash recovery path). Not part
    /// of `RunStats` — read through `HhRuntime::finalize_rescues`.
    pub gc_finalize_rescues: AtomicU64,
    /// Panics raised *inside* `end_run`'s hook-bearing teardown prefix while
    /// the thread was already unwinding a prior panic — contained (counted,
    /// not propagated, which would double-panic) after the unconditional
    /// teardown tail still ran. Expected under fault injection (a hook can
    /// fire a second fault during the forced finalize); with hooks
    /// uninstalled, nonzero values indicate a teardown-path bug.
    pub teardown_panics: AtomicU64,
}

impl Counters {
    /// Adds `d` to the GC time counter.
    pub fn add_gc_time(&self, d: Duration) {
        self.gc_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one mutator-observed GC pause: updates the high-water mark and
    /// appends a sample to the pause CDF.
    pub fn record_gc_pause(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        self.gc_max_pause_ns.fetch_max(ns, Ordering::Relaxed);
        self.gc_pauses.lock().record_ns(ns);
    }

    /// Builds a [`RunStats`] snapshot, combining these counters with the chunk
    /// store's memory accounting (supplied by the caller).
    pub fn snapshot(&self, store: &StoreStats) -> RunStats {
        let pauses = self.gc_pauses.lock().summary();
        RunStats {
            gc_time: Duration::from_nanos(self.gc_nanos.load(Ordering::Relaxed)),
            gc_count: self.gc_count.load(Ordering::Relaxed),
            world_stops: 0,
            allocated_words: self.allocated_words.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            promoted_objects: self.promoted_objects.load(Ordering::Relaxed),
            promoted_words: self.promoted_words.load(Ordering::Relaxed),
            fwd_hops: self.fwd_hops.load(Ordering::Relaxed),
            fwd_compressions: self.fwd_compressions.load(Ordering::Relaxed),
            heaps_created: self.heaps_created.load(Ordering::Relaxed),
            heaps_elided: self.heaps_elided.load(Ordering::Relaxed),
            sched_steals: self.sched_steals.load(Ordering::Relaxed),
            // Parking counters live in the scheduler pool; the runtime overlays them
            // in `Runtime::stats`.
            sched_parks: 0,
            sched_wakes: 0,
            peak_live_words: store.peak_words as u64,
            gc_copied_words: self.gc_copied_words.load(Ordering::Relaxed),
            bulk_ops: self.bulk_ops.load(Ordering::Relaxed),
            bulk_words: self.bulk_words.load(Ordering::Relaxed),
            bulk_master_lookups: self.bulk_master_lookups.load(Ordering::Relaxed),
            subtree_collections: self.subtree_collections.load(Ordering::Relaxed),
            gc_parallel_collections: self.gc_parallel_collections.load(Ordering::Relaxed),
            gc_steal_blocks: self.gc_steal_blocks.load(Ordering::Relaxed),
            gc_max_pause_ns: self.gc_max_pause_ns.load(Ordering::Relaxed),
            gc_pause_count: pauses.count,
            gc_pause_p50_ns: pauses.p50_ns,
            gc_pause_p99_ns: pauses.p99_ns,
            gc_pause_p999_ns: pauses.p999_ns,
            gc_increments: self.gc_increments.load(Ordering::Relaxed),
            gc_incremental_collections: self.gc_incremental_collections.load(Ordering::Relaxed),
            chunks_created: store.chunks_created as u64,
            chunks_recycled: store.chunks_recycled as u64,
            alloc_cache_hits: store.alloc_cache_hits as u64,
            live_words: store.live_words as u64,
            free_words: store.free_words as u64,
            epoch_reclaims: store.epoch_reclaims as u64,
            active_runs_peak: store.active_runs_peak as u64,
            quarantine_lag_words: store.quarantined_words as u64,
        }
    }

    /// Records one bulk operation moving `words` words. Master lookups are counted
    /// separately, at the `findMaster` call sites themselves, so `bulk_master_lookups`
    /// measures what actually happened rather than restating what the implementation
    /// intends.
    pub fn record_bulk(&self, words: u64) {
        self.bulk_ops.fetch_add(1, Ordering::Relaxed);
        self.bulk_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.gc_nanos.store(0, Ordering::Relaxed);
        self.gc_count.store(0, Ordering::Relaxed);
        self.gc_copied_words.store(0, Ordering::Relaxed);
        self.allocated_words.store(0, Ordering::Relaxed);
        self.promotions.store(0, Ordering::Relaxed);
        self.promoted_objects.store(0, Ordering::Relaxed);
        self.promoted_words.store(0, Ordering::Relaxed);
        self.fwd_hops.store(0, Ordering::Relaxed);
        self.fwd_compressions.store(0, Ordering::Relaxed);
        self.promo_buf_allocs.store(0, Ordering::Relaxed);
        self.promoting_writes.store(0, Ordering::Relaxed);
        self.slow_ptr_writes.store(0, Ordering::Relaxed);
        self.fast_ptr_writes.store(0, Ordering::Relaxed);
        self.heaps_created.store(0, Ordering::Relaxed);
        self.heaps_elided.store(0, Ordering::Relaxed);
        self.sched_steals.store(0, Ordering::Relaxed);
        self.bulk_ops.store(0, Ordering::Relaxed);
        self.bulk_words.store(0, Ordering::Relaxed);
        self.bulk_master_lookups.store(0, Ordering::Relaxed);
        self.subtree_collections.store(0, Ordering::Relaxed);
        self.gc_parallel_collections.store(0, Ordering::Relaxed);
        self.gc_steal_blocks.store(0, Ordering::Relaxed);
        self.gc_max_pause_ns.store(0, Ordering::Relaxed);
        self.gc_increments.store(0, Ordering::Relaxed);
        self.gc_incremental_collections.store(0, Ordering::Relaxed);
        self.runs_aborted.store(0, Ordering::Relaxed);
        self.gc_finalize_rescues.store(0, Ordering::Relaxed);
        self.teardown_panics.store(0, Ordering::Relaxed);
        self.gc_pauses.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters_and_store() {
        let c = Counters::default();
        c.allocated_words.fetch_add(10, Ordering::Relaxed);
        c.promoted_objects.fetch_add(2, Ordering::Relaxed);
        c.promoted_words.fetch_add(6, Ordering::Relaxed);
        c.subtree_collections.fetch_add(1, Ordering::Relaxed);
        c.add_gc_time(Duration::from_millis(3));
        let store = StoreStats {
            peak_words: 77,
            live_words: 40,
            free_words: 8,
            chunks_recycled: 3,
            alloc_cache_hits: 5,
            ..Default::default()
        };
        let s = c.snapshot(&store);
        assert_eq!(s.allocated_words, 10);
        assert_eq!(s.promoted_objects, 2);
        assert_eq!(s.promoted_words, 6);
        assert_eq!(s.peak_live_words, 77);
        assert_eq!(s.live_words, 40);
        assert_eq!(s.free_words, 8);
        assert_eq!(s.chunks_recycled, 3);
        assert_eq!(s.alloc_cache_hits, 5);
        assert_eq!(s.subtree_collections, 1);
        assert!(s.gc_time >= Duration::from_millis(3));
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::default();
        c.allocated_words.fetch_add(10, Ordering::Relaxed);
        c.gc_count.fetch_add(1, Ordering::Relaxed);
        c.subtree_collections.fetch_add(1, Ordering::Relaxed);
        c.reset();
        let s = c.snapshot(&StoreStats::default());
        assert_eq!(s.allocated_words, 0);
        assert_eq!(s.gc_count, 0);
        assert_eq!(s.subtree_collections, 0);
    }
}
