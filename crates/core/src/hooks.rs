//! Test-only GC schedule hooks: the deterministic window-schedule harness.
//!
//! The epoch-inc × server-overlap race (DESIGN.md §11.5) was seen once in ~15
//! release serve runs — a microsecond-wide window between an idle worker's
//! finalize and a tenant's `end_run`. Hunting that class of bug by rerunning is
//! hopeless; instead, the runtime exposes its *schedule points* so a test can
//! pin the exact interleaving: every rare transition of the incremental-window
//! and run lifecycles fires a [`GcScheduleEvent`] through an installed
//! [`GcScheduleHooks`], whose handler may **block** (stalling that thread at
//! that point behind a gate) or **force** a collection trigger at a chosen
//! mutator safe point ([`GcScheduleHooks::force_collect`]).
//!
//! Hooks are per-runtime (parallel tests never share them) and cost one relaxed
//! atomic load on the rare paths when none are installed — the hot mutator
//! paths (barrier fast path, allocation) never consult them. Production code
//! must not install hooks; the installer is `#[doc(hidden)]`.

/// A schedule point in the incremental-collection / run lifecycle. Fired on the
/// thread performing the transition, so a blocking handler stalls exactly that
/// thread at exactly that point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GcScheduleEvent {
    /// `start_incremental` installed a window. `epoch` is the collection epoch
    /// (the chunk-tag epoch, not the run epoch).
    WindowStart {
        /// Collection epoch of the new window.
        epoch: u64,
    },
    /// A thread won the `finalizing` claim and is about to run the engine's
    /// closed/retired handshake.
    FinalizeClaimed {
        /// Collection epoch of the claimed window.
        epoch: u64,
    },
    /// The engine handshake is complete, but survivor adoption and from-space
    /// retirement have **not** happened yet. A handler that blocks here holds
    /// the window in exactly the state the epoch-inc × overlap race needed
    /// (DESIGN.md §11.5).
    FinalizePreMerge {
        /// Collection epoch of the window being finalized.
        epoch: u64,
    },
    /// Finalization is fully complete: survivors adopted, from-space retired,
    /// window uninstalled.
    FinalizeDone {
        /// Collection epoch of the finalized window.
        epoch: u64,
    },
    /// Another thread holds the `finalizing` claim and this thread
    /// (`finalize_incremental_now` — a new monolithic collection or an ending
    /// run) observed the window still installed and is about to wait for the
    /// claimer to complete. Not fired when the claimer already uninstalled.
    FinalizeWait {
        /// Collection epoch of the window being waited on.
        epoch: u64,
    },
    /// `end_run` passed its forced finalize and is about to dispose the run's
    /// heap tree, end its epoch, and advance the reclamation watermark.
    EndRunPreDispose {
        /// Run epoch (reclamation epoch) of the ending run.
        run_epoch: u64,
    },
}

/// Observer and schedule controller for the GC / run lifecycle, installed via
/// `HhRuntime::install_gc_hooks`. All methods default to no-ops.
pub trait GcScheduleHooks: Send + Sync {
    /// Called at each schedule point (see [`GcScheduleEvent`]); may block to
    /// stall the transitioning thread behind a gate.
    fn on_event(&self, event: GcScheduleEvent) {
        let _ = event;
    }

    /// Consulted by the collection-trigger safe point (`maybe_collect`) after
    /// its threshold test: returning `true` forces a collection attempt even
    /// under threshold, so a stress driver can open windows at chosen
    /// fork/join points instead of relying on allocation pressure.
    fn force_collect(&self) -> bool {
        false
    }
}
