//! Test-only GC schedule hooks: the deterministic window-schedule harness.
//!
//! The epoch-inc × server-overlap race (DESIGN.md §11.5) was seen once in ~15
//! release serve runs — a microsecond-wide window between an idle worker's
//! finalize and a tenant's `end_run`. Hunting that class of bug by rerunning is
//! hopeless; instead, the runtime exposes its *schedule points* so a test can
//! pin the exact interleaving: every rare transition of the incremental-window
//! and run lifecycles fires a [`GcScheduleEvent`] through an installed
//! [`GcScheduleHooks`], whose handler may **block** (stalling that thread at
//! that point behind a gate) or **force** a collection trigger at a chosen
//! mutator safe point ([`GcScheduleHooks::force_collect`]).
//!
//! Hooks are per-runtime (parallel tests never share them) and cost one relaxed
//! atomic load on the rare paths when none are installed — the hot mutator
//! paths (barrier fast path, allocation) never consult them. Production code
//! must not install hooks; the installer is `#[doc(hidden)]`.

/// A schedule point in the incremental-collection / run lifecycle. Fired on the
/// thread performing the transition, so a blocking handler stalls exactly that
/// thread at exactly that point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GcScheduleEvent {
    /// `start_incremental` installed a window. `epoch` is the collection epoch
    /// (the chunk-tag epoch, not the run epoch).
    WindowStart {
        /// Collection epoch of the new window.
        epoch: u64,
    },
    /// A thread won the `finalizing` claim and is about to run the engine's
    /// closed/retired handshake.
    FinalizeClaimed {
        /// Collection epoch of the claimed window.
        epoch: u64,
    },
    /// The engine handshake is complete, but survivor adoption and from-space
    /// retirement have **not** happened yet. A handler that blocks here holds
    /// the window in exactly the state the epoch-inc × overlap race needed
    /// (DESIGN.md §11.5).
    FinalizePreMerge {
        /// Collection epoch of the window being finalized.
        epoch: u64,
    },
    /// Finalization is fully complete: survivors adopted, from-space retired,
    /// window uninstalled.
    FinalizeDone {
        /// Collection epoch of the finalized window.
        epoch: u64,
    },
    /// Another thread holds the `finalizing` claim and this thread
    /// (`finalize_incremental_now` — a new monolithic collection or an ending
    /// run) observed the window still installed and is about to wait for the
    /// claimer to complete. Not fired when the claimer already uninstalled.
    FinalizeWait {
        /// Collection epoch of the window being waited on.
        epoch: u64,
    },
    /// `end_run` passed its forced finalize and is about to dispose the run's
    /// heap tree, end its epoch, and advance the reclamation watermark.
    EndRunPreDispose {
        /// Run epoch (reclamation epoch) of the ending run.
        run_epoch: u64,
    },
}

/// Observer and schedule controller for the GC / run lifecycle, installed via
/// `HhRuntime::install_gc_hooks`. All methods default to no-ops.
pub trait GcScheduleHooks: Send + Sync {
    /// Called at each schedule point (see [`GcScheduleEvent`]); may block to
    /// stall the transitioning thread behind a gate — or **panic** to model a
    /// crash at that transition (the fault-injection layer does exactly that;
    /// the runtime's teardown guards are required to survive it).
    fn on_event(&self, event: GcScheduleEvent) {
        let _ = event;
    }

    /// Consulted by the collection-trigger safe point (`maybe_collect`) after
    /// its threshold test: returning `true` forces a collection attempt even
    /// under threshold, so a stress driver can open windows at chosen
    /// fork/join points instead of relying on allocation pressure.
    fn force_collect(&self) -> bool {
        false
    }

    /// Consulted at the top of every `HhCtx::alloc` while hooks are installed:
    /// returning `true` makes the allocation fail by panicking with an
    /// [`hh_api::InjectedFault`] payload *before* any state is touched (the
    /// modeled allocation failure of the chaos layer). Costs one relaxed load
    /// per allocation when no hooks are installed — the only hook consulted on
    /// a hot path, which is the price of having an allocation fault site at
    /// all.
    fn inject_alloc_fault(&self) -> bool {
        false
    }
}

/// The named fault sites of the seeded fault-injection plan ([`FaultPlan`]).
///
/// Deliberately a subset of the schedule points: `FinalizeWait` and
/// `EndRunPreDispose` fire on the **teardown path** (inside `end_run`, often
/// while the thread is already unwinding a mutator panic), and the failure
/// model does not inject new faults into recovery — teardown must survive
/// faults injected *before* it, not be a fault site itself (DESIGN.md §13).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// `HhCtx::alloc`, before any state is touched (a modeled OOM).
    Alloc,
    /// The [`GcScheduleEvent::WindowStart`] transition — the window is already
    /// installed, so the abort leaves it open for teardown to force-finalize.
    WindowStart,
    /// The [`GcScheduleEvent::FinalizeClaimed`] transition — the claim is
    /// taken, the engine handshake has not run.
    FinalizeClaimed,
    /// The [`GcScheduleEvent::FinalizePreMerge`] transition — survivors exist
    /// but are adopted by no heap yet (the nastiest interleaving of §11.5).
    FinalizePreMerge,
    /// The [`GcScheduleEvent::FinalizeDone`] transition — the window is fully
    /// closed; the panic tests pure propagation.
    FinalizeDone,
}

impl FaultSite {
    /// All injectable sites, in a stable order (indexes [`FaultPlan`] rates).
    pub const ALL: [FaultSite; 5] = [
        FaultSite::Alloc,
        FaultSite::WindowStart,
        FaultSite::FinalizeClaimed,
        FaultSite::FinalizePreMerge,
        FaultSite::FinalizeDone,
    ];

    /// Stable label, carried in the [`hh_api::InjectedFault`] payload and the
    /// serve JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Alloc => "alloc",
            FaultSite::WindowStart => "window-start",
            FaultSite::FinalizeClaimed => "finalize-claimed",
            FaultSite::FinalizePreMerge => "finalize-pre-merge",
            FaultSite::FinalizeDone => "finalize-done",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A seeded fault-injection plan: a [`GcScheduleHooks`] implementation that
/// panics with an [`hh_api::InjectedFault`] payload at hook sites, each with a
/// tunable per-site probability, deterministically derived from `(seed, site,
/// event sequence number)`.
///
/// "Deterministic" here means the *decision function* is a pure hash — two
/// runs that reach the same site with the same sequence number make the same
/// call. The sequence of sites visited still depends on scheduling, so the
/// plan is a seeded chaos distribution, not a pinned schedule; for pinned
/// reproducers install a bespoke [`GcScheduleHooks`] that targets one exact
/// event instead.
pub struct FaultPlan {
    seed: u64,
    /// Per-site fault probability in parts-per-million, indexed by
    /// [`FaultSite::index`].
    rate_ppm: [u32; 5],
    /// Per-site event sequence numbers (the hash input that makes repeated
    /// visits to one site roll independently).
    seq: [std::sync::atomic::AtomicU64; 5],
    /// Faults actually injected, per site (so a chaos lane can assert the plan
    /// fired at all).
    injected: [std::sync::atomic::AtomicU64; 5],
    /// Master switch: a disarmed plan never injects (used to stop injecting
    /// while a chaos driver recomputes reference checksums on the same
    /// runtime).
    armed: std::sync::atomic::AtomicBool,
}

impl FaultPlan {
    /// A plan injecting at every site with probability `rate_ppm` / 1e6.
    pub fn uniform(seed: u64, rate_ppm: u32) -> FaultPlan {
        FaultPlan {
            seed,
            rate_ppm: [rate_ppm; 5],
            seq: Default::default(),
            injected: Default::default(),
            armed: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Overrides one site's fault probability (parts-per-million).
    pub fn with_rate(mut self, site: FaultSite, rate_ppm: u32) -> FaultPlan {
        self.rate_ppm[site.index()] = rate_ppm;
        self
    }

    /// Arms or disarms the plan (a disarmed plan never injects).
    pub fn set_armed(&self, armed: bool) {
        self.armed
            .store(armed, std::sync::atomic::Ordering::Release);
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    /// Faults injected at `site` so far.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// One hash roll for `site`: true when this visit should fault.
    fn roll(&self, site: FaultSite) -> bool {
        let i = site.index();
        if self.rate_ppm[i] == 0 || !self.armed.load(std::sync::atomic::Ordering::Acquire) {
            return false;
        }
        let n = self.seq[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let h = hh_api::hash64(
            hh_api::hash64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ n,
        );
        if (h % 1_000_000) < self.rate_ppm[i] as u64 {
            self.injected[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Rolls for `site` and panics with the typed payload on a hit.
    fn maybe_fault(&self, site: FaultSite) {
        if self.roll(site) {
            std::panic::panic_any(hh_api::InjectedFault { site: site.name() });
        }
    }
}

impl GcScheduleHooks for FaultPlan {
    fn on_event(&self, event: GcScheduleEvent) {
        match event {
            GcScheduleEvent::WindowStart { .. } => self.maybe_fault(FaultSite::WindowStart),
            GcScheduleEvent::FinalizeClaimed { .. } => self.maybe_fault(FaultSite::FinalizeClaimed),
            GcScheduleEvent::FinalizePreMerge { .. } => {
                self.maybe_fault(FaultSite::FinalizePreMerge)
            }
            GcScheduleEvent::FinalizeDone { .. } => self.maybe_fault(FaultSite::FinalizeDone),
            // Teardown-path events are observation-only (see `FaultSite` docs).
            GcScheduleEvent::FinalizeWait { .. } | GcScheduleEvent::EndRunPreDispose { .. } => {}
        }
    }

    fn inject_alloc_fault(&self) -> bool {
        self.roll(FaultSite::Alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_deterministic_per_seed_and_roughly_proportional() {
        let a = FaultPlan::uniform(42, 100_000); // 10%
        let b = FaultPlan::uniform(42, 100_000);
        let hits_a: Vec<bool> = (0..1000).map(|_| a.roll(FaultSite::Alloc)).collect();
        let hits_b: Vec<bool> = (0..1000).map(|_| b.roll(FaultSite::Alloc)).collect();
        assert_eq!(hits_a, hits_b, "same seed, same decisions");
        let n = hits_a.iter().filter(|&&h| h).count();
        assert!((30..300).contains(&n), "10% of 1000 rolls, got {n}");
        assert_eq!(a.injected_at(FaultSite::Alloc) as usize, n);
        assert_eq!(a.injected_total() as usize, n);
    }

    #[test]
    fn zero_rate_and_disarmed_plans_never_fire() {
        let p = FaultPlan::uniform(7, 0);
        assert!((0..1000).all(|_| !p.roll(FaultSite::FinalizeClaimed)));
        let p = FaultPlan::uniform(7, 1_000_000).with_rate(FaultSite::Alloc, 0);
        assert!(!p.roll(FaultSite::Alloc), "per-site override to zero");
        assert!(p.roll(FaultSite::WindowStart), "other sites still fire");
        p.set_armed(false);
        assert!(!p.roll(FaultSite::WindowStart), "disarmed plan is quiet");
    }

    #[test]
    fn certain_fault_throws_typed_payload() {
        let p = FaultPlan::uniform(1, 1_000_000);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_event(GcScheduleEvent::FinalizePreMerge { epoch: 3 })
        }))
        .unwrap_err();
        assert_eq!(
            hh_api::RunError::from_panic(payload),
            hh_api::RunError::InjectedFault("finalize-pre-merge")
        );
    }

    #[test]
    fn teardown_events_are_never_fault_sites() {
        let p = FaultPlan::uniform(1, 1_000_000);
        p.on_event(GcScheduleEvent::FinalizeWait { epoch: 1 });
        p.on_event(GcScheduleEvent::EndRunPreDispose { run_epoch: 1 });
        assert_eq!(p.injected_total(), 0);
    }
}
