//! Promotion: copying data up the hierarchy to preserve disentanglement
//! (the paper's Figure 7, `writePromote` and `promote`) — **promotion v2**.
//!
//! The v1 implementation followed Figure 7 literally: one registry allocation (with
//! its heap-lookup, merge resolution, and allocation-mutex round trip), one per-heap
//! statistics update, and two global counter increments *per promoted object*, plus a
//! fresh `Vec<HeapId>` per promotion for the lock path. Promotion v2 keeps the same
//! locking protocol and the same copy order but batches everything that can be
//! batched:
//!
//! * **Batched transitive promotion** (`promote_value_batched`): the
//!   pointee's reachable closure is evacuated in one Cheney-style pass holding a
//!   single allocation cursor ([`hh_heaps::BatchAlloc`]) on the target heap — one
//!   allocation-mutex acquisition, one heap-statistics update, and one flush of the
//!   global counters per *pass*.
//! * **Forwarding-chain path compression**: whenever a chase walks a chain of two or
//!   more hops, every intermediate hop is CAS-shortcut to the chain's end
//!   ([`hh_objmodel::ObjView::compress_fwd`]), so the amortized `find_master` is
//!   O(1) even for objects promoted many times. Compressions and hops are counted
//!   (`fwd_compressions`, `fwd_hops`).
//! * **Reusable per-worker scratch** (`PromoScratch`): the lock path, the Cheney
//!   worklist, and the debug-checker's copy log live in thread-local buffers reused
//!   across promotions, so the lock path performs no heap allocation after warm-up
//!   (regression-tested via the `promo_buf_allocs` counter).
//!
//! The v1 per-object path is kept behind [`crate::HhConfig::batched_promotion`]
//! (ablation A3) so the `promote_overhead` bench and `repro promote` can quantify
//! the difference. See DESIGN.md §6.

use crate::runtime::Inner;
use hh_heaps::{BatchAlloc, HeapId};
use hh_objmodel::{Chunk, ChunkStore, ObjPtr, ObjView};
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Per-worker scratch buffers reused across promotions (cleared, never shrunk).
#[derive(Default)]
struct PromoScratch {
    /// Heaps locked by the current `write_promote`, deepest first.
    locked: Vec<HeapId>,
    /// Cheney worklist of copies whose pointer fields still need scanning, with
    /// each copy's pointer-field count (saves a header reload in the scan phase).
    pending: Vec<(ObjPtr, u32)>,
    /// Debug-build invariant checker's log of the pass's copies.
    copies: Vec<ObjPtr>,
}

thread_local! {
    static SCRATCH: RefCell<PromoScratch> = RefCell::new(PromoScratch::default());
}

/// Per-pass tallies, flushed to the global atomic counters once per promotion.
#[derive(Default)]
struct PassStats {
    objects: u64,
    hops: u64,
    compressions: u64,
}

/// A tiny per-pass cache mapping chunk ids to their depth classification relative
/// to the promotion target ("does this chunk's heap lie strictly deeper?").
///
/// Sound for the duration of one promotion pass: every heap the closure can touch
/// is an ancestor-or-self of the promoting task's heap (disentanglement), and none
/// of those heaps can be `join_heap`-merged while the pass runs — their owner tasks
/// are the promoter's own ancestors, suspended at forks that cannot complete before
/// the promoter returns. Chunk recycling is likewise impossible mid-pass (the reuse
/// horizon requires no active run). So a chunk's classification is stable for the
/// pass, and the cache turns the dominant per-field cost (`heap_of` → `resolve` →
/// `depth`, several dependent atomic loads) into one integer compare for the common
/// case of bump-allocation locality (consecutive closure objects share chunks).
struct ChunkClassCache<'s> {
    entries: [Option<(u32, bool, &'s Arc<Chunk>)>; 4],
    next: usize,
}

impl<'s> ChunkClassCache<'s> {
    fn new() -> ChunkClassCache<'s> {
        ChunkClassCache {
            entries: [None; 4],
            next: 0,
        }
    }

    #[inline]
    fn get(&self, chunk: u32) -> Option<(bool, &'s Arc<Chunk>)> {
        self.entries
            .iter()
            .flatten()
            .find(|&&(c, _, _)| c == chunk)
            .map(|&(_, deeper, r)| (deeper, r))
    }

    #[inline]
    fn insert(&mut self, chunk: u32, deeper: bool, chunk_ref: &'s Arc<Chunk>) {
        self.entries[self.next] = Some((chunk, deeper, chunk_ref));
        self.next = (self.next + 1) % self.entries.len();
    }
}

impl Inner {
    /// `writePromote` (Figure 7, lines 13–27).
    ///
    /// Preconditions: `obj` is (a candidate for) the master copy of the object being
    /// written, and its heap is strictly shallower than `ptr`'s heap.
    ///
    /// The three phases of the paper:
    /// 1. lock, in WRITE mode and bottom-up, every heap on the path from `heapOf(ptr)`
    ///    to the heap of the *current* master copy of `obj` (re-chasing forwarding
    ///    pointers that appear while we climb);
    /// 2. promote the pointee into the master's heap and store the promoted address;
    /// 3. unlock the path top-down.
    ///
    /// The lock path is recorded in a reusable per-worker buffer (no allocation on
    /// this path after warm-up) and the promotion itself runs as one batched pass
    /// (see the module docs).
    pub(crate) fn write_promote(&self, mut obj: ObjPtr, field: usize, ptr: ObjPtr) {
        let store = self.registry.store();
        debug_assert!(!ptr.is_null());
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let scratch = &mut *scratch;
            let caps_before =
                scratch.locked.capacity() + scratch.pending.capacity() + scratch.copies.capacity();
            scratch.locked.clear();

            // Phase 1: path locking, deepest heap first. The ancestor walk pushes
            // straight into the reusable buffer instead of materializing a path `Vec`
            // per climb.
            let mut prev_heap = self.registry.heap_of(ptr);
            self.registry.heap(prev_heap).lock.lock_exclusive();
            scratch.locked.push(prev_heap);
            loop {
                let obj_heap = self.registry.heap_of(obj);
                let to = self.registry.resolve(obj_heap);
                let mut cur = self.registry.resolve(prev_heap);
                while cur != to {
                    let parent = self.registry.heap(cur).parent();
                    if parent.is_none() {
                        // `to` was not an ancestor: treat the root as the end of the
                        // path (defensive — disentanglement violations would already
                        // have been detected by the depth comparison in
                        // `write_ptr_impl`).
                        break;
                    }
                    let parent = self.registry.resolve(parent);
                    self.registry.heap(parent).lock.lock_exclusive();
                    scratch.locked.push(parent);
                    cur = parent;
                }
                if !store.view(obj).has_fwd() {
                    break;
                }
                // The master moved further up while we were climbing; keep locking
                // upward from where we are.
                prev_heap = obj_heap;
                obj = store.view(obj).fwd();
            }

            // Phase 2: promote and publish. We hold WRITE locks on every heap between
            // the pointee and the master (inclusive), so no concurrent `findMaster`
            // can observe a half-copied object and no concurrent promotion can race
            // on the same forwarding pointers.
            let target_heap = self.registry.heap_of(obj);
            self.counters.promotions.fetch_add(1, Ordering::Relaxed);
            let promoted = if self.config.batched_promotion {
                self.promote_value_batched(
                    target_heap,
                    ptr,
                    &mut scratch.pending,
                    &mut scratch.copies,
                )
            } else {
                self.promote_value_v1(target_heap, ptr)
            };
            store.view(obj).set_field(field, promoted.to_bits());

            // Phase 3: unlock top-down.
            for h in scratch.locked.iter().rev() {
                self.registry.heap(*h).lock.unlock_exclusive();
            }
            scratch.locked.clear();

            // Regression guard: the reusable buffers grow at most a handful of times
            // per worker thread, ever; a per-promotion allocation would show up as a
            // monotonically climbing counter (see `tests/promo_alloc.rs`).
            let caps_after =
                scratch.locked.capacity() + scratch.pending.capacity() + scratch.copies.capacity();
            if caps_after != caps_before {
                self.counters
                    .promo_buf_allocs
                    .fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// `promote` (Figure 7, lines 28–40) as one batched Cheney pass: the reachable
    /// closure of `root` that lies below `target` is evacuated into `target` through
    /// a single allocation cursor, and every forwarding chain walked on the way is
    /// path-compressed. Returns a pointer to a copy of `root` residing in `target`
    /// or one of its ancestors.
    fn promote_value_batched(
        &self,
        target: HeapId,
        root: ObjPtr,
        pending: &mut Vec<(ObjPtr, u32)>,
        copies: &mut Vec<ObjPtr>,
    ) -> ObjPtr {
        let store: &ChunkStore = self.registry.store();
        let target = self.registry.resolve(target);
        let target_depth = self.registry.depth(target);
        let heap = self.registry.heap(target);
        let record_copies = self.invariants_enabled();
        pending.clear();
        copies.clear();
        let mut stats = PassStats::default();
        let mut cache = ChunkClassCache::new();

        let words;
        let result;
        {
            // One allocation-mutex acquisition for the whole pass. The heap WRITE
            // lock held by `write_promote` already excludes readers; the cursor
            // additionally excludes concurrent allocators (the target heap's own
            // domain) for the duration of the pass.
            let mut batch = heap.batch_alloc(store);
            result = self.forward_batched(
                store,
                target_depth,
                root,
                &mut batch,
                pending,
                copies,
                record_copies,
                &mut stats,
                &mut cache,
            );
            // Scan phase: fix up the pointer fields of every copy we made,
            // transitively promoting what they reach. Copy chunks always belong to
            // the target heap, so a cache miss here may classify them as
            // not-deeper without consulting the registry.
            while let Some((copy, n_ptr)) = pending.pop() {
                let chunk_id = copy.chunk().0;
                let chunk_ref = match cache.get(chunk_id) {
                    Some((_, r)) => r,
                    None => {
                        let r = store.chunk(copy.chunk());
                        cache.insert(chunk_id, false, r);
                        r
                    }
                };
                let v = ObjView::new(chunk_ref, copy.offset());
                for f in 0..n_ptr as usize {
                    let old = v.field_ptr(f);
                    let new = self.forward_batched(
                        store,
                        target_depth,
                        old,
                        &mut batch,
                        pending,
                        copies,
                        record_copies,
                        &mut stats,
                        &mut cache,
                    );
                    v.set_field_ptr(f, new);
                }
            }
            words = batch.allocated_words();
        }

        // One statistics flush per pass instead of several atomics per object.
        heap.note_promoted_in_batch(stats.objects as usize, words);
        self.counters
            .promoted_objects
            .fetch_add(stats.objects, Ordering::Relaxed);
        self.counters
            .promoted_words
            .fetch_add(words as u64, Ordering::Relaxed);
        if stats.hops > 0 {
            self.counters
                .fwd_hops
                .fetch_add(stats.hops, Ordering::Relaxed);
        }
        if stats.compressions > 0 {
            self.counters
                .fwd_compressions
                .fetch_add(stats.compressions, Ordering::Relaxed);
        }

        if record_copies {
            self.verify_promotion(target, copies);
            copies.clear();
        }
        result
    }

    /// One step of the batched pass: returns an existing copy of `obj` at or above
    /// `target_depth` if one exists (lines 29–31), otherwise copies `obj` through the
    /// batch cursor, installs its forwarding pointer, and schedules the copy for
    /// scanning (leaf objects with no pointer fields skip the worklist). Chains of
    /// two or more hops are compressed to their end; the depth classification is
    /// served from the per-pass chunk cache (see [`ChunkClassCache`]).
    #[allow(clippy::too_many_arguments)]
    fn forward_batched<'s>(
        &self,
        store: &'s ChunkStore,
        target_depth: u32,
        obj: ObjPtr,
        batch: &mut BatchAlloc<'_>,
        pending: &mut Vec<(ObjPtr, u32)>,
        copies: &mut Vec<ObjPtr>,
        record_copies: bool,
        stats: &mut PassStats,
        cache: &mut ChunkClassCache<'s>,
    ) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        let mut cur = obj;
        let mut hops = 0u64;
        let resolved = loop {
            let chunk_id = cur.chunk().0;
            let (deeper, chunk_ref) = match cache.get(chunk_id) {
                Some(hit) => hit,
                None => {
                    let r = store.chunk(cur.chunk());
                    let d = self.registry.depth(self.registry.heap_of(cur)) > target_depth;
                    cache.insert(chunk_id, d, r);
                    (d, r)
                }
            };
            if !deeper {
                // Already at or above the target heap: no copy needed.
                break cur;
            }
            let v = ObjView::new(chunk_ref, cur.offset());
            if v.has_fwd() {
                cur = v.fwd();
                hops += 1;
                continue;
            }
            // Introduce a new copy in the target heap. The forwarding pointer is
            // installed *before* the fields are filled in (as in the paper);
            // concurrent `findMaster` calls cannot observe the half-initialized copy
            // because we hold the target heap's WRITE lock, and `readImmutable`
            // never follows forwarding pointers. `alloc_for_copy` leaves the fields
            // raw — the loop below stores every one before the lock is released.
            let header = v.header();
            let (copy, copy_chunk) = batch.alloc_for_copy(header);
            let cv = ObjView::new(copy_chunk, copy.offset());
            if self.incremental_active.load(Ordering::Acquire) {
                // An incremental collection may be evacuating `cur`'s heap right
                // now: idle-worker drains install forwarding pointers without
                // holding our write locks, so the install must be a CAS. Fields
                // are filled *before* publishing the copy (engine scanners chase
                // forwarding chains outside our locks and must never observe a
                // half-written copy). On loss the copy is retagged as an opaque
                // filler and the winner's copy — the engine's to-space copy,
                // still deeper than the target — is promoted on the next trip
                // around the loop.
                for f in 0..header.n_fields() {
                    cv.set_field(f, v.field(f));
                }
                if v.try_set_fwd(copy).is_err() {
                    cv.retag_as_filler();
                    cur = v.fwd();
                    hops += 1;
                    continue;
                }
            } else {
                v.set_fwd(copy);
                for f in 0..header.n_fields() {
                    cv.set_field(f, v.field(f));
                }
            }
            stats.objects += 1;
            if header.n_ptr() > 0 {
                pending.push((copy, header.n_ptr() as u32));
            }
            if record_copies {
                copies.push(copy);
            }
            break copy;
        };
        stats.hops += hops;
        if hops >= 2 {
            stats.compressions += store.compress_fwd_chain(obj, resolved);
        }
        resolved
    }

    /// The v1 per-object promotion (ablation A3, `batched_promotion == false`): one
    /// registry allocation, one per-heap statistics update, and two counter
    /// increments per object, plus a worklist `Vec` allocated per pass — exactly
    /// the original implementation's shape, kept faithful so the `promote_overhead`
    /// bench compares against what v1 actually did. No chain compression.
    fn promote_value_v1(&self, target: HeapId, root: ObjPtr) -> ObjPtr {
        let store = self.registry.store();
        let target_depth = self.registry.depth(target);
        let mut pending: Vec<ObjPtr> = Vec::new();
        let result = self.forward_for_promotion_v1(target, target_depth, root, &mut pending);
        while let Some(copy) = pending.pop() {
            let v = store.view(copy);
            for f in 0..v.n_ptr() {
                let old = v.field_ptr(f);
                let new = self.forward_for_promotion_v1(target, target_depth, old, &mut pending);
                v.set_field_ptr(f, new);
            }
        }
        result
    }

    /// One step of the v1 path (see [`Inner::promote_value_v1`]).
    fn forward_for_promotion_v1(
        &self,
        target: HeapId,
        target_depth: u32,
        obj: ObjPtr,
        pending: &mut Vec<ObjPtr>,
    ) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        let store = self.registry.store();
        let mut cur = obj;
        loop {
            let cur_depth = self.registry.depth(self.registry.heap_of(cur));
            if cur_depth <= target_depth {
                return cur;
            }
            let v = store.view(cur);
            if v.has_fwd() {
                cur = v.fwd();
                continue;
            }
            let header = v.header();
            let copy = self.registry.alloc_obj(target, header);
            let cv = store.view(copy);
            if self.incremental_active.load(Ordering::Acquire) {
                // Same race as the batched path: CAS the install, loser retags
                // and follows the winner (see `forward_batched`).
                for f in 0..header.n_fields() {
                    cv.set_field(f, v.field(f));
                }
                if v.try_set_fwd(copy).is_err() {
                    cv.retag_as_filler();
                    cur = v.fwd();
                    continue;
                }
            } else {
                v.set_fwd(copy);
                for f in 0..header.n_fields() {
                    cv.set_field(f, v.field(f));
                }
            }
            let words = header.size_words();
            self.counters
                .promoted_objects
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .promoted_words
                .fetch_add(words as u64, Ordering::Relaxed);
            self.registry
                .heap(self.registry.resolve(target))
                .note_promoted_in(words);
            pending.push(copy);
            return copy;
        }
    }
}
