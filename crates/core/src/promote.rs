//! Promotion: copying data up the hierarchy to preserve disentanglement
//! (the paper's Figure 7, `writePromote` and `promote`).

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::ObjPtr;
use std::sync::atomic::Ordering;

impl Inner {
    /// `writePromote` (Figure 7, lines 13–27).
    ///
    /// Preconditions: `obj` is (a candidate for) the master copy of the object being
    /// written, and its heap is strictly shallower than `ptr`'s heap.
    ///
    /// The three phases of the paper:
    /// 1. lock, in WRITE mode and bottom-up, every heap on the path from `heapOf(ptr)`
    ///    to the heap of the *current* master copy of `obj` (re-chasing forwarding
    ///    pointers that appear while we climb);
    /// 2. promote the pointee into the master's heap and store the promoted address;
    /// 3. unlock the path top-down.
    pub(crate) fn write_promote(&self, mut obj: ObjPtr, field: usize, ptr: ObjPtr) {
        let store = self.registry.store();
        debug_assert!(!ptr.is_null());

        // Phase 1: path locking, deepest heap first.
        let mut locked: Vec<HeapId> = Vec::new();
        let mut prev_heap = self.registry.heap_of(ptr);
        self.registry.heap(prev_heap).lock.lock_exclusive();
        locked.push(prev_heap);
        loop {
            let obj_heap = self.registry.heap_of(obj);
            for h in self.ancestor_path_exclusive(prev_heap, obj_heap) {
                self.registry.heap(h).lock.lock_exclusive();
                locked.push(h);
            }
            if !store.view(obj).has_fwd() {
                break;
            }
            // The master moved further up while we were climbing; keep locking upward
            // from where we are.
            prev_heap = obj_heap;
            obj = store.view(obj).fwd();
        }

        // Phase 2: promote and publish. We hold WRITE locks on every heap between the
        // pointee and the master (inclusive), so no concurrent `findMaster` can observe
        // a half-copied object and no concurrent promotion can race on the same
        // forwarding pointers.
        let target_heap = self.registry.heap_of(obj);
        let promoted = self.promote_value(target_heap, ptr);
        store.view(obj).set_field(field, promoted.to_bits());

        // Phase 3: unlock top-down.
        for h in locked.iter().rev() {
            self.registry.heap(*h).lock.unlock_exclusive();
        }
    }

    /// Heaps strictly above `from`, up to and including `to`, ordered deepest-first.
    /// (`to` must be an ancestor of `from`, which disentanglement guarantees for the
    /// uses in `write_promote`.) Returns an empty path when `from == to`.
    pub(crate) fn ancestor_path_exclusive(&self, from: HeapId, to: HeapId) -> Vec<HeapId> {
        let mut path = Vec::new();
        let to = self.registry.resolve(to);
        let mut cur = self.registry.resolve(from);
        while cur != to {
            let parent = self.registry.heap(cur).parent();
            if parent.is_none() {
                // `to` was not an ancestor of `from`; treat the root as the end of the
                // path (defensive — disentanglement violations would already have been
                // detected by the depth comparison in `write_ptr_impl`).
                break;
            }
            let parent = self.registry.resolve(parent);
            path.push(parent);
            cur = parent;
        }
        path
    }

    /// `promote` (Figure 7, lines 28–40), in the worklist formulation the paper alludes
    /// to ("it can be implemented using a work list"). Returns a pointer to a copy of
    /// `root` residing in `target` or one of its ancestors.
    pub(crate) fn promote_value(&self, target: HeapId, root: ObjPtr) -> ObjPtr {
        let store = self.registry.store();
        let target_depth = self.registry.depth(target);
        let mut pending: Vec<ObjPtr> = Vec::new();
        let result = self.forward_for_promotion(target, target_depth, root, &mut pending);
        // Scan phase: fix up the pointer fields of every copy we made, transitively
        // promoting what they reach.
        while let Some(copy) = pending.pop() {
            let v = store.view(copy);
            for f in 0..v.n_ptr() {
                let old = v.field_ptr(f);
                let new = self.forward_for_promotion(target, target_depth, old, &mut pending);
                v.set_field_ptr(f, new);
            }
        }
        result
    }

    /// One step of promotion: returns an existing copy of `obj` at or above
    /// `target_depth` if one exists (lines 29–31), otherwise copies `obj` into `target`,
    /// installs its forwarding pointer, and schedules the copy for scanning.
    fn forward_for_promotion(
        &self,
        target: HeapId,
        target_depth: u32,
        obj: ObjPtr,
        pending: &mut Vec<ObjPtr>,
    ) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        let store = self.registry.store();
        let mut cur = obj;
        loop {
            let cur_depth = self.registry.depth(self.registry.heap_of(cur));
            if cur_depth <= target_depth {
                // Already at or above the target heap: no copy needed.
                return cur;
            }
            let v = store.view(cur);
            if v.has_fwd() {
                cur = v.fwd();
                continue;
            }
            // Introduce a new copy in the target heap. The forwarding pointer is
            // installed *before* the fields are filled in (as in the paper); concurrent
            // `findMaster` calls cannot observe the half-initialized copy because we
            // hold the target heap's WRITE lock, and `readImmutable` never follows
            // forwarding pointers.
            let header = v.header();
            let copy = self.registry.alloc_obj(target, header);
            let cv = store.view(copy);
            v.set_fwd(copy);
            for f in 0..header.n_fields() {
                cv.set_field(f, v.field(f));
            }
            let words = header.size_words();
            self.counters
                .promoted_objects
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .promoted_words
                .fetch_add(words as u64, Ordering::Relaxed);
            self.registry
                .heap(self.registry.resolve(target))
                .note_promoted_in(words);
            pending.push(copy);
            return copy;
        }
    }
}
