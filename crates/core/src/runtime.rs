//! Runtime construction and the [`Runtime`] implementation.

use crate::config::HhConfig;
use crate::counters::Counters;
use crate::ctx::HhCtx;
use hh_api::{RunStats, Runtime};
use hh_heaps::{HeapId, HeapRegistry};
use hh_objmodel::ChunkStore;
use hh_sched::Pool;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Bookkeeping of active and completed `run` calls under the **global** reuse
/// horizon (ablation A5, `HhConfig::epoch_reclaim = false`): the memory of a
/// completed run's heap tree is disposed of — and the store's quarantine reclaimed —
/// at the start of the next run, once no other run is active (see
/// `ChunkStore::reclaim_retired` and DESIGN.md §5). The default epoch mode disposes
/// at run end instead and never touches this struct.
#[derive(Default)]
struct RunEpoch {
    /// Number of `run` calls currently executing.
    active: usize,
    /// Completed runs awaiting disposal.
    completed_roots: Vec<CompletedRun>,
}

/// A completed run: its root heap plus the registry-index range of heaps created
/// while it was active. Disposal scans only that range instead of every heap the
/// runtime ever created, so the per-run cost is bounded by the run's own heap count
/// (plus any concurrently created heaps, which the ancestor filter skips).
struct CompletedRun {
    root: HeapId,
    heaps: std::ops::Range<usize>,
}

/// Shared state of one hierarchical-heap runtime: the heap registry (which owns the
/// chunk store), the scheduler pool, the configuration, and the statistics counters.
pub(crate) struct Inner {
    pub(crate) registry: HeapRegistry,
    pub(crate) pool: Pool,
    pub(crate) config: HhConfig,
    /// Shared with the scheduler's on-steal hook (which must not hold an `Arc<Inner>`,
    /// or the pool would keep its owner alive in a cycle).
    pub(crate) counters: Arc<Counters>,
    /// The steal gate of the lazy heap policy: every *stolen* branch holds a read
    /// lock for its whole execution, and a task that borrows its heap may collect it
    /// only under `try_write` — i.e. only while no stolen task (which could be
    /// reading this heap as one of its ancestors) is in flight, with new steals
    /// blocking for the (short) duration of the collection. See DESIGN.md §4.2.
    pub(crate) steal_gate: std::sync::RwLock<()>,
    run_epoch: parking_lot::Mutex<RunEpoch>,
    /// True while an incremental collection window is open (GC v3). The write
    /// barrier's per-operation test: one atomic load, behind a plain
    /// `config.incremental_gc` test so the A6 shape pays nothing.
    pub(crate) incremental_active: std::sync::atomic::AtomicBool,
    /// The open incremental collection, if any (at most one per runtime).
    /// Barrier cold paths and increment drains clone the `Arc` out and release
    /// the lock immediately — in particular, the finalize handshake must never
    /// run under it (barrier calls need the lock to reach the engine).
    pub(crate) active_gc: parking_lot::Mutex<Option<Arc<crate::incremental::ActiveGc>>>,
    /// GC epoch of the open window: lets the barrier cold path test a chunk's
    /// zone membership (`gc_state(epoch)`) before touching the `active_gc` lock,
    /// so operations on untouched heaps never contend on it.
    pub(crate) active_gc_epoch: std::sync::atomic::AtomicU64,
    /// Fast guard for the test-only schedule hooks: the rare-path sites fire
    /// events only when this is set, so an un-hooked runtime pays one relaxed
    /// load at schedule points and nothing anywhere else.
    hooks_installed: std::sync::atomic::AtomicBool,
    /// Test-only schedule hooks (see [`crate::hooks`]): per-runtime, so
    /// parallel tests never observe each other's schedules.
    hooks: parking_lot::Mutex<Option<Arc<dyn crate::hooks::GcScheduleHooks>>>,
}

impl Inner {
    /// Fires a test-only schedule event (no-op unless hooks are installed; the
    /// handler may block — see [`crate::hooks`]). Only rare paths call this.
    #[inline]
    pub(crate) fn fire_hook(&self, event: crate::hooks::GcScheduleEvent) {
        if self.hooks_installed.load(Ordering::Relaxed) {
            self.fire_hook_cold(event);
        }
    }

    #[cold]
    fn fire_hook_cold(&self, event: crate::hooks::GcScheduleEvent) {
        let hooks = self.hooks.lock().clone();
        if let Some(h) = hooks {
            h.on_event(event);
        }
    }

    /// True when installed schedule hooks ask to force a collection trigger at
    /// the calling safe point (see [`crate::hooks::GcScheduleHooks::force_collect`]).
    #[inline]
    pub(crate) fn hook_force_collect(&self) -> bool {
        if !self.hooks_installed.load(Ordering::Relaxed) {
            return false;
        }
        let hooks = self.hooks.lock().clone();
        hooks.is_some_and(|h| h.force_collect())
    }

    /// True when installed schedule hooks ask the calling allocation to fail
    /// (see [`crate::hooks::GcScheduleHooks::inject_alloc_fault`]). One relaxed
    /// load on the allocation path when no hooks are installed.
    #[inline]
    pub(crate) fn hook_alloc_fault(&self) -> bool {
        if !self.hooks_installed.load(Ordering::Relaxed) {
            return false;
        }
        self.hook_alloc_fault_cold()
    }

    #[cold]
    fn hook_alloc_fault_cold(&self) -> bool {
        let hooks = self.hooks.lock().clone();
        hooks.is_some_and(|h| h.inject_alloc_fault())
    }

    /// Starts a run.
    ///
    /// **Epoch mode** (default): the run draws a monotone epoch from the store's
    /// [`hh_objmodel::RunEpochs`] and its root heap carries that tag, so every chunk
    /// the run allocates is attributed to it; nothing is disposed here — each run
    /// cleans up after *itself* at `end_run`.
    ///
    /// **Global-horizon mode** (A5): disposes of the heap trees of previously
    /// completed runs and passes the store's reuse horizon if no other run is
    /// active. Retired chunks stay readable until here so that stale `ObjPtr`s in
    /// the completed runs' Rust locals kept resolving through forwarding; those
    /// locals are gone once their run returned, and concurrent runs' trees are
    /// disjoint (disentanglement), so reclaiming with *no* run active is the sound
    /// horizon.
    ///
    /// In both modes an `ObjPtr` must not be carried from one `run` into a later
    /// one: its chunk may have been recycled for the new run (debug builds catch
    /// such stale pointers via the zeroed headers and the chunk generation tag; in
    /// server mode the access paths assert the chunk's run tag — see
    /// `HhConfig::server_mode`).
    fn begin_run(&self) -> (HeapId, usize, u64) {
        if self.config.epoch_reclaim {
            let epoch = self.registry.store().run_epochs().begin();
            let heaps_before = self.registry.n_heaps();
            let root = self.registry.new_root_heap_for_run(epoch);
            self.counters.heaps_created.fetch_add(1, Ordering::Relaxed);
            return (root, heaps_before, epoch);
        }
        let mut state = self.run_epoch.lock();
        if state.active == 0 {
            for run in state.completed_roots.drain(..) {
                self.registry.dispose_subtree_in(run.root, run.heaps);
            }
            self.registry.store().reclaim_retired();
        }
        state.active += 1;
        drop(state);
        // Watermark before creating the root: every heap of this run (the root
        // included) gets an index at or above it.
        let heaps_before = self.registry.n_heaps();
        let root = self.registry.new_root_heap();
        self.counters.heaps_created.fetch_add(1, Ordering::Relaxed);
        (root, heaps_before, 0)
    }

    /// Ends a run.
    ///
    /// **Epoch mode**: the run's own heap tree is disposed immediately (its tasks
    /// are gone, so no live `ObjPtr` into it remains *inside* the managed world —
    /// only the caller's Rust locals, which must not cross runs), its epoch retires,
    /// and the quarantine is drained up to the new watermark — reclaiming this run's
    /// chunks, and any older conservative stamps it was holding back, while other
    /// runs keep flying.
    ///
    /// **Global-horizon mode** (A5): the tree becomes disposable at the next
    /// `begin_run` that observes no active runs.
    fn end_run(&self, root: HeapId, heaps_before: usize, heaps_after: usize, epoch: u64) {
        // A window of the ending run must complete before its tree is disposed:
        // its semispaces are on no heap's chunk list mid-window, so disposal
        // would leak both. (A5's untagged runs all read tag 0 and finalize
        // conservatively.)
        //
        // Both the forced finalize and the pre-dispose event fire schedule
        // hooks, and hooks may panic (the fault-injection layer models crashes
        // that way — a run that *returned* can still be killed at its own
        // teardown finalize). Teardown must dispose the tree and end the epoch
        // regardless, or the reclamation watermark is pinned for the rest of
        // the runtime's life; so the hook-bearing prefix runs caught, the
        // unconditional tail runs after, and the panic is re-raised last
        // (`EndRunGuard` decides whether re-raising is safe).
        let teardown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.finalize_incremental_now(|gc| gc.zone_run_tag == epoch);
            self.fire_hook(crate::hooks::GcScheduleEvent::EndRunPreDispose { run_epoch: epoch });
        }));
        if self.config.epoch_reclaim {
            self.registry
                .dispose_subtree_in(root, heaps_before..heaps_after);
            let store = self.registry.store();
            store.run_epochs().end(epoch);
            store.reclaim_watermark();
        } else {
            let mut state = self.run_epoch.lock();
            state.active -= 1;
            state.completed_roots.push(CompletedRun {
                root,
                heaps: heaps_before..heaps_after,
            });
        }
        if let Err(payload) = teardown {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Ends the run on drop, so a panicking run closure (propagated by `Pool::run`)
/// cannot leave the epoch permanently active — which would disable disposal and
/// recycling for the rest of the runtime's life.
///
/// The drop is itself panic-aware: `end_run` can re-raise a hook panic (see
/// its teardown comment), and this guard usually runs *during* an unwind of
/// the run closure's own panic. Re-raising there would be a double panic
/// (process abort), so a teardown panic is propagated only when the thread is
/// not already unwinding; otherwise it is contained and counted
/// (`Counters::teardown_panics`) and the original panic continues.
struct EndRunGuard<'a> {
    inner: &'a Inner,
    root: HeapId,
    heaps_before: usize,
    epoch: u64,
}

impl Drop for EndRunGuard<'_> {
    fn drop(&mut self) {
        let unwinding = std::thread::panicking();
        if unwinding {
            // The run is ending by unwind (panic, cooperative abort, or
            // injected fault) rather than by returning.
            self.inner
                .counters
                .runs_aborted
                .fetch_add(1, Ordering::Relaxed);
        }
        let heaps_after = self.inner.registry.n_heaps();
        let teardown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner
                .end_run(self.root, self.heaps_before, heaps_after, self.epoch);
        }));
        if let Err(payload) = teardown {
            if unwinding {
                self.inner
                    .counters
                    .teardown_panics
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The disentanglement checker's full report ([`HhRuntime::check_disentangled_report`]):
/// every violation with per-chunk forensics, plus the incremental-window state at
/// check time — a window still open (or mid-finalize) when the hierarchy is
/// supposed to be quiescent is itself a scheduling bug worth reporting.
#[derive(Clone, Debug)]
pub struct DisentanglementReport {
    /// The violations found (empty when the invariant holds).
    pub violations: Vec<hh_heaps::EntanglementViolation>,
    /// True if an incremental window was installed at check time.
    pub window_open: bool,
    /// True if the installed window had entered finalization.
    pub window_finalizing: bool,
    /// Collection epoch of the installed window (0 = none).
    pub window_epoch: u64,
}

impl DisentanglementReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for DisentanglementReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} disentanglement violation(s); window open: {}, finalizing: {}, epoch {}",
            self.violations.len(),
            self.window_open,
            self.window_finalizing,
            self.window_epoch
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// The hierarchical-heap runtime with mutation support (`mlton-parmem` in the paper's
/// terminology).
///
/// ```
/// use hh_runtime::{HhRuntime, HhConfig};
/// use hh_api::{ParCtx, Runtime};
///
/// let rt = HhRuntime::new(HhConfig::with_workers(2));
/// let sum = rt.run(|ctx| {
///     let r = ctx.alloc_ref_data(1);
///     let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
///     a + b
/// });
/// assert_eq!(sum, 5);
/// ```
pub struct HhRuntime {
    inner: Arc<Inner>,
}

impl HhRuntime {
    /// Creates a runtime from a configuration.
    pub fn new(config: HhConfig) -> HhRuntime {
        let store = Arc::new(ChunkStore::new(config.chunk_words));
        store.set_max_free_words(config.max_free_words);
        let registry = HeapRegistry::new(store);
        let pool = Pool::new(config.n_workers);
        let counters = Arc::new(Counters::default());
        // The scheduler's on-steal hook: count steals into the runtime's resettable
        // statistics. (The per-fork steal observation that drives lazy heap creation
        // flows through `Worker::join_context` in `HhCtx::join` instead.)
        {
            let counters = Arc::clone(&counters);
            pool.set_steal_hook(move |_thief, _victim| {
                counters.sched_steals.fetch_add(1, Ordering::Relaxed);
            });
        }
        let rt = HhRuntime {
            inner: Arc::new(Inner {
                registry,
                pool,
                config,
                counters,
                steal_gate: std::sync::RwLock::new(()),
                run_epoch: parking_lot::Mutex::new(RunEpoch::default()),
                incremental_active: std::sync::atomic::AtomicBool::new(false),
                active_gc: parking_lot::Mutex::new(None),
                active_gc_epoch: std::sync::atomic::AtomicU64::new(0),
                hooks_installed: std::sync::atomic::AtomicBool::new(false),
                hooks: parking_lot::Mutex::new(None),
            }),
        };
        if rt.inner.config.incremental_gc {
            // Idle workers drain increments of an open window instead of
            // spinning: the collection makes progress on cycles that would
            // otherwise be wasted, without charging any mutator a pause (hence
            // `record_pause = false`). The hook holds a `Weak` — the pool lives
            // inside `Inner`, so a strong capture would leak the runtime.
            let weak = Arc::downgrade(&rt.inner);
            rt.inner.pool.set_idle_hook(move |_worker| {
                if let Some(inner) = weak.upgrade() {
                    if inner.incremental_active.load(Ordering::Relaxed) {
                        inner.incremental_tick(false);
                    }
                }
            });
        }
        rt
    }

    /// Creates a runtime with `n` workers and default memory parameters.
    pub fn with_workers(n: usize) -> HhRuntime {
        Self::new(HhConfig::with_workers(n))
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &HhConfig {
        &self.inner.config
    }

    /// Walks every live heap and returns the number of disentanglement violations
    /// (0 when the invariant holds). Only meaningful while no tasks are running.
    /// For forensics — per-violation chunk context plus window state — use
    /// [`HhRuntime::check_disentangled_report`].
    pub fn check_disentangled(&self) -> usize {
        self.inner.registry.check_disentangled().len()
    }

    /// As [`HhRuntime::check_disentangled`], but returns the full forensic
    /// report: every violation with the chunk-level context of both ends
    /// (run tag, gc tag epoch/slot/FROM-TO, retirement, generation, depths)
    /// plus the incremental-window state at check time. This is what turns a
    /// one-in-a-thousand race hit into a diagnosable artifact.
    pub fn check_disentangled_report(&self) -> DisentanglementReport {
        let (window_open, window_finalizing, window_epoch) = {
            let slot = self.inner.active_gc.lock();
            match slot.as_ref() {
                Some(gc) => (true, gc.is_finalizing(), gc.engine.epoch()),
                None => (false, false, 0),
            }
        };
        DisentanglementReport {
            violations: self.inner.registry.check_disentangled(),
            window_open,
            window_finalizing,
            window_epoch,
        }
    }

    /// Installs the test-only GC schedule hooks (see [`crate::hooks`]): the
    /// deterministic window-schedule harness used by the race stress lanes and
    /// pinned reproducers. Not part of the public API surface.
    #[doc(hidden)]
    pub fn install_gc_hooks(&self, hooks: Arc<dyn crate::hooks::GcScheduleHooks>) {
        *self.inner.hooks.lock() = Some(hooks);
        self.inner.hooks_installed.store(true, Ordering::Release);
    }

    /// Snapshot of the chunk store's memory accounting and lifecycle state (chunk
    /// counts per state, free/live/peak words — for tests, the harness, and
    /// diagnostics).
    pub fn store_stats(&self) -> hh_objmodel::StoreStats {
        self.inner.registry.store().stats()
    }

    /// Number of heaps created so far (for tests and diagnostics).
    pub fn heaps_created(&self) -> u64 {
        self.inner.counters.heaps_created.load(Ordering::Relaxed)
    }

    /// Number of heap creations elided by the lazy steal-time heap policy (for tests
    /// and diagnostics).
    pub fn heaps_elided(&self) -> u64 {
        self.inner.counters.heaps_elided.load(Ordering::Relaxed)
    }

    /// Number of times the promotion machinery allocated (or grew) a per-worker
    /// lock-path scratch buffer. Stays flat after warm-up — `write_promote` reuses
    /// one buffer set per worker thread instead of allocating fresh `Vec`s per
    /// promotion (see `tests/promo_alloc.rs` for the regression test).
    pub fn promo_buffer_allocs(&self) -> u64 {
        self.inner.counters.promo_buf_allocs.load(Ordering::Relaxed)
    }

    /// Oldest still-active run epoch (the reclamation watermark; epoch-mode
    /// diagnostics). A run that ends — even by panic — must stop pinning this.
    pub fn min_active_epoch(&self) -> u64 {
        self.inner.registry.store().run_epochs().min_active()
    }

    /// Number of currently active run epochs (0 when the runtime is quiescent).
    pub fn active_runs(&self) -> usize {
        self.inner.registry.store().run_epochs().active_runs()
    }

    /// Runs that ended by unwind (panic, cooperative abort, or injected fault)
    /// rather than by returning; the teardown guard completed their epoch end.
    pub fn aborted_runs(&self) -> u64 {
        self.inner.counters.runs_aborted.load(Ordering::Relaxed)
    }

    /// Incremental finalizes completed by the unwind guard after a schedule
    /// hook panicked mid-finalize (injected-crash recovery; see
    /// `crate::incremental`).
    pub fn finalize_rescues(&self) -> u64 {
        self.inner
            .counters
            .gc_finalize_rescues
            .load(Ordering::Relaxed)
    }

    /// Teardown-prefix panics contained inside `end_run` while the thread was
    /// already unwinding (see `Counters::teardown_panics`).
    pub fn teardown_panics(&self) -> u64 {
        self.inner.counters.teardown_panics.load(Ordering::Relaxed)
    }

    /// As [`Runtime::run`], with a cancellation token: the
    /// run's safe points (`maybe_collect`, fork entry) poll `ctl` and unwind
    /// with a typed [`hh_api::RunAbort`] payload once it fires. Panics (with
    /// that payload) when the run aborts — pair with
    /// [`Runtime::try_run`] to get a value back.
    pub fn run_with_ctl<R, F>(&self, ctl: &Arc<hh_api::RunCtl>, f: F) -> R
    where
        R: Send,
        F: FnOnce(&HhCtx) -> R + Send,
    {
        self.run_inner(Some(Arc::clone(ctl)), f)
    }

    fn run_inner<R, F>(&self, ctl: Option<Arc<hh_api::RunCtl>>, f: F) -> R
    where
        R: Send,
        F: FnOnce(&HhCtx) -> R + Send,
    {
        // Each root task gets a fresh root heap, mirroring `main` owning the root of
        // the hierarchy in the paper's Figure 2. `begin_run` also disposes of earlier
        // runs' heap trees and recycles their chunks (see `Inner::begin_run`); the
        // guard ends the run even if `f` panics out through `Pool::run`.
        let (root_heap, heaps_before, epoch) = self.inner.begin_run();
        let _guard = EndRunGuard {
            inner: &self.inner,
            root: root_heap,
            heaps_before,
            epoch,
        };
        let inner = Arc::clone(&self.inner);
        self.inner.pool.run(move |worker| {
            let ctx = HhCtx::new(Arc::clone(&inner), root_heap, worker.clone(), true, ctl);
            f(&ctx)
        })
    }
}

impl Runtime for HhRuntime {
    type Ctx = HhCtx;

    fn name(&self) -> &'static str {
        "parmem"
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        self.run_inner(None, f)
    }

    fn try_run<R, F>(&self, ctl: &Arc<hh_api::RunCtl>, f: F) -> Result<R, hh_api::RunError>
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        // Overrides the trait default (which can only wrap `run`) so the token
        // actually reaches this runtime's safe points: `maybe_collect` and
        // fork entry poll it and unwind with a typed payload.
        if let Some(reason) = ctl.aborted() {
            return Err(hh_api::RunError::from_abort(reason));
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_with_ctl(ctl, f))) {
            Ok(r) => Ok(r),
            Err(payload) => Err(hh_api::RunError::from_panic(payload)),
        }
    }

    fn stats(&self) -> RunStats {
        let store_stats = self.inner.registry.store().stats();
        let mut stats = self.inner.counters.snapshot(&store_stats);
        // Parking statistics live in the pool (cumulative over its lifetime); steals
        // are counted through the on-steal hook so they reset with the other counters.
        let sched = self.inner.pool.sched_stats();
        stats.sched_parks = sched.parks as u64;
        stats.sched_wakes = sched.wakes as u64;
        stats
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::ParCtx;

    #[test]
    fn run_returns_closure_result() {
        let rt = HhRuntime::with_workers(2);
        assert_eq!(rt.run(|_| 7), 7);
        assert_eq!(rt.name(), "parmem");
        assert_eq!(rt.n_workers(), 2);
    }

    #[test]
    fn doc_example_behaviour() {
        let rt = HhRuntime::new(HhConfig::with_workers(2));
        let sum = rt.run(|ctx| {
            let r = ctx.alloc_ref_data(1);
            let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
            a + b
        });
        assert_eq!(sum, 5);
    }

    #[test]
    fn stats_track_allocation_and_heaps() {
        let rt = HhRuntime::with_workers(1);
        rt.run(|ctx| {
            let _a = ctx.alloc_data_array(100);
            let _ = ctx.join(|c| c.alloc_data_array(10), |c| c.alloc_data_array(10));
        });
        let s = rt.stats();
        assert!(s.allocated_words >= 120);
        // Lazy steal-time heaps on a single worker: nothing is ever stolen, so the
        // fork creates no heaps — both elisions are accounted instead.
        assert_eq!(s.heaps_created, 1, "only the root heap");
        assert_eq!(s.heaps_elided, 2, "one unstolen fork elides two heaps");
        assert!(s.peak_live_words > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().allocated_words, 0);
    }

    #[test]
    fn eager_config_creates_two_heaps_per_fork() {
        let rt = HhRuntime::new(HhConfig::eager_heaps(1));
        rt.run(|ctx| {
            let _ = ctx.join(|c| c.alloc_data_array(10), |c| c.alloc_data_array(10));
        });
        let s = rt.stats();
        assert_eq!(s.heaps_created, 3, "root + two children");
        assert_eq!(s.heaps_elided, 0);
    }

    #[test]
    fn heap_accounting_is_conserved_across_policies() {
        // Per fork: created + elided == 2 in both modes, regardless of stealing.
        for workers in [1, 4] {
            let rt = HhRuntime::with_workers(workers);
            rt.run(|ctx| {
                fn tree<C: hh_api::ParCtx>(c: &C, depth: usize) {
                    if depth == 0 {
                        let _ = c.alloc_data_array(8);
                    } else {
                        c.join(|c| tree(c, depth - 1), |c| tree(c, depth - 1));
                    }
                }
                tree(ctx, 6);
            });
            let s = rt.stats();
            let forks = (1u64 << 6) - 1; // 63 join calls in a depth-6 full binary tree
            assert_eq!(
                (s.heaps_created - 1) + s.heaps_elided,
                2 * forks,
                "workers={workers}: non-root creations plus elisions must cover every fork"
            );
        }
    }
}
