//! Runtime construction and the [`Runtime`] implementation.

use crate::config::HhConfig;
use crate::counters::Counters;
use crate::ctx::HhCtx;
use hh_api::{RunStats, Runtime};
use hh_heaps::HeapRegistry;
use hh_objmodel::ChunkStore;
use hh_sched::Pool;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared state of one hierarchical-heap runtime: the heap registry (which owns the
/// chunk store), the scheduler pool, the configuration, and the statistics counters.
pub(crate) struct Inner {
    pub(crate) registry: HeapRegistry,
    pub(crate) pool: Pool,
    pub(crate) config: HhConfig,
    /// Shared with the scheduler's on-steal hook (which must not hold an `Arc<Inner>`,
    /// or the pool would keep its owner alive in a cycle).
    pub(crate) counters: Arc<Counters>,
    /// The steal gate of the lazy heap policy: every *stolen* branch holds a read
    /// lock for its whole execution, and a task that borrows its heap may collect it
    /// only under `try_write` — i.e. only while no stolen task (which could be
    /// reading this heap as one of its ancestors) is in flight, with new steals
    /// blocking for the (short) duration of the collection. See DESIGN.md §4.2.
    pub(crate) steal_gate: std::sync::RwLock<()>,
}

/// The hierarchical-heap runtime with mutation support (`mlton-parmem` in the paper's
/// terminology).
///
/// ```
/// use hh_runtime::{HhRuntime, HhConfig};
/// use hh_api::{ParCtx, Runtime};
///
/// let rt = HhRuntime::new(HhConfig::with_workers(2));
/// let sum = rt.run(|ctx| {
///     let r = ctx.alloc_ref_data(1);
///     let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
///     a + b
/// });
/// assert_eq!(sum, 5);
/// ```
pub struct HhRuntime {
    inner: Arc<Inner>,
}

impl HhRuntime {
    /// Creates a runtime from a configuration.
    pub fn new(config: HhConfig) -> HhRuntime {
        let store = Arc::new(ChunkStore::new(config.chunk_words));
        let registry = HeapRegistry::new(store);
        let pool = Pool::new(config.n_workers);
        let counters = Arc::new(Counters::default());
        // The scheduler's on-steal hook: count steals into the runtime's resettable
        // statistics. (The per-fork steal observation that drives lazy heap creation
        // flows through `Worker::join_context` in `HhCtx::join` instead.)
        {
            let counters = Arc::clone(&counters);
            pool.set_steal_hook(move |_thief, _victim| {
                counters.sched_steals.fetch_add(1, Ordering::Relaxed);
            });
        }
        HhRuntime {
            inner: Arc::new(Inner {
                registry,
                pool,
                config,
                counters,
                steal_gate: std::sync::RwLock::new(()),
            }),
        }
    }

    /// Creates a runtime with `n` workers and default memory parameters.
    pub fn with_workers(n: usize) -> HhRuntime {
        Self::new(HhConfig::with_workers(n))
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &HhConfig {
        &self.inner.config
    }

    /// Walks every live heap and returns the disentanglement violations (empty when the
    /// invariant holds). Only meaningful while no tasks are running.
    pub fn check_disentangled(&self) -> usize {
        self.inner.registry.check_disentangled().len()
    }

    /// Number of heaps created so far (for tests and diagnostics).
    pub fn heaps_created(&self) -> u64 {
        self.inner.counters.heaps_created.load(Ordering::Relaxed)
    }

    /// Number of heap creations elided by the lazy steal-time heap policy (for tests
    /// and diagnostics).
    pub fn heaps_elided(&self) -> u64 {
        self.inner.counters.heaps_elided.load(Ordering::Relaxed)
    }
}

impl Runtime for HhRuntime {
    type Ctx = HhCtx;

    fn name(&self) -> &'static str {
        "parmem"
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        let inner = Arc::clone(&self.inner);
        self.inner.pool.run(move |worker| {
            // Each root task gets a fresh root heap, mirroring `main` owning the root of
            // the hierarchy in the paper's Figure 2.
            let root_heap = inner.registry.new_root_heap();
            inner.counters.heaps_created.fetch_add(1, Ordering::Relaxed);
            let ctx = HhCtx::new(Arc::clone(&inner), root_heap, worker.clone(), true);
            f(&ctx)
        })
    }

    fn stats(&self) -> RunStats {
        let peak = self.inner.registry.store().stats().peak_words as u64;
        let mut stats = self.inner.counters.snapshot(peak);
        // Parking statistics live in the pool (cumulative over its lifetime); steals
        // are counted through the on-steal hook so they reset with the other counters.
        let sched = self.inner.pool.sched_stats();
        stats.sched_parks = sched.parks as u64;
        stats.sched_wakes = sched.wakes as u64;
        stats
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::ParCtx;

    #[test]
    fn run_returns_closure_result() {
        let rt = HhRuntime::with_workers(2);
        assert_eq!(rt.run(|_| 7), 7);
        assert_eq!(rt.name(), "parmem");
        assert_eq!(rt.n_workers(), 2);
    }

    #[test]
    fn doc_example_behaviour() {
        let rt = HhRuntime::new(HhConfig::with_workers(2));
        let sum = rt.run(|ctx| {
            let r = ctx.alloc_ref_data(1);
            let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
            a + b
        });
        assert_eq!(sum, 5);
    }

    #[test]
    fn stats_track_allocation_and_heaps() {
        let rt = HhRuntime::with_workers(1);
        rt.run(|ctx| {
            let _a = ctx.alloc_data_array(100);
            let _ = ctx.join(|c| c.alloc_data_array(10), |c| c.alloc_data_array(10));
        });
        let s = rt.stats();
        assert!(s.allocated_words >= 120);
        // Lazy steal-time heaps on a single worker: nothing is ever stolen, so the
        // fork creates no heaps — both elisions are accounted instead.
        assert_eq!(s.heaps_created, 1, "only the root heap");
        assert_eq!(s.heaps_elided, 2, "one unstolen fork elides two heaps");
        assert!(s.peak_live_words > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().allocated_words, 0);
    }

    #[test]
    fn eager_config_creates_two_heaps_per_fork() {
        let rt = HhRuntime::new(HhConfig::eager_heaps(1));
        rt.run(|ctx| {
            let _ = ctx.join(|c| c.alloc_data_array(10), |c| c.alloc_data_array(10));
        });
        let s = rt.stats();
        assert_eq!(s.heaps_created, 3, "root + two children");
        assert_eq!(s.heaps_elided, 0);
    }

    #[test]
    fn heap_accounting_is_conserved_across_policies() {
        // Per fork: created + elided == 2 in both modes, regardless of stealing.
        for workers in [1, 4] {
            let rt = HhRuntime::with_workers(workers);
            rt.run(|ctx| {
                fn tree<C: hh_api::ParCtx>(c: &C, depth: usize) {
                    if depth == 0 {
                        let _ = c.alloc_data_array(8);
                    } else {
                        c.join(|c| tree(c, depth - 1), |c| tree(c, depth - 1));
                    }
                }
                tree(ctx, 6);
            });
            let s = rt.stats();
            let forks = (1u64 << 6) - 1; // 63 join calls in a depth-6 full binary tree
            assert_eq!(
                (s.heaps_created - 1) + s.heaps_elided,
                2 * forks,
                "workers={workers}: non-root creations plus elisions must cover every fork"
            );
        }
    }
}
