//! Runtime construction and the [`Runtime`] implementation.

use crate::config::HhConfig;
use crate::counters::Counters;
use crate::ctx::HhCtx;
use hh_api::{RunStats, Runtime};
use hh_heaps::HeapRegistry;
use hh_objmodel::ChunkStore;
use hh_sched::Pool;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared state of one hierarchical-heap runtime: the heap registry (which owns the
/// chunk store), the scheduler pool, the configuration, and the statistics counters.
pub(crate) struct Inner {
    pub(crate) registry: HeapRegistry,
    pub(crate) pool: Pool,
    pub(crate) config: HhConfig,
    pub(crate) counters: Counters,
}

/// The hierarchical-heap runtime with mutation support (`mlton-parmem` in the paper's
/// terminology).
///
/// ```
/// use hh_runtime::{HhRuntime, HhConfig};
/// use hh_api::{ParCtx, Runtime};
///
/// let rt = HhRuntime::new(HhConfig::with_workers(2));
/// let sum = rt.run(|ctx| {
///     let r = ctx.alloc_ref_data(1);
///     let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
///     a + b
/// });
/// assert_eq!(sum, 5);
/// ```
pub struct HhRuntime {
    inner: Arc<Inner>,
}

impl HhRuntime {
    /// Creates a runtime from a configuration.
    pub fn new(config: HhConfig) -> HhRuntime {
        let store = Arc::new(ChunkStore::new(config.chunk_words));
        let registry = HeapRegistry::new(store);
        let pool = Pool::new(config.n_workers);
        HhRuntime {
            inner: Arc::new(Inner {
                registry,
                pool,
                config,
                counters: Counters::default(),
            }),
        }
    }

    /// Creates a runtime with `n` workers and default memory parameters.
    pub fn with_workers(n: usize) -> HhRuntime {
        Self::new(HhConfig::with_workers(n))
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &HhConfig {
        &self.inner.config
    }

    /// Walks every live heap and returns the disentanglement violations (empty when the
    /// invariant holds). Only meaningful while no tasks are running.
    pub fn check_disentangled(&self) -> usize {
        self.inner.registry.check_disentangled().len()
    }

    /// Number of heaps created so far (for tests and diagnostics).
    pub fn heaps_created(&self) -> u64 {
        self.inner.counters.heaps_created.load(Ordering::Relaxed)
    }
}

impl Runtime for HhRuntime {
    type Ctx = HhCtx;

    fn name(&self) -> &'static str {
        "parmem"
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        let inner = Arc::clone(&self.inner);
        self.inner.pool.run(move |worker| {
            // Each root task gets a fresh root heap, mirroring `main` owning the root of
            // the hierarchy in the paper's Figure 2.
            let root_heap = inner.registry.new_root_heap();
            inner.counters.heaps_created.fetch_add(1, Ordering::Relaxed);
            let ctx = HhCtx::new(Arc::clone(&inner), root_heap, worker.clone());
            f(&ctx)
        })
    }

    fn stats(&self) -> RunStats {
        let peak = self.inner.registry.store().stats().peak_words as u64;
        self.inner.counters.snapshot(peak)
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::ParCtx;

    #[test]
    fn run_returns_closure_result() {
        let rt = HhRuntime::with_workers(2);
        assert_eq!(rt.run(|_| 7), 7);
        assert_eq!(rt.name(), "parmem");
        assert_eq!(rt.n_workers(), 2);
    }

    #[test]
    fn doc_example_behaviour() {
        let rt = HhRuntime::new(HhConfig::with_workers(2));
        let sum = rt.run(|ctx| {
            let r = ctx.alloc_ref_data(1);
            let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
            a + b
        });
        assert_eq!(sum, 5);
    }

    #[test]
    fn stats_track_allocation_and_heaps() {
        let rt = HhRuntime::with_workers(1);
        rt.run(|ctx| {
            let _a = ctx.alloc_data_array(100);
            let _ = ctx.join(|c| c.alloc_data_array(10), |c| c.alloc_data_array(10));
        });
        let s = rt.stats();
        assert!(s.allocated_words >= 120);
        assert!(s.heaps_created >= 3, "root + two children");
        assert!(s.peak_live_words > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().allocated_words, 0);
    }
}
