//! Mutable-access operations: `findMaster`, `readMutable`, `writeNonptr`, `writePtr`
//! (the paper's Figure 6 and the dispatch part of Figure 7).

use crate::runtime::Inner;
use hh_heaps::HeapId;
use hh_objmodel::ObjPtr;
use std::sync::atomic::Ordering;

impl Inner {
    /// `findMaster` (Figure 6, lines 5–10): walks the forwarding chain to the master
    /// copy using double-checked locking, and returns with a READ lock held on the
    /// master's heap. **The caller must release that lock.**
    ///
    /// Promotion v2: chains of two or more hops are **path-compressed** after the
    /// chase — every intermediate hop is CAS-shortcut to the chain's end (see
    /// [`hh_objmodel::ChunkStore::compress_fwd_chain`]) — so an object promoted `k` times costs `O(k)`
    /// once and `O(1)` on every later resolution. The fast path (no forwarding
    /// pointer) performs no extra atomic traffic; hops and compressions are counted
    /// only when a chain was actually walked.
    pub(crate) fn find_master(&self, obj: ObjPtr) -> (ObjPtr, HeapId) {
        let store: &hh_objmodel::ChunkStore = self.registry.store();
        let mut start = obj;
        loop {
            // Chase forwarding pointers without holding any lock.
            let mut cur = start;
            let mut hops = 0u64;
            loop {
                let v = store.view(cur);
                if !v.has_fwd() {
                    break;
                }
                cur = v.fwd();
                hops += 1;
            }
            if hops > 0 {
                self.counters.fwd_hops.fetch_add(hops, Ordering::Relaxed);
                if hops >= 2 {
                    let done = store.compress_fwd_chain(start, cur);
                    if done > 0 {
                        self.counters
                            .fwd_compressions
                            .fetch_add(done, Ordering::Relaxed);
                    }
                }
            }
            // Candidate master found: lock its heap in shared mode and re-check. A
            // concurrent promotion may have installed a forwarding pointer in between;
            // if so, drop the lock and chase again from the candidate.
            let heap = self.registry.heap_of(cur);
            self.registry.heap(heap).lock.lock_shared();
            if !store.view(cur).has_fwd() {
                return (cur, heap);
            }
            self.registry.heap(heap).lock.unlock_shared();
            start = cur;
        }
    }

    /// `readMutable` (Figure 6, lines 11–17).
    pub(crate) fn read_mut_impl(&self, obj: ObjPtr, field: usize) -> u64 {
        let store = self.registry.store();
        if self.config.enable_read_write_fast_path {
            // Fast path: read optimistically, then check that the object has no copies.
            let v = store.view(obj);
            let res = v.field(field);
            if !v.has_fwd() {
                return res;
            }
        }
        let (master, heap) = self.find_master(obj);
        let res = store.view(master).field(field);
        self.registry.heap(heap).lock.unlock_shared();
        res
    }

    /// `writeNonptr` (Figure 6, lines 18–23).
    pub(crate) fn write_nonptr_impl(&self, obj: ObjPtr, field: usize, val: u64) {
        // Incremental-GC write barrier: ensure a from-space `obj` is forwarded
        // *before* the store below, so the optimistic-write recheck (and
        // `find_master`) necessarily lands in to-space and the update cannot be
        // lost to a concurrent evacuation snapshot.
        self.gc_barrier(obj);
        let store = self.registry.store();
        if self.config.enable_read_write_fast_path {
            // Fast path: write optimistically, then check whether `obj` was the master.
            let v = store.view(obj);
            v.set_field(field, val);
            if !v.has_fwd() {
                return;
            }
        }
        let (master, heap) = self.find_master(obj);
        store.view(master).set_field(field, val);
        self.registry.heap(heap).lock.unlock_shared();
    }

    /// Atomic compare-and-swap on a mutable non-pointer field.
    ///
    /// Not part of the paper's Figure 6, but required by the BFS benchmarks (§4.2),
    /// which mark vertices visited with a compare-and-swap. The structure mirrors
    /// `writeNonptr`: apply to the object, then re-apply to the master copy if the
    /// object turns out to have been promoted.
    pub(crate) fn cas_nonptr_impl(
        &self,
        obj: ObjPtr,
        field: usize,
        expected: u64,
        new: u64,
    ) -> Result<u64, u64> {
        self.gc_barrier(obj);
        let store = self.registry.store();
        if self.config.enable_read_write_fast_path {
            let v = store.view(obj);
            if !v.has_fwd() {
                let res = v.cas_field(field, expected, new);
                if !v.has_fwd() {
                    return res;
                }
                // A promotion raced with us; fall through and apply on the master copy
                // (the promotion copied either the pre- or post-CAS value, and the CAS
                // below re-establishes the intended outcome on the authoritative copy).
            }
        }
        let (master, heap) = self.find_master(obj);
        let res = store.view(master).cas_field(field, expected, new);
        self.registry.heap(heap).lock.unlock_shared();
        res
    }

    // ------------------------------------------------------------------
    // Bulk field operations (ParCtx v2).
    //
    // The scalar operations above pay one `findMaster` (forwarding-chain walk plus a
    // heap lock round-trip) per word in the slow path, and one forwarding check per
    // word even in the fast path. The bulk operations resolve the master copy exactly
    // once per object operand and hold that heap's READ lock across the whole slice:
    // the lock is what keeps a concurrent promotion from installing a new copy
    // mid-slice (promotion takes the exclusive lock), so the slice is read or written
    // on a single authoritative copy.
    // ------------------------------------------------------------------

    /// As [`Inner::find_master`], but also counts the lookup in the bulk-op statistics.
    /// Every bulk implementation resolves masters through this wrapper, so the
    /// `bulk_master_lookups` counter is a measurement: if an implementation regressed
    /// to per-element resolution, the counter would expose it.
    fn find_master_counted(&self, obj: ObjPtr) -> (ObjPtr, HeapId) {
        self.counters
            .bulk_master_lookups
            .fetch_add(1, Ordering::Relaxed);
        self.find_master(obj)
    }

    /// Bulk `readMutable`: one `findMaster`, then a straight field loop under the
    /// master heap's read lock.
    pub(crate) fn read_mut_bulk_impl(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        if out.is_empty() {
            return;
        }
        self.counters.record_bulk(out.len() as u64);
        let store = self.registry.store();
        let (master, heap) = self.find_master_counted(obj);
        let v = store.view(master);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = v.field(start + k);
        }
        self.registry.heap(heap).lock.unlock_shared();
    }

    /// Bulk `writeNonptr`: one `findMaster`, then a straight field-store loop under the
    /// master heap's read lock.
    pub(crate) fn write_nonptr_bulk_impl(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        if vals.is_empty() {
            return;
        }
        self.gc_barrier(obj);
        self.counters.record_bulk(vals.len() as u64);
        let store = self.registry.store();
        let (master, heap) = self.find_master_counted(obj);
        let v = store.view(master);
        for (k, &val) in vals.iter().enumerate() {
            v.set_field(start + k, val);
        }
        self.registry.heap(heap).lock.unlock_shared();
    }

    /// Bulk fill: one `findMaster`, then a repeated store under the read lock.
    pub(crate) fn fill_nonptr_impl(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        if len == 0 {
            return;
        }
        self.gc_barrier(obj);
        self.counters.record_bulk(len as u64);
        let store = self.registry.store();
        let (master, heap) = self.find_master_counted(obj);
        let v = store.view(master);
        for k in 0..len {
            v.set_field(start + k, val);
        }
        self.registry.heap(heap).lock.unlock_shared();
    }

    /// Object→object range copy: one `findMaster` per operand (two in total).
    ///
    /// The source slice is staged through a buffer between the two lock scopes, so
    /// at most one heap read lock is held at a time — taking both at once could
    /// deadlock against a writer waiting between the two acquisitions under the
    /// writer-preferring heap lock. The buffer is a **per-worker thread-local**,
    /// reused across calls (GC v2 satellite): the old `vec![0u64; len]` paid one
    /// heap allocation per copy on a hot bulk path. Growth is accounted to the
    /// `promo_buf_allocs` scratch-buffer counter, so `tests/promo_alloc.rs` can
    /// assert the steady state allocates nothing. Capacity beyond
    /// `COPY_BUF_RETAIN_WORDS` is returned once a copy no longer needs it, so an
    /// occasional huge copy doesn't pin its footprint on the thread for life.
    pub(crate) fn copy_nonptr_impl(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        use std::cell::RefCell;
        thread_local! {
            static COPY_BUF: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        /// Capacity retained across calls (words). An oversized copy must not pin
        /// its capacity on the worker thread for the process lifetime, so the
        /// excess is given back — but only once a copy arrives that no longer
        /// needs it (hysteresis: a steady stream of oversized copies keeps
        /// reusing the large buffer instead of churning allocate/free per call).
        const COPY_BUF_RETAIN_WORDS: usize = 64 * 1024;
        if len == 0 {
            return;
        }
        // Only the destination is written; source reads resolve through
        // `find_master` and from-space stays readable until finalize retires it.
        self.gc_barrier(dst);
        self.counters.record_bulk(len as u64);
        let store = self.registry.store();
        COPY_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            let cap_before = buf.capacity();
            buf.clear();
            buf.resize(len, 0);
            {
                let (master, heap) = self.find_master_counted(src);
                let v = store.view(master);
                for (k, slot) in buf.iter_mut().enumerate() {
                    *slot = v.field(src_start + k);
                }
                self.registry.heap(heap).lock.unlock_shared();
            }
            {
                let (master, heap) = self.find_master_counted(dst);
                let v = store.view(master);
                for (k, &val) in buf.iter().enumerate() {
                    v.set_field(dst_start + k, val);
                }
                self.registry.heap(heap).lock.unlock_shared();
            }
            if buf.capacity() != cap_before {
                self.counters
                    .promo_buf_allocs
                    .fetch_add(1, Ordering::Relaxed);
            }
            if len <= COPY_BUF_RETAIN_WORDS && buf.capacity() > COPY_BUF_RETAIN_WORDS {
                buf.clear();
                buf.shrink_to(COPY_BUF_RETAIN_WORDS);
            }
        });
    }

    /// `writePtr` (Figure 7, lines 1–12).
    pub(crate) fn write_ptr_impl(
        &self,
        current_heap: HeapId,
        obj: ObjPtr,
        field: usize,
        ptr: ObjPtr,
    ) {
        // Barrier the written-to object *and* the written value: storing a
        // from-space address would outlive the window's from-space chunks, so
        // the value is substituted with its to-space copy here.
        self.gc_barrier(obj);
        let ptr = self.gc_barrier_value(ptr);
        let store = self.registry.store();

        // Fast path (lines 2–5): the object lives in the current task's heap — which is
        // necessarily a leaf, so no promotion can be needed — and has no copies.
        if self.config.enable_write_ptr_fast_path {
            let v = store.view(obj);
            if !v.has_fwd() && self.registry.heap_of(obj) == current_heap {
                v.set_field(field, ptr.to_bits());
                self.counters
                    .fast_ptr_writes
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }

        // Slow path: find the master copy (read lock held on its heap).
        let (master, master_heap) = self.find_master(obj);

        // Writing NULL can never create entanglement.
        let no_promotion_needed = ptr.is_null() || {
            let obj_depth = self.registry.heap(master_heap).depth();
            let ptr_depth = self.registry.depth(self.registry.heap_of(ptr));
            obj_depth >= ptr_depth
        };

        if no_promotion_needed {
            // Lines 7–10: the pointee is at the same level or above; write directly.
            store.view(master).set_field(field, ptr.to_bits());
            self.registry.heap(master_heap).lock.unlock_shared();
            self.counters
                .slow_ptr_writes
                .fetch_add(1, Ordering::Relaxed);
            return;
        }

        // Lines 11–12: writing would create a down-pointer; promote first.
        self.registry.heap(master_heap).lock.unlock_shared();
        self.counters
            .promoting_writes
            .fetch_add(1, Ordering::Relaxed);
        self.write_promote(master, field, ptr);
    }
}
