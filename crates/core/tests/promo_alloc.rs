//! Regression tests for the promotion lock path's allocation behaviour
//! (promotion v2): `write_promote` must reuse one per-worker scratch-buffer set
//! instead of allocating fresh `Vec`s per promotion, and the unstolen fast path
//! must not touch the promotion machinery at all.
//!
//! The measurement is the `promo_buf_allocs` counter, which the runtime bumps
//! whenever a promotion pass created **or grew** a lock-path scratch buffer (the
//! capacities are compared before/after each pass, so any per-promotion `Vec`
//! allocation would register on every single promotion).

use hh_api::{ObjKind, ObjPtr, ParCtx, Runtime};
use hh_runtime::{HhConfig, HhRuntime};

/// One promoting write: a child (owning a fresh heap under the eager config) builds
/// a chain of `chain_len` objects and publishes it into a parent-heap ref.
fn promote_once<C: ParCtx>(ctx: &C, chain_len: usize) {
    let holder = ctx.alloc_ref_ptr(ObjPtr::NULL);
    ctx.join(
        |c| {
            let mut head = ObjPtr::NULL;
            for k in 0..chain_len {
                head = c.alloc_cons(ObjPtr::NULL, head, k as u64);
            }
            c.write_ptr(holder, 0, head);
        },
        |_| (),
    );
}

#[test]
fn unstolen_fast_path_performs_zero_lock_path_allocations() {
    // One worker, lazy heaps: no fork is ever stolen, every branch runs in the
    // parent's heap, and every pointer write takes the allocation-free fast path.
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    rt.run(|ctx| {
        let target = ctx.alloc_ref_data(7);
        ctx.join(
            |c| {
                let obj = c.alloc(1, 1, ObjKind::Ref);
                for _ in 0..10_000 {
                    c.write_ptr(obj, 0, target);
                }
            },
            |_| (),
        );
    });
    let s = rt.stats();
    assert_eq!(
        s.promotions, 0,
        "unstolen same-heap writes must not promote"
    );
    assert_eq!(
        rt.promo_buffer_allocs(),
        0,
        "the fast path must never touch the promotion scratch buffers"
    );
}

#[test]
fn bulk_copy_path_reuses_the_thread_local_staging_buffer() {
    // `copy_nonptr` stages the source slice through a per-worker thread-local
    // buffer between its two lock scopes (GC v2 satellite; it used to allocate a
    // fresh `vec![0u64; len]` per call). Growth is accounted to the shared
    // scratch-buffer counter, so the steady state must report zero.
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    // Warm-up: the first copy on the worker thread sizes the buffer.
    rt.run(|ctx| {
        let a = ctx.alloc_data_array(512);
        let b = ctx.alloc_data_array(512);
        ctx.copy_nonptr(a, 0, b, 0, 512);
    });
    rt.reset_stats();
    rt.run(|ctx| {
        let a = ctx.alloc_data_array(512);
        let b = ctx.alloc_data_array(512);
        for k in 0..1_000u64 {
            ctx.write_nonptr(a, (k % 512) as usize, k);
            ctx.copy_nonptr(a, 0, b, 0, 512);
            ctx.copy_nonptr(b, 0, a, 0, 257); // shorter lengths reuse the same buffer
        }
        assert_eq!(ctx.read_mut(b, 0), ctx.read_mut(a, 0));
    });
    let s = rt.stats();
    assert!(s.bulk_ops >= 2_000, "copies must be counted as bulk ops");
    assert_eq!(
        rt.promo_buffer_allocs(),
        0,
        "steady-state bulk copies allocated staging buffers"
    );
}

#[test]
fn repeated_promotions_reuse_the_per_worker_buffers() {
    let rt = HhRuntime::new(HhConfig::eager_heaps(1));
    // Warm-up: the first promotions on each worker thread may create / grow the
    // thread's scratch buffers (bounded by the largest lock path + worklist seen).
    rt.run(|ctx| {
        for _ in 0..4 {
            promote_once(ctx, 32);
        }
    });
    let warmed = rt.promo_buffer_allocs();
    rt.reset_stats();

    // Steady state: hundreds of promotions of the same shape must perform zero
    // further lock-path allocations.
    rt.run(|ctx| {
        for _ in 0..400 {
            promote_once(ctx, 32);
        }
    });
    let s = rt.stats();
    assert!(
        s.promotions >= 400,
        "every publish must promote under eager heaps (saw {})",
        s.promotions
    );
    assert_eq!(
        rt.promo_buffer_allocs(),
        0,
        "steady-state promotions allocated lock-path buffers (warm-up did {warmed})"
    );
}
