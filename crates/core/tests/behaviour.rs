//! Behavioural integration tests for the hierarchical-heap runtime: promotion, master
//! copies, disentanglement, collection, and concurrency.

use hh_api::{ParCtx, Runtime};
use hh_objmodel::{ObjKind, ObjPtr};
use hh_runtime::{HhConfig, HhRuntime};

fn runtime(workers: usize) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 1024,
        gc_threshold_words: 64 * 1024,
        ..Default::default()
    })
}

/// A runtime with the v1 eager per-fork child heaps. The promotion tests below write
/// from an *unstolen* child into a parent object; under the default lazy steal-time
/// heap policy such a child runs in the parent's heap (the write is same-heap and
/// correctly promotes nothing), so to exercise the promotion machinery
/// deterministically they pin the eager shape. Steal-driven promotion under the lazy
/// policy is covered by `prop_random_mutation_trees_stay_disentangled` and the
/// cross-runtime suite.
fn eager_runtime(workers: usize) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 1024,
        gc_threshold_words: 64 * 1024,
        lazy_child_heaps: false,
        ..Default::default()
    })
}

/// A reference allocated by the parent and written by both children with locally
/// allocated data: the canonical entanglement scenario of §2. Writing must promote, all
/// reads must go through the master copy, and the final hierarchy must be disentangled.
#[test]
fn children_writing_local_data_into_parent_ref_promotes() {
    let rt = eager_runtime(2);
    let observed = rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        let (_, _) = ctx.join(
            |c| {
                // Child 1: write a locally allocated pair into the parent's ref.
                let local = c.alloc(0, 2, ObjKind::ArrayData);
                c.write_nonptr(local, 0, 111);
                c.write_nonptr(local, 1, 222);
                c.write_ptr(shared, 0, local);
            },
            |c| {
                // Child 2: read whatever the ref holds (racy which child wins, but the
                // value must always be a fully readable, promoted object or NULL).
                let seen = c.read_mut_ptr(shared, 0);
                if !seen.is_null() {
                    let a = c.read_mut(seen, 0);
                    let b = c.read_mut(seen, 1);
                    assert!((a, b) == (111, 222) || (a, b) == (0, 0));
                }
            },
        );
        let final_ptr = ctx.read_mut_ptr(shared, 0);
        assert!(!final_ptr.is_null());
        (ctx.read_mut(final_ptr, 0), ctx.read_mut(final_ptr, 1))
    });
    assert_eq!(observed, (111, 222));
    assert_eq!(rt.check_disentangled(), 0);
    let stats = rt.stats();
    assert!(
        stats.promoted_objects >= 1,
        "a promotion must have occurred"
    );
}

/// Promotion through several levels: the deepest task writes into a root-allocated ref,
/// so the promoted copy must land at the root and every intermediate read must agree.
#[test]
fn deep_promotion_reaches_the_root() {
    let rt = eager_runtime(2);
    let value = rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        fn descend<C: ParCtx>(c: &C, shared: ObjPtr, depth: usize) {
            if depth == 0 {
                let local = c.alloc(0, 1, ObjKind::ArrayData);
                c.write_nonptr(local, 0, 4242);
                c.write_ptr(shared, 0, local);
            } else {
                c.join(|c| descend(c, shared, depth - 1), |_| ());
            }
        }
        descend(ctx, shared, 6);
        let p = ctx.read_mut_ptr(shared, 0);
        ctx.read_mut(p, 0)
    });
    assert_eq!(value, 4242);
    assert_eq!(rt.check_disentangled(), 0);
    assert!(rt.stats().promoted_objects >= 1);
}

/// Writing a pointer to data that already lives at or above the target's heap must not
/// promote anything (the "non-promoting write" column of Figure 8).
#[test]
fn up_pointer_writes_do_not_promote() {
    let rt = runtime(2);
    rt.run(|ctx| {
        let ancestor_data = ctx.alloc_ref_data(5);
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        let (_, _) = ctx.join(
            |c| c.write_ptr(shared, 0, ancestor_data),
            |c| {
                // A purely local structure with pointer writes: also no promotion.
                let cell = c.alloc_ref_ptr(ObjPtr::NULL);
                let local = c.alloc_ref_data(1);
                c.write_ptr(cell, 0, local);
            },
        );
    });
    assert_eq!(rt.stats().promoted_objects, 0);
    assert_eq!(rt.check_disentangled(), 0);
}

/// Transitive promotion: writing a list of locally allocated cons cells into a parent
/// ref must copy the whole list upward, and reads through the promoted list must see the
/// original values.
#[test]
fn promotion_copies_transitively_reachable_data() {
    let rt = eager_runtime(2);
    let collected = rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        let (_, _) = ctx.join(
            |c| {
                let mut list = ObjPtr::NULL;
                for i in 0..20u64 {
                    let payload = c.alloc_ref_data(i * 10);
                    list = c.alloc_cons(payload, list, i);
                }
                c.write_ptr(shared, 0, list);
            },
            |_| (),
        );
        // Parent walks the promoted list.
        let mut out = Vec::new();
        let mut cur = ctx.read_mut_ptr(shared, 0);
        while !cur.is_null() {
            let payload = ctx.read_imm_ptr(cur, 0);
            let tag = ctx.read_imm(cur, 2);
            out.push((tag, ctx.read_mut(payload, 0)));
            cur = ctx.read_imm_ptr(cur, 1);
        }
        out
    });
    assert_eq!(collected.len(), 20);
    for (i, (tag, val)) in collected.iter().rev().enumerate() {
        assert_eq!(*tag, i as u64);
        assert_eq!(*val, i as u64 * 10);
    }
    assert_eq!(rt.check_disentangled(), 0);
    let stats = rt.stats();
    assert!(
        stats.promoted_objects >= 40,
        "20 cons cells + 20 payload refs must be promoted, saw {}",
        stats.promoted_objects
    );
}

/// Repeated writes at decreasing depths create chains of copies; the master copy (the
/// shallowest) must be the one all mutable accesses agree on.
#[test]
fn master_copy_is_authoritative_after_repeated_promotion() {
    let rt = runtime(2);
    let (v_before, v_after) = rt.run(|ctx| {
        let root_ref = ctx.alloc_ref_ptr(ObjPtr::NULL);
        // A mutable cell allocated two levels down gets promoted to the root when the
        // grandchild writes it into the root ref.
        let cell = ctx
            .join(
                |c| {
                    c.join(
                        |cc| {
                            let cell = cc.alloc_ref_data(7);
                            cc.write_ptr(root_ref, 0, cell);
                            cell
                        },
                        |_| ObjPtr::NULL,
                    )
                    .0
                },
                |_| ObjPtr::NULL,
            )
            .0;
        // `cell` is a stale pointer to the original (deep) copy; the master lives at the
        // root now. Mutable reads and writes through either pointer must agree.
        let before = ctx.read_mut(cell, 0);
        ctx.write_nonptr(cell, 0, 99);
        let through_root = ctx.read_mut_ptr(root_ref, 0);
        let after = ctx.read_mut(through_root, 0);
        (before, after)
    });
    assert_eq!(v_before, 7);
    assert_eq!(
        v_after, 99,
        "update through the old copy must reach the master"
    );
    assert_eq!(rt.check_disentangled(), 0);
}

/// Concurrent compare-and-swap increments from many tasks on a root-allocated counter.
#[test]
fn cas_increments_are_not_lost() {
    let rt = runtime(4);
    let total = 64u64;
    let final_value = rt.run(|ctx| {
        let counter = ctx.alloc_ref_data(0);
        fn bump<C: ParCtx>(c: &C, counter: ObjPtr, n: u64) {
            if n == 1 {
                loop {
                    let cur = c.read_mut(counter, 0);
                    if c.cas_nonptr(counter, 0, cur, cur + 1).is_ok() {
                        break;
                    }
                }
            } else {
                c.join(|c| bump(c, counter, n / 2), |c| bump(c, counter, n - n / 2));
            }
        }
        bump(ctx, counter, total);
        ctx.read_mut(counter, 0)
    });
    assert_eq!(final_value, total);
    assert_eq!(rt.check_disentangled(), 0);
}

/// Immutable reads must be valid on any copy: build a tuple, promote it, and check the
/// stale pointer still yields the same immutable fields.
#[test]
fn immutable_reads_agree_across_copies() {
    let rt = runtime(2);
    rt.run(|ctx| {
        let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
        let stale = ctx
            .join(
                |c| {
                    let t = c.alloc(0, 3, ObjKind::Tuple);
                    c.write_nonptr(t, 0, 1);
                    c.write_nonptr(t, 1, 2);
                    c.write_nonptr(t, 2, 3);
                    c.write_ptr(shared, 0, t);
                    t
                },
                |_| ObjPtr::NULL,
            )
            .0;
        let master = ctx.read_mut_ptr(shared, 0);
        for f in 0..3 {
            assert_eq!(ctx.read_imm(stale, f), ctx.read_imm(master, f));
        }
    });
}

/// Leaf-heap collection preserves pinned data, collects garbage from the accounting
/// point of view, and leaves values intact.
#[test]
fn collection_preserves_pinned_survivors() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 1,
        chunk_words: 256,
        gc_threshold_words: 1 << 20,
        ..Default::default()
    });
    rt.run(|ctx| {
        // Survivor: a small list we pin.
        let mut survivor = ObjPtr::NULL;
        for i in 0..10u64 {
            survivor = ctx.alloc_cons(ObjPtr::NULL, survivor, i);
        }
        ctx.pin(survivor);
        // Garbage: large arrays we drop on the floor.
        for _ in 0..50 {
            let g = ctx.alloc_data_array(1000);
            ctx.write_nonptr(g, 0, 1);
        }
        ctx.force_collect();
        // The survivor list is still intact when read through fresh master lookups.
        let mut cur = survivor;
        // After collection the pinned root vector was updated, but our local copy may be
        // stale; mutable reads resolve through forwarding, immutable reads are valid on
        // any copy, so walking still works.
        let mut tags = Vec::new();
        while !cur.is_null() {
            tags.push(ctx.read_imm(cur, 2));
            cur = ctx.read_imm_ptr(cur, 1);
        }
        assert_eq!(tags, (0..10u64).rev().collect::<Vec<_>>());
        ctx.unpin(survivor);
    });
    let stats = rt.stats();
    assert_eq!(stats.gc_count, 1);
    assert!(stats.gc_copied_words > 0);
    assert!(
        stats.gc_copied_words < 5_000,
        "garbage arrays must not be copied (copied {} words)",
        stats.gc_copied_words
    );
}

/// Lazy steal-time heaps: tasks that *borrow* the root heap still perform threshold
/// collections when nothing else can observe the heap (deterministically so on one
/// worker, where no steal can ever be in flight), and the collection treats the pins
/// of every suspended ancestor frame as roots — a leaf must never collect away an
/// object its grandparent pinned.
#[test]
fn lazy_borrower_collections_preserve_ancestor_pins() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 1,
        chunk_words: 256,
        gc_threshold_words: 10_000,
        ..Default::default()
    });
    rt.run(|ctx| {
        // Pin in the root frame, then descend through borrowing forks whose leaves
        // allocate garbage and poll; the collections they trigger run against the
        // shared root heap.
        let keep = ctx.alloc_data_array(32);
        for i in 0..32 {
            ctx.write_nonptr(keep, i, (i as u64) * 7);
        }
        ctx.pin(keep);
        fn churn<C: ParCtx>(c: &C, depth: usize, keep: ObjPtr) {
            if depth == 0 {
                for _ in 0..20 {
                    let _garbage = c.alloc_data_array(200);
                    c.maybe_collect();
                }
            } else {
                c.join(
                    |c| churn(c, depth - 1, keep),
                    |c| {
                        // The right branch pins through its own (borrowing) frame
                        // too; both pins must survive collections triggered deeper.
                        c.pin(keep);
                        churn(c, depth - 1, keep);
                        c.unpin(keep);
                    },
                );
            }
        }
        churn(ctx, 3, keep);
        for i in 0..32 {
            assert_eq!(ctx.read_mut(keep, i), (i as u64) * 7, "slot {i}");
        }
        ctx.unpin(keep);
    });
    let stats = rt.stats();
    assert!(stats.heaps_elided > 0, "all forks must have been elided");
    assert!(
        stats.gc_count >= 1,
        "borrowing leaves must still collect under pressure (got {})",
        stats.gc_count
    );
    assert_eq!(rt.check_disentangled(), 0);
}

/// The GC threshold actually triggers collections through `maybe_collect`.
#[test]
fn maybe_collect_honours_threshold() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 1,
        chunk_words: 256,
        gc_threshold_words: 10_000,
        ..Default::default()
    });
    rt.run(|ctx| {
        for _ in 0..100 {
            let _garbage = ctx.alloc_data_array(500);
            ctx.maybe_collect();
        }
    });
    assert!(
        rt.stats().gc_count >= 1,
        "threshold crossings must trigger collections"
    );
}

/// Disabling the fast paths (ablation A1) must not change results, only counters.
#[test]
fn fast_path_ablation_is_semantically_equivalent() {
    for (fast_rw, fast_ptr) in [(true, true), (false, false), (true, false), (false, true)] {
        let rt = HhRuntime::new(HhConfig {
            n_workers: 2,
            enable_read_write_fast_path: fast_rw,
            enable_write_ptr_fast_path: fast_ptr,
            ..Default::default()
        });
        let v = rt.run(|ctx| {
            let shared = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let (_, _) = ctx.join(
                |c| {
                    let local = c.alloc_ref_data(13);
                    c.write_ptr(shared, 0, local);
                },
                |c| {
                    let p = c.read_mut_ptr(shared, 0);
                    if !p.is_null() {
                        let _ = c.read_mut(p, 0);
                    }
                },
            );
            let p = ctx.read_mut_ptr(shared, 0);
            ctx.read_mut(p, 0)
        });
        assert_eq!(v, 13);
        assert_eq!(rt.check_disentangled(), 0);
    }
}

/// A tournament-style reduction: every join point allocates a node and sets "parent
/// pointers" in both operands — the representative local, non-promoting write pattern.
#[test]
fn tournament_reduction_uses_only_local_writes() {
    let rt = runtime(4);
    let max = rt.run(|ctx| {
        fn tourney<C: ParCtx>(c: &C, lo: u64, hi: u64) -> (ObjPtr, u64) {
            if hi - lo == 1 {
                // Leaf contestant: [fitness, parent-ptr] — parent stored as a ptr field.
                let node = c.alloc(1, 1, ObjKind::Node);
                c.write_nonptr(node, 1, hh_api::hash64(lo) % 1_000_000);
                (node, c.read_mut(node, 1))
            } else {
                let mid = lo + (hi - lo) / 2;
                let ((ln, lv), (rn, rv)) = c.join(|c| tourney(c, lo, mid), |c| tourney(c, mid, hi));
                let winner_val = lv.max(rv);
                let node = c.alloc(1, 1, ObjKind::Node);
                c.write_nonptr(node, 1, winner_val);
                // The loser's parent pointer records who eliminated it.
                c.write_ptr(ln, 0, node);
                c.write_ptr(rn, 0, node);
                (node, winner_val)
            }
        }
        let (_root, max) = tourney(ctx, 0, 64);
        max
    });
    let expected = (0..64u64)
        .map(|i| hh_api::hash64(i) % 1_000_000)
        .max()
        .unwrap();
    assert_eq!(max, expected);
    assert_eq!(rt.check_disentangled(), 0);
    // Parent pointers are written after the children's heaps have been joined into the
    // writer's heap, so these are local writes and no promotion is needed.
    assert_eq!(rt.stats().promoted_objects, 0);
}

/// Random fork trees where every leaf performs a mix of local allocation, up-pointer
/// writes, and down-pointer (promoting) writes into a root-allocated pointer array.
/// Afterwards the hierarchy must be disentangled and every array slot must hold
/// either NULL or a readable object with the leaf's signature value.
///
/// Randomized with a deterministic seed (the build has no network access for proptest).
#[test]
fn prop_random_mutation_trees_stay_disentangled() {
    let mut rng = hh_api::Rng::new(0xBEE5);
    for _case in 0..24 {
        let depth = 1 + (rng.next_u64() % 4) as usize;
        let slots = 1 + (rng.next_u64() % 7) as usize;
        let seed = rng.next_u64();
        let workers = 1 + (rng.next_u64() % 3) as usize;
        let rt = runtime(workers);
        let slots_u64 = slots as u64;
        let ok = rt.run(move |ctx| {
            let table = ctx.alloc_ptr_array(slots);
            fn leaf<C: ParCtx>(c: &C, table: ObjPtr, slots: u64, id: u64) {
                // Local structure.
                let local = c.alloc(1, 1, ObjKind::Node);
                c.write_nonptr(local, 1, id);
                let payload = c.alloc_ref_data(id.wrapping_mul(3));
                c.write_ptr(local, 0, payload);
                // Down-pointer write into the root table: must promote.
                let slot = (hh_api::hash64(id) % slots) as usize;
                c.write_ptr(table, slot, local);
            }
            fn go<C: ParCtx>(c: &C, table: ObjPtr, slots: u64, depth: usize, id: u64) {
                if depth == 0 {
                    leaf(c, table, slots, id);
                } else {
                    c.join(
                        |c| go(c, table, slots, depth - 1, id * 2 + 1),
                        |c| go(c, table, slots, depth - 1, id * 2 + 2),
                    );
                }
            }
            go(ctx, table, slots_u64, depth, seed % 1024);
            // Validate every slot.
            for s in 0..slots {
                let p = ctx.read_mut_ptr(table, s);
                if p.is_null() {
                    continue;
                }
                let id = ctx.read_mut(p, 1);
                let payload = ctx.read_mut_ptr(p, 0);
                if payload.is_null() {
                    return false;
                }
                if ctx.read_mut(payload, 0) != id.wrapping_mul(3) {
                    return false;
                }
            }
            true
        });
        assert!(ok, "a table slot held an inconsistent object");
        assert_eq!(rt.check_disentangled(), 0);
    }
}

/// Promotion v2: a twice-promoted object carries a two-hop forwarding chain; the
/// first resolution through the stale pointer walks both hops and **path-compresses**
/// the chain, so later resolutions are single-hop. Pins the `fwd_hops` /
/// `fwd_compressions` counter semantics.
#[test]
fn double_promotion_chain_is_path_compressed_on_resolution() {
    let rt = eager_runtime(1);
    rt.run(|ctx| {
        // Depth 0: the outer holder.
        let holder0 = ctx.alloc_ref_ptr(ObjPtr::NULL);
        ctx.join(
            |c1| {
                // Depth 1: the inner holder.
                let holder1 = c1.alloc_ref_ptr(ObjPtr::NULL);
                let stale = c1
                    .join(
                        |c2| {
                            // Depth 2: allocate and publish into depth 1 — first
                            // promotion (chain d2 → d1).
                            let obj = c2.alloc_ref_data(42);
                            c2.write_ptr(holder1, 0, obj);
                            obj
                        },
                        |_| ObjPtr::NULL,
                    )
                    .0;
                // Publish the depth-1 master into depth 0 — second promotion: the
                // original now forwards d2 → d1 → d0.
                let master1 = c1.read_mut_ptr(holder1, 0);
                c1.write_ptr(holder0, 0, master1);
                // First read through the stale depth-2 pointer: walks 2 hops and
                // compresses the chain to the master.
                assert_eq!(c1.read_mut(stale, 0), 42);
                // Second read: the compressed chain is a single hop.
                assert_eq!(c1.read_mut(stale, 0), 42);
            },
            |_| (),
        );
    });
    let s = rt.stats();
    assert!(
        s.promotions >= 2,
        "two promoting writes, saw {}",
        s.promotions
    );
    assert!(
        s.fwd_compressions >= 1,
        "the two-hop chain must have been compressed (hops {}, compressions {})",
        s.fwd_hops,
        s.fwd_compressions
    );
    assert!(
        s.fwd_hops >= 3,
        "expected 2 hops on the first resolution + 1 after compression, saw {}",
        s.fwd_hops
    );
    assert_eq!(rt.check_disentangled(), 0);
}
