//! Model-based stress harness (promotion v2).
//!
//! A deterministic, seed-driven interpreter generates random programs over the
//! `ParCtx` surface — fork/join trees whose tasks allocate, read, write, CAS, build
//! immutable lists, run bulk operations, publish locally allocated structures into
//! parent-owned arrays (the promotion trigger), and poll collection — and executes
//! each program on:
//!
//! * a **sequential reference oracle** ([`model::ModelCtx`]): a plain in-memory model
//!   of the heap semantics with inline joins, no promotion, no GC — the definition of
//!   the expected checksum;
//! * all four real runtimes (`seq`, `stw`, `dlg`, `parmem`), plus `parmem` with
//!   eager per-fork heaps (every publish promotes deterministically).
//!
//! The programs are constructed so every schedule computes the same checksum:
//! parallel siblings write only disjoint slots of shared arrays — except the
//! **mailbox ops**, where both siblings CAS-add into the *same* accumulator slots
//! (addition commutes, so the sum is schedule-independent) and publish message
//! records into per-lane log slots mid-flight — and read shared mutable data only
//! after the join. A third of the seeds run with tiny GC
//! thresholds so collections, promotions, and chunk recycling interleave. The
//! hierarchical runtime runs with `check_invariants` on, so a seed that corrupts the
//! hierarchy fails at the corrupting operation, and the failing **seed is printed**
//! so `HH_STRESS_SEED=<n> cargo test -p hh-runtime --test stress` replays it.
//!
//! `HH_STRESS_SEEDS` overrides the seed count (64 in CI); `HH_WORKERS` sizes the
//! pools (the CI matrix runs 1 and 8).

use hh_api::{hash64, ObjKind, ObjPtr, ParCtx, Rng, Runtime};
use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
use hh_runtime::{HhConfig, HhRuntime};

mod model {
    //! The sequential reference oracle: heap semantics without a heap.

    use super::*;
    use std::cell::RefCell;

    struct MObj {
        n_ptr: usize,
        fields: Vec<u64>,
    }

    /// An in-memory model of the `ParCtx` semantics: objects are vectors of words,
    /// `join` runs both branches inline, promotion and collection do not exist.
    /// Whatever checksum a program computes here is what every real runtime and
    /// every real schedule must compute.
    pub struct ModelCtx {
        objs: RefCell<Vec<MObj>>,
        pins: RefCell<Vec<ObjPtr>>,
    }

    impl ModelCtx {
        pub fn new() -> ModelCtx {
            ModelCtx {
                objs: RefCell::new(Vec::new()),
                pins: RefCell::new(Vec::new()),
            }
        }

        pub fn run<R>(f: impl FnOnce(&ModelCtx) -> R) -> R {
            f(&ModelCtx::new())
        }
    }

    impl ParCtx for ModelCtx {
        fn alloc(&self, n_ptr: usize, n_nonptr: usize, _kind: ObjKind) -> ObjPtr {
            let mut objs = self.objs.borrow_mut();
            let idx = objs.len();
            let mut fields = vec![ObjPtr::NULL.to_bits(); n_ptr];
            fields.extend(std::iter::repeat_n(0u64, n_nonptr));
            objs.push(MObj { n_ptr, fields });
            ObjPtr::new(hh_objmodel::ChunkId(0), idx as u32)
        }
        fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
            self.objs.borrow()[obj.offset() as usize].fields[field]
        }
        fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
            self.read_imm(obj, field)
        }
        fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
            let mut objs = self.objs.borrow_mut();
            let o = &mut objs[obj.offset() as usize];
            debug_assert!(field >= o.n_ptr);
            o.fields[field] = val;
        }
        fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
            let mut objs = self.objs.borrow_mut();
            let o = &mut objs[obj.offset() as usize];
            debug_assert!(field < o.n_ptr);
            o.fields[field] = ptr.to_bits();
        }
        fn cas_nonptr(
            &self,
            obj: ObjPtr,
            field: usize,
            expected: u64,
            new: u64,
        ) -> Result<u64, u64> {
            let cur = self.read_mut(obj, field);
            if cur == expected {
                self.write_nonptr(obj, field, new);
                Ok(cur)
            } else {
                Err(cur)
            }
        }
        fn obj_len(&self, obj: ObjPtr) -> usize {
            self.objs.borrow()[obj.offset() as usize].fields.len()
        }
        fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
        where
            FA: FnOnce(&Self) -> RA + Send,
            FB: FnOnce(&Self) -> RB + Send,
        {
            (fa(self), fb(self))
        }
        fn pin(&self, obj: ObjPtr) {
            self.pins.borrow_mut().push(obj);
        }
        fn unpin(&self, obj: ObjPtr) {
            let mut pins = self.pins.borrow_mut();
            if let Some(pos) = pins.iter().rposition(|p| *p == obj) {
                pins.swap_remove(pos);
            }
        }
        fn maybe_collect(&self) {}
        fn n_workers(&self) -> usize {
            1
        }
    }
}

// ---------------------------------------------------------------------------
// The seed-driven program.
// ---------------------------------------------------------------------------

/// Builds a cons chain of `n` hash-derived values, keeping the head pinned across
/// allocations (an allocation may trigger a collection on the STW baselines).
fn build_chain<C: ParCtx>(c: &C, seed: u64, n: u64) -> ObjPtr {
    let mut head = ObjPtr::NULL;
    for k in 0..n {
        let next = c.alloc_cons(ObjPtr::NULL, head, hash64(seed ^ k));
        if !head.is_null() {
            c.unpin(head);
        }
        c.pin(next);
        head = next;
    }
    if !head.is_null() {
        c.unpin(head);
    }
    head
}

/// Folds a cons chain with `read_imm` (immutable cells are never promoted reads).
fn fold_chain<C: ParCtx>(c: &C, mut cur: ObjPtr, mut acc: u64) -> u64 {
    while !cur.is_null() {
        acc = acc.wrapping_mul(31).wrapping_add(c.read_imm(cur, 2));
        cur = c.read_imm_ptr(cur, 1);
    }
    acc
}

/// Mailbox sends per fork lane (sizes the accumulator array and each lane's slice
/// of the message log).
const MB_SENDS: usize = 4;

/// One cross-sibling mailbox send (the stress-oracle entanglement op): folds a
/// hash-derived payload into a mailbox accumulator slot that **both** siblings
/// target with a CAS-add retry loop — addition commutes, so the final sum is
/// schedule-independent even though the adds contend — and publishes a message
/// record into this lane's private slice of the parent's log, a promoting pointer
/// write that crosses subtrees *mid-flight*, while the sibling is still running.
/// Previously every cross-task write in the generator hit sibling-disjoint slots;
/// this is the op that finally makes the oracle cover entangled schedules.
fn mailbox_send<C: ParCtx>(
    c: &C,
    mailbox: ObjPtr,
    mlog: ObjPtr,
    lane: usize,
    k: usize,
    seed: u64,
) -> u64 {
    let payload = hash64(seed ^ 0x4D41_494C ^ k as u64); // "MAIL"
    let mut cur = c.read_mut(mailbox, k % MB_SENDS);
    loop {
        match c.cas_nonptr(mailbox, k % MB_SENDS, cur, cur.wrapping_add(payload)) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    let msg = c.alloc(0, 1, ObjKind::Node);
    c.write_nonptr(msg, 0, payload);
    c.write_ptr(mlog, lane * MB_SENDS + k, msg);
    payload
}

/// One branch's epilogue: build a chain locally and publish it into the parent's
/// pointer array (the promotion trigger on the hierarchical runtime), then fill this
/// branch's disjoint quarter of the parent's data array with distant writes.
fn publish<C: ParCtx>(c: &C, shared: ObjPtr, slot: usize, sd: ObjPtr, seed: u64, r: u64) -> u64 {
    let mut rng = Rng::new(seed ^ 0x9A7);
    let chain = build_chain(c, seed ^ 0xCAFE, 1 + rng.next_below(6));
    c.pin(chain);
    c.write_ptr(shared, slot, chain);
    c.unpin(chain);
    let base = slot * 4;
    for j in 0..4 {
        c.write_nonptr(sd, base + j, hash64(seed ^ r ^ (j as u64)));
    }
    r
}

/// The interpreter: a deterministic random program over the `ParCtx` surface.
/// Every value folded into the returned checksum is schedule-independent (parallel
/// siblings touch disjoint slots; shared mutable state is read only after joins).
fn exec<C: ParCtx>(c: &C, seed: u64, depth: u32) -> u64 {
    let mut rng = Rng::new(seed | 1);
    let mut acc = hash64(seed);

    // Private scratch array: all operand determinism is per-task.
    let len = 4 + rng.next_below(28) as usize;
    let arr = c.alloc_data_array(len);
    c.pin(arr);

    let n_ops = 8 + rng.next_below(24) as usize;
    let mut list = ObjPtr::NULL;
    for _ in 0..n_ops {
        match rng.next_below(8) {
            0 => {
                let i = rng.next_below(len as u64) as usize;
                c.write_nonptr(arr, i, rng.next_u64());
            }
            1 => {
                let i = rng.next_below(len as u64) as usize;
                acc ^= c.read_mut(arr, i);
            }
            2 => {
                let start = rng.next_below(len as u64) as usize;
                let l = rng.next_below((len - start) as u64 + 1) as usize;
                c.fill_nonptr(arr, start, l, rng.next_u64());
            }
            3 => {
                let start = rng.next_below(len as u64) as usize;
                let l = rng.next_below((len - start) as u64 + 1) as usize;
                let vals: Vec<u64> = (0..l as u64).map(|k| hash64(seed ^ k)).collect();
                c.write_nonptr_bulk(arr, start, &vals);
                let mut out = vec![0u64; l];
                c.read_mut_bulk(arr, start, &mut out);
                for v in out {
                    acc = acc.wrapping_add(v);
                }
            }
            4 => {
                let i = rng.next_below(len as u64) as usize;
                let cur = c.read_mut(arr, i);
                acc ^= match c.cas_nonptr(arr, i, cur, cur.wrapping_add(7)) {
                    Ok(prev) => prev,
                    Err(seen) => seen.rotate_left(3),
                };
            }
            5 => {
                // Extend the private immutable list; keep it reachable via pins.
                if !list.is_null() {
                    c.unpin(list);
                }
                list = c.alloc_cons(ObjPtr::NULL, list, rng.next_u64());
                c.pin(list);
            }
            6 => {
                // Non-overlapping halves copy.
                let half = len / 2;
                if half > 0 {
                    let l = rng.next_below(half as u64) as usize;
                    c.copy_nonptr(arr, 0, arr, half, l);
                }
            }
            _ => c.maybe_collect(),
        }
    }
    acc = fold_chain(c, list, acc);
    if !list.is_null() {
        c.unpin(list);
    }

    if depth > 0 && rng.next_below(10) < 9 {
        // Fork: the children get disjoint slots of `shared` (pointer publishes) and
        // disjoint quarters of `sd` (distant non-pointer writes).
        let shared = c.alloc_ptr_array(2);
        let sd = c.alloc_data_array(8);
        // Mailbox state for the cross-sibling ops: contended accumulator slots
        // plus a per-lane message log.
        let mailbox = c.alloc_data_array(MB_SENDS);
        let mlog = c.alloc_ptr_array(2 * MB_SENDS);
        c.pin(shared);
        c.pin(sd);
        c.pin(mailbox);
        c.pin(mlog);
        let s1 = hash64(seed ^ 0xA1);
        let s2 = hash64(seed ^ 0xB2);
        // Each branch sends half its mailbox traffic before its recursive body and
        // half after, so the promoting sends interleave with the sibling's whole
        // subtree rather than clustering at the join.
        let branch = move |cc: &C, lane: usize, s: u64| {
            let mut m = 0u64;
            for k in 0..MB_SENDS / 2 {
                m = m.wrapping_add(mailbox_send(cc, mailbox, mlog, lane, k, s));
            }
            let r = exec(cc, s, depth - 1);
            for k in MB_SENDS / 2..MB_SENDS {
                m = m.wrapping_add(mailbox_send(cc, mailbox, mlog, lane, k, s));
            }
            publish(cc, shared, lane, sd, s, r).wrapping_add(m)
        };
        let (a, b) = c.join(move |cc| branch(cc, 0, s1), move |cc| branch(cc, 1, s2));
        acc = acc.wrapping_add(a).wrapping_add(b.rotate_left(7));
        // Read the published structures back through the master copies.
        for slot in 0..2 {
            let head = c.read_mut_ptr(shared, slot);
            acc = fold_chain(c, head, acc);
        }
        for i in 0..8 {
            acc ^= c.read_mut(sd, i).wrapping_mul(i as u64 + 1);
        }
        // Fold the mailbox: accumulator sums (commutative, so deterministic) and
        // the per-lane message payloads (single-writer slots).
        for i in 0..MB_SENDS {
            acc = acc.wrapping_add(c.read_mut(mailbox, i).wrapping_mul(i as u64 + 1));
        }
        for s in 0..2 * MB_SENDS {
            let msg = c.read_mut_ptr(mlog, s);
            if !msg.is_null() {
                acc ^= c.read_imm(msg, 0).rotate_left((s % 7) as u32);
            }
        }
        c.maybe_collect();
        c.unpin(mlog);
        c.unpin(mailbox);
        c.unpin(sd);
        c.unpin(shared);
    }

    c.unpin(arr);
    acc
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

struct Case {
    seed: u64,
    depth: u32,
    /// Tiny GC thresholds so collections interleave with promotion.
    gc_pressure: bool,
}

impl Case {
    fn from_seed(seed: u64) -> Case {
        Case {
            seed,
            depth: 2 + (hash64(seed ^ 0xD0) % 3) as u32, // 2..=4
            gc_pressure: seed.is_multiple_of(3),
        }
    }
}

fn run_case_everywhere(case: &Case) {
    let seed = case.seed;
    let depth = case.depth;
    let replay = format!(
        "seed {seed} (replay: HH_STRESS_SEED={seed} cargo test -p hh-runtime --test stress)"
    );

    let expected = model::ModelCtx::run(|c| exec(c, seed, depth));
    let workers = hh_api::env_workers(4);
    let (chunk, threshold) = if case.gc_pressure {
        (256, 8 * 1024)
    } else {
        (4 * 1024, 4 * 1024 * 1024)
    };

    let seq = SeqRuntime::with_params(chunk, threshold, true);
    assert_eq!(
        seq.run(|c| exec(c, seed, depth)),
        expected,
        "seq diverged from the model on {replay}"
    );

    let stw = StwRuntime::with_params(workers, chunk, threshold, true);
    assert_eq!(
        stw.run(|c| exec(c, seed, depth)),
        expected,
        "stw diverged from the model on {replay}"
    );

    let dlg = DlgRuntime::with_params(workers, chunk, threshold, true);
    assert_eq!(
        dlg.run(|c| exec(c, seed, depth)),
        expected,
        "dlg diverged from the model on {replay}"
    );

    let hh_cfg = |lazy: bool, n: usize| HhConfig {
        n_workers: n,
        chunk_words: chunk,
        gc_threshold_words: threshold,
        check_invariants: true,
        lazy_child_heaps: lazy,
        ..Default::default()
    };

    let hh = HhRuntime::new(hh_cfg(true, workers));
    assert_eq!(
        hh.run(|c| exec(c, seed, depth)),
        expected,
        "parmem diverged from the model on {replay}"
    );
    assert_eq!(
        hh.check_disentangled(),
        0,
        "parmem left entanglement on {replay}"
    );

    // Eager per-fork heaps: every publish promotes, even unstolen, so the promotion
    // machinery is exercised deterministically regardless of steal luck.
    let eager = HhRuntime::new(hh_cfg(false, workers.min(2)));
    assert_eq!(
        eager.run(|c| exec(c, seed, depth)),
        expected,
        "parmem-eager diverged from the model on {replay}"
    );
    assert_eq!(
        eager.check_disentangled(),
        0,
        "parmem-eager left entanglement on {replay}"
    );
    let s = eager.stats();
    // A program that forked at all performed publishes, and under eager heaps every
    // publish is cross-heap — it must have promoted. (heaps_created > 1 ⇔ some fork
    // ran; a forkless seed legitimately promotes nothing.)
    assert!(
        s.heaps_created == 1 || s.promotions > 0,
        "eager run forked but never promoted on {replay}"
    );
}

fn seed_count() -> u64 {
    std::env::var("HH_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// GC v2 lane: one seed on the hierarchical runtime with **parallel collection
/// forced** — a GC team of 8 (clamped to the pool), tiny chunks, and a tiny
/// `gc_threshold_words` on *every* seed, so the parallel evacuation (chunk-tag
/// membership, CAS forwarding races, scan-block stealing) interleaves with
/// promotion and recycling throughout. Run lazy and eager so both the subtree
/// (borrower) and leaf (owner) collection shapes go parallel.
fn run_case_parallel_gc(case: &Case) {
    let seed = case.seed;
    let depth = case.depth;
    let replay = format!(
        "seed {seed} (replay: HH_STRESS_SEED={seed} cargo test -p hh-runtime --test stress)"
    );
    let expected = model::ModelCtx::run(|c| exec(c, seed, depth));
    let workers = hh_api::env_workers(4).max(2);
    let hh_cfg = |lazy: bool| HhConfig {
        n_workers: workers,
        gc_workers: 8,
        chunk_words: 256,
        gc_threshold_words: 8 * 1024,
        check_invariants: true,
        lazy_child_heaps: lazy,
        ..Default::default()
    };
    for lazy in [true, false] {
        let hh = HhRuntime::new(hh_cfg(lazy));
        assert_eq!(
            hh.run(|c| exec(c, seed, depth)),
            expected,
            "parmem (parallel GC, lazy={lazy}) diverged from the model on {replay}"
        );
        assert_eq!(
            hh.check_disentangled(),
            0,
            "parmem (parallel GC, lazy={lazy}) left entanglement on {replay}"
        );
        let s = hh.stats();
        assert_eq!(
            s.gc_parallel_collections, s.gc_count,
            "forced team must cover every collection (lazy={lazy}, {replay})"
        );
    }
}

/// GC v3 lane: the hierarchical runtime in **server mode with mutator-concurrent
/// incremental collection forced** — tiny chunks and threshold on every seed, the
/// invariant checker on, and two *overlapping* runs per seed (epoch-tracked, like
/// a multi-tenant server), so incremental windows open, drain, and finalize while
/// both mutators keep allocating, promoting and recycling mid-flight. Each run is
/// checked against the model's checksum for its own seed, and the runtime must be
/// fully disentangled after the overlap. Returns the number of collections that
/// actually completed incrementally, so the driver can assert the lane exercised
/// the machinery at all (a single seed's program may legitimately stay under
/// threshold).
fn run_case_incremental_gc(case: &Case) -> u64 {
    let seed = case.seed;
    let depth = case.depth;
    let replay = format!(
        "seed {seed} (replay: HH_STRESS_SEED={seed} cargo test -p hh-runtime --test stress)"
    );
    // One level deeper than the other lanes, and a threshold of a few chunks:
    // the seed programs are small (hundreds of words), so this is what makes
    // windows actually open on most seeds.
    let depth = depth + 1;
    let seed_b = seed ^ 0x5EED_B00F;
    let expected_a = model::ModelCtx::run(|c| exec(c, seed, depth));
    let expected_b = model::ModelCtx::run(|c| exec(c, seed_b, depth));
    let workers = hh_api::env_workers(4).max(2);
    let rt = HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 128,
        gc_threshold_words: 512,
        check_invariants: true,
        server_mode: true,
        incremental_gc: true,
        ..Default::default()
    });
    let mut incremental = 0;
    std::thread::scope(|scope| {
        let rt_ref = &rt;
        let b = scope.spawn(move || rt_ref.run(|c| exec(c, seed_b, depth)));
        assert_eq!(
            rt.run(|c| exec(c, seed, depth)),
            expected_a,
            "parmem (incremental, server) diverged from the model on {replay}"
        );
        incremental += rt.stats().gc_incremental_collections;
        assert_eq!(
            b.join().unwrap(),
            expected_b,
            "overlapped parmem run (incremental, server) diverged on {replay}"
        );
    });
    incremental += rt.stats().gc_incremental_collections;
    assert_eq!(
        rt.check_disentangled(),
        0,
        "parmem (incremental, server) left entanglement on {replay}"
    );
    incremental
}

/// Entanglement lane (promotion-saturated schedules): every seed runs with
/// **eager per-fork child heaps**, so every mailbox send, message publish, and
/// chain publish is a cross-heap promoting write — no steal luck required — under
/// tiny chunks and thresholds with the invariant checker on. Two shapes per seed:
/// the monolithic A6 collector, then mutator-concurrent incremental collection in
/// server mode with two overlapping runs (the GC v3 + promotion v2 combination
/// the adversarial front exists to exercise). Returns the promotions performed so
/// the driver can assert the lane really is saturated.
fn run_case_entangled(case: &Case) -> u64 {
    let seed = case.seed;
    let depth = case.depth;
    let replay = format!(
        "seed {seed} (replay: HH_STRESS_SEED={seed} cargo test -p hh-runtime --test stress)"
    );
    let expected = model::ModelCtx::run(|c| exec(c, seed, depth));
    let workers = hh_api::env_workers(4).max(2);

    // A6 shape: monolithic stop-the-mutator collections, eager heaps.
    let a6 = HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 256,
        gc_threshold_words: 2 * 1024,
        check_invariants: true,
        lazy_child_heaps: false,
        ..Default::default()
    });
    assert_eq!(
        a6.run(|c| exec(c, seed, depth)),
        expected,
        "parmem-eager (A6) diverged from the model on {replay}"
    );
    assert_eq!(
        a6.check_disentangled(),
        0,
        "parmem-eager (A6) left entanglement on {replay}"
    );
    let mut promotions = a6.stats().promotions;

    // Incremental + server mode with two overlapping eager runs.
    let depth = depth + 1;
    let seed_b = seed ^ 0x5EED_B00F;
    let expected_a = model::ModelCtx::run(|c| exec(c, seed, depth));
    let expected_b = model::ModelCtx::run(|c| exec(c, seed_b, depth));
    let inc = HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 128,
        gc_threshold_words: 512,
        check_invariants: true,
        lazy_child_heaps: false,
        server_mode: true,
        incremental_gc: true,
        ..Default::default()
    });
    std::thread::scope(|scope| {
        let rt_ref = &inc;
        let b = scope.spawn(move || rt_ref.run(|c| exec(c, seed_b, depth)));
        assert_eq!(
            inc.run(|c| exec(c, seed, depth)),
            expected_a,
            "parmem-eager (incremental, server) diverged from the model on {replay}"
        );
        promotions += inc.stats().promotions;
        assert_eq!(
            b.join().unwrap(),
            expected_b,
            "overlapped parmem-eager run (incremental, server) diverged on {replay}"
        );
    });
    promotions += inc.stats().promotions;
    assert_eq!(
        inc.check_disentangled(),
        0,
        "parmem-eager (incremental, server) left entanglement on {replay}"
    );
    promotions
}

#[test]
fn stress_entangled_forced() {
    if let Ok(one) = std::env::var("HH_STRESS_SEED") {
        let seed: u64 = one.parse().expect("HH_STRESS_SEED must be an integer");
        run_case_entangled(&Case::from_seed(seed));
        return;
    }
    let mut promotions = 0;
    for seed in 0..seed_count() {
        promotions += run_case_entangled(&Case::from_seed(seed));
    }
    assert!(
        promotions > 0,
        "the entanglement lane never promoted — it is not promotion-saturated"
    );
}

#[test]
fn stress_incremental_gc_forced() {
    if let Ok(one) = std::env::var("HH_STRESS_SEED") {
        let seed: u64 = one.parse().expect("HH_STRESS_SEED must be an integer");
        run_case_incremental_gc(&Case::from_seed(seed));
        return;
    }
    let mut incremental = 0;
    for seed in 0..seed_count() {
        incremental += run_case_incremental_gc(&Case::from_seed(seed));
    }
    assert!(
        incremental > 0,
        "the lane never completed an incremental collection — pressure knobs are dead"
    );
}

#[test]
fn stress_parallel_gc_forced() {
    if let Ok(one) = std::env::var("HH_STRESS_SEED") {
        let seed: u64 = one.parse().expect("HH_STRESS_SEED must be an integer");
        run_case_parallel_gc(&Case::from_seed(seed));
        return;
    }
    for seed in 0..seed_count() {
        run_case_parallel_gc(&Case::from_seed(seed));
    }
}

#[test]
fn stress_all_runtimes_match_the_model() {
    if let Ok(one) = std::env::var("HH_STRESS_SEED") {
        let seed: u64 = one.parse().expect("HH_STRESS_SEED must be an integer");
        run_case_everywhere(&Case::from_seed(seed));
        return;
    }
    for seed in 0..seed_count() {
        run_case_everywhere(&Case::from_seed(seed));
    }
}

/// The model itself is deterministic (same seed → same checksum), and distinct seeds
/// produce distinct programs — a meta-check that the harness has actual coverage.
#[test]
fn model_is_deterministic_and_seeds_differ() {
    let a = model::ModelCtx::run(|c| exec(c, 11, 3));
    let b = model::ModelCtx::run(|c| exec(c, 11, 3));
    assert_eq!(a, b);
    let distinct: std::collections::HashSet<u64> = (0..16)
        .map(|s| model::ModelCtx::run(|c| exec(c, s, 2)))
        .collect();
    assert!(distinct.len() >= 15, "seeds collapse to too few programs");
}
