//! Run-boundary failure model: cooperative cancellation, deadlines, injected
//! faults, and the abort-teardown guarantees (DESIGN.md §13).
//!
//! The centerpiece is the deterministic, hook-gated reproducer of the pre-fix
//! epoch leak: a run killed by a panic *inside the incremental finalize* (a
//! schedule hook throwing between the claim and the merge) used to leave the
//! window installed with its `finalizing` claim set forever. `end_run`'s forced
//! finalize waits for exactly that window to uninstall, so the dying run's
//! teardown could never complete — its run epoch stayed registered, pinned
//! `min_active_epoch`, and every younger tenant's retired chunks quarantined
//! forever (unbounded growth under perpetual overlap). The fix is the finalize
//! unwind guard: an unwinding finalizer completes the merge/adopt/uninstall
//! tail hook-free, counted in `finalize_rescues`. The test pins the schedule
//! with a certain fault at the `finalize-claimed` hook site on one worker, then
//! proves the epoch was released by running a younger tenant and watching its
//! chunks actually recycle.

use hh_api::{silence_expected_aborts, ParCtx, RunCtl, RunError, Runtime};
use hh_runtime::{FaultPlan, FaultSite, GcScheduleHooks, HhConfig, HhCtx, HhRuntime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Allocation churn with a safe point per iteration (the poll cadence
/// cancellation, deadlines, and incremental windows all key off).
fn churn(ctx: &HhCtx, iters: usize) -> u64 {
    let mut sum = 0u64;
    for i in 0..iters {
        let o = ctx.alloc_ref_data(i as u64);
        sum = sum.wrapping_add(ctx.read_mut(o, 0));
        ctx.maybe_collect();
    }
    sum
}

/// Chunk-lifecycle conservation at quiescence (the store side of "an aborted
/// run leaves the store exactly as conserved as a completed one").
fn assert_conserved(rt: &HhRuntime) {
    let s = rt.store_stats();
    assert_eq!(
        s.chunks_created,
        s.chunks_active + s.chunks_quarantined + s.chunks_free + s.chunks_released,
        "chunk conservation violated after abort"
    );
    assert_eq!(rt.active_runs(), 0, "run epoch leaked");
}

#[test]
fn try_run_passes_results_and_checks_ctl_upfront() {
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    let ctl = RunCtl::new();
    assert_eq!(
        rt.try_run(&ctl, |ctx| churn(ctx, 10)),
        Ok(churn_expected(10))
    );
    // A pre-fired token short-circuits: the closure must never start.
    let cancelled = RunCtl::new();
    cancelled.cancel();
    let ran = AtomicBool::new(false);
    let r = rt.try_run(&cancelled, |_| ran.store(true, Ordering::Relaxed));
    assert_eq!(r, Err(RunError::Cancelled));
    assert!(!ran.load(Ordering::Relaxed));
    assert_conserved(&rt);
}

/// `churn`'s pure expected value (alloc init values summed).
fn churn_expected(iters: usize) -> u64 {
    (0..iters as u64).sum()
}

#[test]
fn cancellation_aborts_a_running_task_tree() {
    silence_expected_aborts();
    let rt = HhRuntime::new(HhConfig::with_workers(hh_api::env_workers(2)));
    let ctl = RunCtl::new();
    let r = std::thread::scope(|scope| {
        let canceller = {
            let ctl = Arc::clone(&ctl);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                ctl.cancel();
            })
        };
        // Churn far longer than the cancel delay; the run must be cut short at
        // a safe point (bounded, so a broken abort path fails instead of
        // hanging: the closure eventually returns Ok and the assert fires).
        let r = rt.try_run(&ctl, |ctx| {
            let deadline = Instant::now() + Duration::from_secs(30);
            while Instant::now() < deadline {
                std::hint::black_box(churn(ctx, 64));
            }
            0
        });
        canceller.join().unwrap();
        r
    });
    assert_eq!(r, Err(RunError::Cancelled));
    assert_eq!(rt.aborted_runs(), 1, "teardown guard must count the abort");
    assert_conserved(&rt);
}

#[test]
fn deadline_expiry_aborts_the_run() {
    silence_expected_aborts();
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    let ctl = RunCtl::with_deadline(Duration::from_millis(10));
    let r = rt.try_run(&ctl, |ctx| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            std::hint::black_box(churn(ctx, 64));
        }
        0
    });
    assert_eq!(r, Err(RunError::DeadlineExceeded));
    assert_conserved(&rt);
}

#[test]
fn certain_alloc_fault_kills_the_run_and_conserves() {
    silence_expected_aborts();
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    let plan = Arc::new(FaultPlan::uniform(0xFA11, 0).with_rate(FaultSite::Alloc, 1_000_000));
    rt.install_gc_hooks(Arc::clone(&plan) as Arc<dyn GcScheduleHooks>);
    let ctl = RunCtl::new();
    let r = rt.try_run(&ctl, |ctx| churn(ctx, 100));
    assert_eq!(r, Err(RunError::InjectedFault("alloc")));
    assert!(plan.injected_at(FaultSite::Alloc) >= 1);
    assert_eq!(rt.aborted_runs(), 1);
    assert_conserved(&rt);
    // Disarmed, the same runtime serves the next tenant untouched.
    plan.set_armed(false);
    let ctl = RunCtl::new();
    assert_eq!(
        rt.try_run(&ctl, |ctx| churn(ctx, 50)),
        Ok(churn_expected(50))
    );
    assert_conserved(&rt);
}

/// The epoch-leak reproducer (module docs): one worker, incremental GC,
/// server-mode checks on, low threshold so the churn opens a real window, and
/// a certain fault at the `finalize-claimed` hook. Pre-fix, the panic escaped
/// with the window still installed and `finalizing` set — the teardown's
/// forced finalize then waited forever on a claim nobody would release, the
/// run epoch never ended, and the watermark stayed pinned. Post-fix the
/// finalize unwind guard completes the window hook-free (`finalize_rescues`),
/// teardown ends the epoch, and a younger tenant's chunks recycle.
#[test]
fn finalize_fault_does_not_leak_the_run_epoch() {
    silence_expected_aborts();
    let mut cfg = HhConfig::incremental(1);
    cfg.server_mode = true;
    cfg.gc_threshold_words = 4_096;
    cfg.chunk_words = 256;
    let rt = HhRuntime::new(cfg);
    let plan =
        Arc::new(FaultPlan::uniform(0x1EAC, 0).with_rate(FaultSite::FinalizeClaimed, 1_000_000));
    rt.install_gc_hooks(Arc::clone(&plan) as Arc<dyn GcScheduleHooks>);

    let watermark_before = rt.min_active_epoch();
    let ctl = RunCtl::new();
    let r = rt.try_run(&ctl, |ctx| churn(ctx, 20_000));
    assert_eq!(r, Err(RunError::InjectedFault("finalize-claimed")));
    assert!(
        rt.finalize_rescues() >= 1,
        "the unwinding finalizer must complete its window (rescue), not abandon it"
    );
    assert_eq!(rt.active_runs(), 0, "the dead run's epoch leaked");
    assert!(
        rt.min_active_epoch() > watermark_before,
        "the dead run pinned the reclamation watermark"
    );
    assert_conserved(&rt);

    // The younger tenant: with the watermark unpinned, its retired chunks must
    // actually recycle instead of growing the quarantine forever.
    plan.set_armed(false);
    let ctl = RunCtl::new();
    assert_eq!(
        rt.try_run(&ctl, |ctx| churn(ctx, 20_000)),
        Ok(churn_expected(20_000))
    );
    let stats = rt.stats();
    assert!(
        stats.chunks_recycled > 0,
        "younger tenant's handouts never recycled: watermark still pinned? \
         (created {}, recycled {})",
        stats.chunks_created,
        stats.chunks_recycled
    );
    assert_conserved(&rt);
}

/// A panic thrown by the `EndRunPreDispose` hook (teardown prefix) on a run
/// that *returned normally*: the teardown tail — subtree disposal, epoch end,
/// watermark advance — must still run before the panic re-raises, so the next
/// tenant sees a clean runtime.
#[test]
fn teardown_prefix_hook_panic_still_ends_the_epoch() {
    silence_expected_aborts();
    struct DisposeBomb {
        armed: AtomicBool,
    }
    impl GcScheduleHooks for DisposeBomb {
        fn on_event(&self, event: hh_runtime::hooks::GcScheduleEvent) {
            if let hh_runtime::hooks::GcScheduleEvent::EndRunPreDispose { .. } = event {
                if self.armed.swap(false, Ordering::AcqRel) {
                    panic!("teardown-prefix bomb");
                }
            }
        }
    }
    let rt = HhRuntime::new(HhConfig::with_workers(1));
    rt.install_gc_hooks(Arc::new(DisposeBomb {
        armed: AtomicBool::new(true),
    }));
    let ctl = RunCtl::new();
    let r = rt.try_run(&ctl, |ctx| churn(ctx, 10));
    assert_eq!(r, Err(RunError::Panic("teardown-prefix bomb".to_string())));
    assert_conserved(&rt);
    // Disarmed bomb: the runtime serves on.
    let ctl = RunCtl::new();
    assert_eq!(
        rt.try_run(&ctl, |ctx| churn(ctx, 10)),
        Ok(churn_expected(10))
    );
    assert_conserved(&rt);
}
