//! Epoch-based quiescence-free reclamation (DESIGN.md §5) and the server-mode
//! cross-run pointer check.
//!
//! The deterministic overlap test pins the exact property the watermark buys over
//! the old global horizon: a run that *began first* (smallest epoch) gets its
//! chunks reclaimed the moment it ends — while younger runs are still mid-flight —
//! because the min-active-epoch watermark has moved past its epoch. Under the
//! global horizon nothing would be reclaimed until every run ended.

use hh_api::{ObjKind, ParCtx, Runtime};
use hh_runtime::{HhConfig, HhRuntime};
use std::sync::{Barrier, Condvar, Mutex};

/// A reusable open/wait gate (std condvar; the vendored parking_lot is not a dev
/// dependency of this crate).
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut g = self.open.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Run A (epoch 1) allocates and ends while runs B and C (epochs 2, 3) are still
/// mid-flight: A's retired chunks must leave the quarantine immediately — epoch 1
/// is below the new watermark (min active epoch = 2) — with no global quiescence
/// anywhere in sight.
#[test]
fn first_run_reclaims_while_later_runs_still_flying() {
    let rt = HhRuntime::new(HhConfig::with_workers(4));
    let a_started = Barrier::new(2);
    let bc_started = Barrier::new(3);
    let a_finish = Gate::new();
    let bc_finish = Gate::new();

    std::thread::scope(|scope| {
        // Run A: allocate a few chunks' worth, then hold until told to finish.
        let a = scope.spawn(|| {
            rt.run(|ctx| {
                let mut sum = 0u64;
                for i in 0..4u64 {
                    let arr = ctx.alloc_data_array(3000);
                    ctx.write_nonptr(arr, 0, i);
                    sum += ctx.read_mut(arr, 0);
                }
                a_started.wait();
                a_finish.wait();
                sum
            })
        });
        a_started.wait(); // A is in flight and holds epoch 1.

        // Runs B and C: allocate, then hold — they stay active past A's end.
        let b = scope.spawn(|| {
            rt.run(|ctx| {
                let arr = ctx.alloc_data_array(500);
                ctx.write_nonptr(arr, 0, 7);
                bc_started.wait();
                bc_finish.wait();
                ctx.read_mut(arr, 0)
            })
        });
        let c = scope.spawn(|| {
            rt.run(|ctx| {
                let arr = ctx.alloc_data_array(500);
                ctx.write_nonptr(arr, 0, 8);
                bc_started.wait();
                bc_finish.wait();
                ctx.read_mut(arr, 0)
            })
        });
        bc_started.wait(); // B and C are in flight (epochs 2 and 3).

        assert_eq!(rt.stats().epoch_reclaims, 0, "no run has ended yet");

        // A ends while B and C are still mid-flight.
        a_finish.open();
        assert_eq!(a.join().unwrap(), 6);

        // The watermark (min active epoch = 2) passed A's epoch 1: A's chunks left
        // the quarantine at A's own end_run — no quiescence was needed.
        let stats = rt.stats();
        let store = rt.store_stats();
        assert_eq!(store.active_runs, 2, "B and C must still be registered");
        assert!(
            stats.epoch_reclaims > 0,
            "A's retirement must reclaim via the watermark: {stats:?}"
        );
        assert_eq!(
            store.chunks_quarantined, 0,
            "nothing older than the watermark may linger in quarantine"
        );
        assert_eq!(stats.active_runs_peak, 3, "A, B and C overlapped");

        bc_finish.open();
        assert_eq!(b.join().unwrap(), 7);
        assert_eq!(c.join().unwrap(), 8);
    });

    // Quiescent now: the lifecycle must conserve and everything must have been
    // disposed per run (the quarantine drains as the last epochs retire).
    let s = rt.store_stats();
    assert_eq!(
        s.chunks_created,
        s.chunks_active + s.chunks_quarantined + s.chunks_free + s.chunks_released,
        "chunk conservation: {s:?}"
    );
    assert_eq!(s.active_runs, 0);
    assert_eq!(s.chunks_quarantined, 0, "final watermark drains everything");
}

/// The A5 contrast: under the global horizon the same overlap pattern reclaims
/// nothing at A's end — completed trees wait for a run start that observes zero
/// active runs.
#[test]
fn global_horizon_holds_chunks_across_same_overlap() {
    let rt = HhRuntime::new(HhConfig::global_horizon(4));
    let a_started = Barrier::new(2);
    let bc_started = Barrier::new(3);
    let a_finish = Gate::new();
    let bc_finish = Gate::new();

    std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            rt.run(|ctx| {
                let arr = ctx.alloc_data_array(3000);
                ctx.write_nonptr(arr, 0, 1);
                a_started.wait();
                a_finish.wait();
                ctx.read_mut(arr, 0)
            })
        });
        a_started.wait();
        let b = scope.spawn(|| {
            rt.run(|_ctx| {
                bc_started.wait();
                bc_finish.wait();
                2u64
            })
        });
        let c = scope.spawn(|| {
            rt.run(|_ctx| {
                bc_started.wait();
                bc_finish.wait();
                3u64
            })
        });
        bc_started.wait();
        a_finish.open();
        a.join().unwrap();

        let stats = rt.stats();
        assert_eq!(
            stats.epoch_reclaims, 0,
            "the global horizon never reclaims via the watermark"
        );
        assert_eq!(
            stats.chunks_recycled, 0,
            "A's chunks must NOT have been recycled mid-overlap under A5"
        );

        bc_finish.open();
        b.join().unwrap();
        c.join().unwrap();
    });
}

/// Server mode (debug builds): carrying an `ObjPtr` from one run into a later one
/// trips the chunk-tag assertion on its first access instead of silently reading
/// recycled memory.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "cross-run ObjPtr")]
fn stale_cross_run_pointer_is_caught_in_server_mode() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 1,
        server_mode: true,
        ..Default::default()
    });
    let stale = rt.run(|ctx| {
        let p = ctx.alloc_ref_data(42);
        assert_eq!(ctx.read_mut(p, 0), 42);
        p
    });
    // New run, new epoch; `stale`'s chunk is still tagged with the dead run's
    // epoch (quarantined or already on a free list).
    rt.run(|ctx| ctx.read_mut(stale, 0));
}

/// Server mode must not reject legitimate same-run accesses, across forks and
/// promotions included.
#[test]
fn server_mode_accepts_same_run_pointers() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 2,
        server_mode: true,
        ..Default::default()
    });
    for _ in 0..3 {
        let v = rt.run(|ctx| {
            // One pointer field (0) and one data field (1).
            let shared = ctx.alloc(1, 1, ObjKind::Ref);
            ctx.write_nonptr(shared, 1, 5);
            let (a, b) = ctx.join(
                |c| c.read_mut(shared, 1) + 1,
                |c| {
                    let local = c.alloc_ref_data(10);
                    // Publishing write: promotes `local` up; later accesses resolve
                    // through forwarding and must still pass the run-tag check.
                    c.write_ptr(shared, 0, local);
                    c.read_mut(local, 0)
                },
            );
            let promoted = ctx.read_mut_ptr(shared, 0);
            a + b + ctx.read_mut(promoted, 0)
        });
        assert_eq!(v, 6 + 10 + 10);
    }
}
