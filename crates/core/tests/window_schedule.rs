//! Deterministic window-schedule reproducer for the epoch-inc × server-overlap
//! disentanglement race (DESIGN.md §11.5).
//!
//! The bug class: `finalize_claimed` used to uninstall the window *before*
//! merging the engine and adopting the survivors' to-space chunks into the zone
//! heaps. `end_run`'s forced finalize (`finalize_incremental_now`) waits only
//! for the uninstall, so the ending run could dispose its heap tree, end its
//! epoch, and advance the reclamation watermark while the finalizer was still
//! mid-adoption. The survivors were then adopted *after* disposal emptied the
//! heaps — escaping retirement forever — and their pointer fields referenced
//! post-flip chunks that the watermark had already recycled into a younger
//! tenant's heaps: mass disentanglement violations, visible once in ~15 release
//! serve runs and never under a debugger.
//!
//! This test pins that schedule with the GC schedule hooks (`hh_runtime::hooks`):
//! a gate stalls the finalizer at `FinalizePreMerge` (after the engine
//! handshake, before survivor adoption), the mutator run ends against the
//! stalled finalizer, and a second tenant run recycles the first run's chunks.
//! On the pre-fix ordering the race fires *every* time (the end_run thread sails
//! past the already-uninstalled window); post-fix, `end_run` blocks until the
//! finalizer fully completes (observed via `FinalizeWait`) and the report is
//! clean. The watcher below follows whichever of the two control flows the
//! runtime exhibits, so the single named test is the reproducer on pre-fix
//! builds and the regression test on fixed ones.

use hh_api::{ObjKind, ParCtx, Runtime};
use hh_runtime::hooks::{GcScheduleEvent, GcScheduleHooks};
use hh_runtime::{HhConfig, HhRuntime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chunk capacity: one (ref cell + padding array) pair per post-flip chunk.
const CHUNK_WORDS: usize = 256;
/// Post-flip objects written into the survivor (< GC_FINALIZE_STALENESS safe
/// points, so the mutator never claims the finalize itself).
const POST_FLIP: usize = 8;

#[derive(Default)]
struct Gate {
    /// Arms the one-shot pre-merge stall.
    armed: AtomicBool,
    /// Set when the finalizer reaches the gate.
    reached: AtomicBool,
    /// Opened by the test to let the finalizer proceed.
    release: AtomicBool,
    /// Set when a forced finalize observed the window still installed and
    /// started waiting for the claimer — the post-fix control flow.
    waiter_seen: AtomicBool,
    /// Set when finalization fully completed.
    finalize_done: AtomicBool,
    /// Set by the test to force a window open at the next safe point.
    force: AtomicBool,
}

impl GcScheduleHooks for Gate {
    fn on_event(&self, event: GcScheduleEvent) {
        match event {
            GcScheduleEvent::FinalizePreMerge { .. }
                if self.armed.swap(false, Ordering::AcqRel) =>
            {
                self.reached.store(true, Ordering::Release);
                while !self.release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
            GcScheduleEvent::FinalizeWait { .. } => {
                self.waiter_seen.store(true, Ordering::Release);
            }
            GcScheduleEvent::FinalizeDone { .. } => {
                self.finalize_done.store(true, Ordering::Release);
            }
            _ => {}
        }
    }

    fn force_collect(&self) -> bool {
        self.force.load(Ordering::Acquire)
    }
}

fn spin_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn epoch_inc_finalize_vs_end_run_pinned_schedule() {
    let gate = Arc::new(Gate::default());
    gate.armed.store(true, Ordering::Release);
    let rt = HhRuntime::new(HhConfig {
        n_workers: 2,
        chunk_words: CHUNK_WORDS,
        // No spontaneous windows: the hook's force_collect opens exactly one.
        gc_threshold_words: usize::MAX / 2,
        check_invariants: true,
        server_mode: true,
        incremental_gc: true,
        ..Default::default()
    });
    rt.install_gc_hooks(Arc::clone(&gate) as Arc<dyn GcScheduleHooks>);

    std::thread::scope(|scope| {
        // Tenant A: opens a window with a pinned survivor, then writes
        // post-flip pointers into the survivor's to-space copy mid-window.
        let a_done = Arc::new(AtomicBool::new(false));
        let a_handle = {
            let rt = &rt;
            let gate = Arc::clone(&gate);
            let a_done = Arc::clone(&a_done);
            scope.spawn(move || {
                rt.run(|ctx| {
                    let survivor = ctx.alloc(POST_FLIP, 0, ObjKind::Tuple);
                    ctx.pin(survivor);
                    // Open the window: the survivor is the root set, its copy is
                    // seeded into to-space, and the heap's chunk list is flipped
                    // out as from-space.
                    gate.force.store(true, Ordering::Release);
                    ctx.maybe_collect();
                    gate.force.store(false, Ordering::Release);
                    // Post-flip allocations land in fresh (zone-outside) chunks
                    // of this run's heap — one ref per chunk, padded so each
                    // pair fills its chunk. The writes resolve through the
                    // survivor's forwarding pointer onto the to-space copy.
                    for i in 0..POST_FLIP {
                        let post = ctx.alloc(0, 1, ObjKind::Ref);
                        ctx.write_nonptr(post, 0, i as u64);
                        let _pad = ctx.alloc_data_array(CHUNK_WORDS - 16);
                        ctx.write_ptr(survivor, i, post);
                    }
                    // Let the idle worker drain the wavefront, claim the
                    // finalize, and stall at the pre-merge gate before this run
                    // ends (an idle worker claims eagerly once the wavefront is
                    // empty; this thread takes no more safe points).
                    spin_until("finalizer to reach the pre-merge gate", || {
                        gate.reached.load(Ordering::Acquire)
                    });
                });
                a_done.store(true, Ordering::Release);
            })
        };

        spin_until("finalizer to reach the pre-merge gate", || {
            gate.reached.load(Ordering::Acquire)
        });
        // Two control flows from here:
        //   * pre-fix: the window was uninstalled before the gate, so tenant
        //     A's end_run sails through, disposes its tree and advances the
        //     watermark while the finalizer is still stalled → `a_done`.
        //   * post-fix: the window is uninstalled last, so A's end_run observes
        //     it installed and waits for the claimer → `waiter_seen`.
        spin_until("tenant A to finish or block in end_run", || {
            a_done.load(Ordering::Acquire) || gate.waiter_seen.load(Ordering::Acquire)
        });

        if a_done.load(Ordering::Acquire) {
            // Pre-fix flow: reproduce the violation deterministically. Tenant
            // A's chunks are already reclaimed; tenant B recycles them before
            // the stalled finalizer adopts A's survivors.
            a_handle.join().unwrap();
            run_tenant_b(&rt);
            gate.release.store(true, Ordering::Release);
            spin_until("stalled finalizer to complete", || {
                gate.finalize_done.load(Ordering::Acquire)
            });
            assert!(
                rt.store_stats().chunks_recycled > 0,
                "tenant B must recycle tenant A's chunks for the schedule to bite"
            );
        } else {
            // Post-fix flow: end_run is correctly blocked behind the
            // finalizer. Run tenant B concurrently (it cannot recycle A's
            // chunks — nothing of A's is reclaimed yet), then open the gate.
            run_tenant_b(&rt);
            gate.release.store(true, Ordering::Release);
            a_handle.join().unwrap();
            spin_until("stalled finalizer to complete", || {
                gate.finalize_done.load(Ordering::Acquire)
            });
        }

        let report = rt.check_disentangled_report();
        assert!(
            report.is_clean(),
            "epoch-inc finalize × end_run overlap left entanglement \
             (survivors adopted after run disposal; see DESIGN.md §11.5):\n{report}"
        );
    });
}

/// Tenant B: a second overlapping server-mode run that allocates enough
/// chunk-filling arrays to drain the store's free lists (shard caches included),
/// so any chunk tenant A's disposal reclaimed is recycled under a new owner.
fn run_tenant_b(rt: &HhRuntime) {
    rt.run(|ctx| {
        for i in 0..64 {
            let a = ctx.alloc_data_array(CHUNK_WORDS - 16);
            ctx.write_nonptr(a, 0, i as u64);
        }
    });
}
