//! Memory-lifecycle integration tests for the hierarchical-heap runtime: chunk
//! recycling across runs, bounded steady-state footprint, subtree collection, and
//! lifecycle conservation.

use hh_api::{ParCtx, Runtime};
use hh_objmodel::ObjPtr;
use hh_runtime::{HhConfig, HhRuntime};
use std::sync::atomic::{AtomicBool, Ordering};

fn churn_runtime(workers: usize) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: workers,
        chunk_words: 256,
        gc_threshold_words: 8 * 1024,
        max_free_words: 1 << 30,
        ..Default::default()
    })
}

/// One run's worth of allocation churn: builds and drops arrays, keeps one pinned
/// survivor, and polls the collector.
fn churn(ctx: &impl ParCtx, rounds: usize) -> u64 {
    let keep = ctx.alloc_data_array(64);
    for i in 0..64 {
        ctx.write_nonptr(keep, i, i as u64);
    }
    ctx.pin(keep);
    for _ in 0..rounds {
        let garbage = ctx.alloc_data_array(200);
        ctx.write_nonptr(garbage, 0, 1);
        ctx.maybe_collect();
    }
    let mut sum = 0;
    for i in 0..64 {
        sum += ctx.read_mut(keep, i);
    }
    ctx.unpin(keep);
    sum
}

/// The acceptance bound of memory v2: under steady-state churn (repeated runs on one
/// runtime), the peak footprint stops growing after warmup — retired chunks flow back
/// through the free lists instead of accumulating forever. Before recycling, every
/// run's chunks were immortal and the peak of N runs was ~N times one run's.
#[test]
fn steady_state_footprint_is_bounded_across_runs() {
    let rt = churn_runtime(1);
    let expected: u64 = (0..64).sum();

    // Warmup: two runs (the second run's start is the first horizon crossing).
    for _ in 0..2 {
        assert_eq!(rt.run(|ctx| churn(ctx, 120)), expected);
    }
    let warm = rt.stats();
    let peak_after_warmup = warm.peak_live_words;

    for _ in 0..10 {
        assert_eq!(rt.run(|ctx| churn(ctx, 120)), expected);
    }
    let s = rt.stats();
    assert!(
        s.chunks_recycled > 0,
        "steady-state churn must be served by recycling: {s:?}"
    );
    // Peak resident words stay flat: each run reuses the previous run's chunks.
    assert!(
        s.peak_live_words <= peak_after_warmup * 2,
        "footprint grew across iterations: warmup peak {} words, final peak {} words",
        peak_after_warmup,
        s.peak_live_words
    );
    // The acceptance bound: after warmup, one run's peak stays within 2x of what the
    // run actually keeps live plus the recyclable pool.
    assert!(
        s.peak_live_words <= 2 * (s.live_words + s.free_words).max(1),
        "peak {} not within 2x of live {} + free {}",
        s.peak_live_words,
        s.live_words,
        s.free_words
    );
}

/// Lifecycle conservation at the runtime level: after any number of runs, every chunk
/// the store ever created is in exactly one state.
#[test]
fn chunk_lifecycle_is_conserved_across_runs() {
    let rt = churn_runtime(2);
    for round in 0..5 {
        rt.run(|ctx| churn(ctx, 60));
        let s = rt.store_stats();
        assert_eq!(
            s.chunks_created,
            s.chunks_active + s.chunks_quarantined + s.chunks_free + s.chunks_released,
            "conservation violated after round {round}: {s:?}"
        );
    }
}

/// `max_free_words` bounds the recyclable pool: with a tiny cap, reclaimed chunks are
/// released instead of parked for reuse.
#[test]
fn free_pool_cap_releases_excess_buffers() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 1,
        chunk_words: 256,
        gc_threshold_words: 8 * 1024,
        max_free_words: 512, // at most two 256-word chunks stay reusable
        ..Default::default()
    });
    for _ in 0..4 {
        rt.run(|ctx| churn(ctx, 80));
    }
    let s = rt.store_stats();
    assert!(
        s.chunks_released > 0,
        "the free-pool cap must release excess buffers: {s:?}"
    );
    assert!(
        s.free_words <= 512,
        "free pool exceeded its cap: {} words",
        s.free_words
    );
}

/// Subtree collection: a borrower task collects its heap together with a *completed
/// descendant* heap (created by a steal whose join has not resolved yet), in one
/// pass, without disturbing pinned data.
///
/// Shape: fork(left, right). The right branch is stolen (a second worker picks it up
/// while the left spins), creates a child heap, finishes, and releases the steal
/// gate. The left branch — still running, borrowing the parent heap — then forces a
/// collection: the child heap is live (its join splice only happens after the left
/// branch returns), so the zone spans two heaps.
#[test]
fn borrower_collects_subtree_spanning_completed_descendant() {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 2,
        chunk_words: 256,
        gc_threshold_words: 1 << 20,
        ..Default::default()
    });
    let right_done = &*Box::leak(Box::new(AtomicBool::new(false)));
    let observed = rt.run(move |ctx| {
        let keep = ctx.alloc_data_array(16);
        for i in 0..16 {
            ctx.write_nonptr(keep, i, (i as u64) * 3);
        }
        ctx.pin(keep);
        let (collected, _) = ctx.join(
            move |c| {
                // Wait until the stolen right branch has finished (and with it
                // released the steal gate), then force a borrower collection. On a
                // single-CPU machine the yield lets the second worker run.
                let mut spins = 0u64;
                while !right_done.load(Ordering::Acquire) {
                    std::thread::yield_now();
                    spins += 1;
                    if spins > 50_000_000 {
                        return false; // bail out rather than hang the suite
                    }
                }
                // The right branch's heap is merged only after *this* branch returns,
                // so if the right branch was stolen its heap is still a live
                // descendant here. Retry: the gate closes again if another steal is
                // in flight.
                let mut tries = 0;
                while !c.force_collect() {
                    std::thread::yield_now();
                    tries += 1;
                    if tries > 1_000_000 {
                        return false;
                    }
                }
                true
            },
            move |c| {
                // Allocate real data in the (possibly stolen) branch so a stolen run
                // creates a heap with content, then signal completion.
                let local = c.alloc_data_array(128);
                c.write_nonptr(local, 0, 42);
                right_done.store(true, Ordering::Release);
            },
        );
        assert!(collected, "borrower collection never ran");
        // Pinned data survives the (possibly multi-heap) collection.
        let mut sum = 0;
        for i in 0..16 {
            sum += ctx.read_mut(keep, i);
        }
        ctx.unpin(keep);
        sum
    });
    assert_eq!(observed, (0..16u64).map(|i| i * 3).sum());
    let s = rt.stats();
    assert!(s.gc_count >= 1);
    // Whether the fork was actually stolen depends on scheduling; only a stolen fork
    // leaves a live descendant for the zone to span. When it was, the subtree
    // counter must have seen it.
    if s.sched_steals > 0 {
        assert!(
            s.subtree_collections >= 1,
            "a stolen fork existed but no subtree collection was counted: {s:?}"
        );
    }
    assert_eq!(rt.check_disentangled(), 0);
}

/// A panicking run must not wedge the run-epoch bookkeeping: disposal and recycling
/// keep working on subsequent runs.
#[test]
fn panicking_run_does_not_disable_recycling() {
    let rt = churn_runtime(1);
    rt.run(|ctx| churn(ctx, 60));
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run(|ctx| {
            let _ = ctx.alloc_data_array(100);
            panic!("deliberate test panic");
        })
    }));
    assert!(boom.is_err(), "the panic must propagate out of run");
    // Later runs still cross the reuse horizon and recycle earlier runs' chunks.
    for _ in 0..2 {
        rt.run(|ctx| churn(ctx, 60));
    }
    let s = rt.stats();
    assert!(
        s.chunks_recycled > 0,
        "recycling must survive a panicked run: {s:?}"
    );
    let store = rt.store_stats();
    assert_eq!(
        store.chunks_created,
        store.chunks_active + store.chunks_quarantined + store.chunks_free + store.chunks_released,
        "conservation must survive a panicked run: {store:?}"
    );
}

/// `ObjPtr`s do not outlive their run: carrying one into a later run observes the
/// recycled chunk's reset state, not the old object. (This documents the reuse
/// horizon rather than desirable behaviour — the old pointer is *stale*, and debug
/// builds catch a dereference via the zeroed header.)
#[test]
fn pointers_do_not_survive_across_runs() {
    let rt = churn_runtime(1);
    let stale: ObjPtr = rt.run(|ctx| {
        let p = ctx.alloc_data_array(8);
        ctx.write_nonptr(p, 0, 77);
        p
    });
    // Second run: the first run's tree is disposed and recycled.
    rt.run(|ctx| {
        let _ = ctx.alloc_data_array(8);
    });
    let store_stats = rt.store_stats();
    assert!(
        store_stats.chunks_retired > 0,
        "first run's chunks must have been retired: {store_stats:?}"
    );
    let _ = stale; // must not be dereferenced — that is the point
}
