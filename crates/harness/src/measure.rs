//! Running one benchmark on one runtime and collecting its statistics.

use hh_api::{RunStats, Runtime};
use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
use hh_runtime::{HhConfig, HhRuntime};
use hh_workloads::suite::{run_timed, BenchId, Params};
use std::time::{Duration, Instant};

/// The four runtimes of the evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Sequential baseline (`mlton`).
    Seq,
    /// Stop-the-world parallel baseline (`mlton-spoonhower`).
    Stw,
    /// DLG / Manticore-style baseline (`manticore`).
    Dlg,
    /// The hierarchical-heap runtime (`mlton-parmem`, this paper).
    Parmem,
}

impl RuntimeKind {
    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Seq => "mlton (seq)",
            RuntimeKind::Stw => "mlton-spoonhower (stw)",
            RuntimeKind::Dlg => "manticore-style (dlg)",
            RuntimeKind::Parmem => "mlton-parmem (ours)",
        }
    }

    /// Short name used in compact tables.
    pub fn short(self) -> &'static str {
        match self {
            RuntimeKind::Seq => "seq",
            RuntimeKind::Stw => "stw",
            RuntimeKind::Dlg => "dlg",
            RuntimeKind::Parmem => "parmem",
        }
    }
}

/// One benchmark run on one runtime configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Runtime short name (`seq`, `stw`, `dlg`, `parmem`).
    pub runtime: String,
    /// Benchmark name.
    pub bench: String,
    /// Number of workers used.
    pub workers: usize,
    /// Wall-clock time of the timed kernel.
    pub elapsed: Duration,
    /// Result checksum (for cross-runtime agreement checks).
    pub checksum: u64,
    /// Runtime statistics accumulated over the whole run (including input preparation).
    pub stats: RunStats,
}

impl Measurement {
    /// GC time as a fraction of the kernel's elapsed time, capped at 1.0.
    pub fn gc_fraction(&self) -> f64 {
        self.stats.gc_fraction(self.elapsed).min(1.0)
    }
}

/// Runs `bench` once on an *existing* runtime and collects its statistics.
///
/// Unlike [`measure`], which constructs a fresh runtime, this lets callers reuse one
/// runtime across several runs — the pattern the memory-lifecycle experiments need,
/// since chunks retired by one run are recycled by the next (`repro mem`, the
/// `chunk_churn` bench).
pub fn measure_on<R: Runtime>(
    rt: &R,
    bench: BenchId,
    params: Params,
    workers: usize,
) -> Measurement {
    let outcome = rt.run(|ctx| run_timed(ctx, bench, params));
    Measurement {
        runtime: rt.name().to_string(),
        bench: bench.name().to_string(),
        workers,
        elapsed: outcome.elapsed,
        checksum: outcome.checksum,
        stats: rt.stats(),
    }
}

/// Runs `bench` on a freshly constructed runtime of the given kind with `workers`
/// workers and problem sizes from `params`.
pub fn measure(kind: RuntimeKind, workers: usize, bench: BenchId, params: Params) -> Measurement {
    match kind {
        RuntimeKind::Seq => {
            let rt = SeqRuntime::new();
            measure_on(&rt, bench, params, 1)
        }
        RuntimeKind::Stw => {
            let rt = StwRuntime::with_workers(workers);
            measure_on(&rt, bench, params, workers)
        }
        RuntimeKind::Dlg => {
            let rt = DlgRuntime::with_workers(workers);
            measure_on(&rt, bench, params, workers)
        }
        RuntimeKind::Parmem => {
            let rt = HhRuntime::new(HhConfig::with_workers(workers));
            measure_on(&rt, bench, params, workers)
        }
    }
}

/// Runs the hierarchical runtime with explicit configuration (used by the ablations).
pub fn measure_parmem_with_config(config: HhConfig, bench: BenchId, params: Params) -> Measurement {
    let workers = config.n_workers;
    let rt = HhRuntime::new(config);
    measure_on(&rt, bench, params, workers)
}

// ---------------------------------------------------------------------------
// Promotion v2 micro-measurement (shared by `repro promote` and the
// `promote_overhead` bench, so both always measure the same thing).
// ---------------------------------------------------------------------------

/// A runtime configured for promotion micro-measurement: one worker, eager
/// per-fork heaps (a publish promotes even unstolen), invariant checker off, and
/// the promotion path selected by `batched` (v2 when true, the preserved v1
/// per-object path — ablation A3 — when false).
pub fn promotion_runtime(batched: bool) -> HhRuntime {
    HhRuntime::new(HhConfig {
        n_workers: 1,
        lazy_child_heaps: false,
        batched_promotion: batched,
        check_invariants: false,
        ..HhConfig::default()
    })
}

/// Times `iters` promotions of a freshly built `chain_len`-object cons closure,
/// timing **only** the promoting `write_ptr` (the build is untimed). Each
/// repetition is its own `run`, so the closure is never already promoted and the
/// heaps are recycled between repetitions.
pub fn time_promotions(rt: &HhRuntime, chain_len: usize, iters: u64) -> Duration {
    use hh_api::{ObjPtr, ParCtx};
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        total += rt.run(|ctx| {
            let holder = ctx.alloc_ref_ptr(ObjPtr::NULL);
            ctx.join(
                |c| {
                    let mut head = ObjPtr::NULL;
                    for k in 0..chain_len {
                        head = c.alloc_cons(ObjPtr::NULL, head, k as u64);
                    }
                    let start = Instant::now();
                    c.write_ptr(holder, 0, head);
                    start.elapsed()
                },
                |_| Duration::ZERO,
            )
            .0
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_on_all_runtimes_and_agrees() {
        let params = Params::tiny();
        let seq = measure(RuntimeKind::Seq, 1, BenchId::Reduce, params);
        for kind in [RuntimeKind::Stw, RuntimeKind::Dlg, RuntimeKind::Parmem] {
            let m = measure(kind, 2, BenchId::Reduce, params);
            assert_eq!(m.checksum, seq.checksum, "{:?} disagrees with seq", kind);
            assert_eq!(m.workers, 2);
            assert!(!m.bench.is_empty());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            RuntimeKind::Seq,
            RuntimeKind::Stw,
            RuntimeKind::Dlg,
            RuntimeKind::Parmem,
        ];
        let mut shorts: Vec<&str> = kinds.iter().map(|k| k.short()).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), 4);
    }
}
