//! Minimal plain-text table formatting for harness output.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio with two decimals, or "-" if the denominator is zero.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}", num / den)
    }
}

/// Formats a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count in MB with one decimal.
pub fn megabytes(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_aligns_columns_and_counts_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        assert_eq!(t.n_rows(), 2);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // Every data line has the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(ratio(3.0, 2.0), "1.50");
        assert_eq!(ratio(3.0, 0.0), "-");
        assert_eq!(percent(0.123), "12.3%");
        assert_eq!(megabytes(2_500_000), "2.5");
    }
}
