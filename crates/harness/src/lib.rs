//! # hh-harness — regenerating the paper's evaluation
//!
//! This crate drives the benchmark suite across the four runtimes and formats the
//! results in the shape of the paper's tables and figures:
//!
//! | experiment | paper artifact | function |
//! |------------|----------------|----------|
//! | E1 | Figure 8 — cost of memory operations          | [`experiments::fig8`]  |
//! | E2 | Figure 10 — pure benchmarks                   | [`experiments::fig10`] |
//! | E3 | Figure 11 — imperative benchmarks             | [`experiments::fig11`] |
//! | E4 | Figure 12 — speedup vs. processor count       | [`experiments::fig12`] |
//! | E5 | Figure 13 — memory consumption and inflation  | [`experiments::fig13`] |
//! | E6 | §4.4 — promotion volume (Manticore vs. ours)  | [`experiments::promotion_volume`] |
//! | E7 | Figure 9 — representative operations          | [`experiments::fig9`]  |
//!
//! The `repro` binary exposes each experiment on the command line:
//!
//! ```text
//! cargo run --release -p hh-harness --bin repro -- fig10 --scale 0.01 --procs 8
//! cargo run --release -p hh-harness --bin repro -- all   --scale 0.002
//! ```
//!
//! Absolute numbers are not expected to match the paper (different machine, different
//! scale, a simulated object model); the *shapes* — which runtime wins, how overheads
//! compare, where `usp-tree` collapses, who promotes — are what EXPERIMENTS.md records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod table;

pub use measure::{measure, Measurement, RuntimeKind};
pub use table::Table;
