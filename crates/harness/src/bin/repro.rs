//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro <experiment> [--scale S] [--procs P] [--grain G] [--json PATH]
//!
//! experiments:
//!   fig8        cost of memory operations
//!   fig9        representative operations per benchmark
//!   fig10       pure benchmarks (times, overheads, speedups, GC%)
//!   fig11       imperative benchmarks
//!   fig12       speedup vs. worker count
//!   fig13       memory consumption and inflation
//!   promotion   promotion volume on `map` (§4.4)
//!   promote     promotion v2: batched-vs-v1 micro table + workload counters + rate sweep
//!   ablation    fast-path ablation (DESIGN.md A1)
//!   sched       scheduler counters (steals, parks, wakes, heaps elided)
//!   mem         memory lifecycle (peak/live/free words, recycle rates)
//!   gc          GC v3: pause CDF, copied words, team/steal counters (DESIGN.md §9, §11)
//!   adversarial adversarial workloads: wavefront ns/cell, entangle promotion cost (§12)
//!   serve       hh-server: overlapping runs, epoch vs global-horizon reclamation (A5)
//!   all         everything above
//! ```
//!
//! `--json PATH` (the `gc` and `adversarial` experiments) appends one JSON
//! line per benchmark × runtime with the headline metrics — the
//! machine-readable artifact (`BENCH_pr8.json`) the CI bench gate diffs across
//! PRs.

use hh_harness::experiments::{
    ablation_fastpath, adversarial_report, fig10, fig11, fig12, fig13, fig8, fig9, gc_pause_report,
    mem_lifecycle, promote_micro, promote_rate_sweep, promote_workloads, promotion_volume,
    sched_counters, serve_overlap, ExpConfig,
};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig8|fig9|fig10|fig11|fig12|fig13|promotion|promote|ablation|sched|mem|gc|adversarial|serve|all> \
         [--scale S] [--procs P] [--grain G] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--procs" => {
                cfg.procs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--grain" => {
                cfg.grain = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }

    println!(
        "# hierheap repro — scale {:.4} of the paper's sizes, {} workers, grain {}\n",
        cfg.scale, cfg.procs, cfg.grain
    );

    let run = |name: &str| match name {
        "fig8" => println!("{}", fig8(200_000).render()),
        "fig9" => println!("{}", fig9(cfg).render()),
        "fig10" => println!("{}", fig10(cfg).render()),
        "fig11" => println!("{}", fig11(cfg).render()),
        "fig12" => println!("{}", fig12(cfg).render()),
        "fig13" => println!("{}", fig13(cfg).render()),
        "promotion" => println!("{}", promotion_volume(cfg).render()),
        "promote" => {
            println!("{}", promote_micro(cfg).render());
            println!("{}", promote_workloads(cfg).render());
            println!("{}", promote_rate_sweep(cfg).render());
        }
        "ablation" => println!("{}", ablation_fastpath(cfg).render()),
        "sched" => println!("{}", sched_counters(cfg).render()),
        "mem" => println!("{}", mem_lifecycle(cfg).render()),
        "gc" => {
            let (table, json) = gc_pause_report(cfg);
            println!("{}", table.render());
            append_json(&json_path, &json);
        }
        "adversarial" => {
            let (table, json) = adversarial_report(cfg);
            println!("{}", table.render());
            append_json(&json_path, &json);
        }
        "serve" => println!("{}", serve_overlap(cfg, 1000).render()),
        _ => usage(),
    };

    if which == "all" {
        for name in [
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "promotion",
            "promote",
            "ablation",
            "sched",
            "mem",
            "gc",
            "adversarial",
            "serve",
        ] {
            run(name);
        }
    } else {
        run(&which);
    }
}

/// Appends JSON lines to `--json PATH` when one was given.
fn append_json(json_path: &Option<String>, json: &[String]) {
    if let Some(path) = json_path {
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
        for line in json {
            writeln!(out, "{line}").expect("writing JSON report");
        }
        println!("wrote {} JSON record(s) to {path}\n", json.len());
    }
}
