//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro <experiment> [--scale S] [--procs P] [--grain G] [--json PATH]
//!
//! experiments:
//!   fig8        cost of memory operations
//!   fig9        representative operations per benchmark
//!   fig10       pure benchmarks (times, overheads, speedups, GC%)
//!   fig11       imperative benchmarks
//!   fig12       speedup vs. worker count
//!   fig13       memory consumption and inflation
//!   promotion   promotion volume on `map` (§4.4)
//!   promote     promotion v2: batched-vs-v1 micro table + workload counters + rate sweep
//!   ablation    fast-path ablation (DESIGN.md A1)
//!   sched       scheduler counters (steals, parks, wakes, heaps elided)
//!   mem         memory lifecycle (peak/live/free words, recycle rates)
//!   gc          GC v3: pause CDF, copied words, team/steal counters (DESIGN.md §9, §11)
//!   adversarial adversarial workloads: wavefront ns/cell, entangle promotion cost (§12)
//!   serve       hh-server: overlapping runs, epoch vs global-horizon reclamation (A5)
//!   chaos       seeded fault-injection sweep (DESIGN.md §13); --seeds N picks the
//!               sweep width; exits nonzero when any seed violates an invariant
//!   all         everything above except chaos
//! ```
//!
//! `--json PATH` (the `gc` and `adversarial` experiments) appends one JSON
//! line per benchmark × runtime with the headline metrics — the
//! machine-readable artifact (`BENCH_pr8.json`) the CI bench gate diffs across
//! PRs. `chaos` appends one line per *dirty* seed (also to `$HH_VIOLATION_JSON`
//! when set) so CI archives the replay seed.

use hh_harness::experiments::{
    ablation_fastpath, adversarial_report, fig10, fig11, fig12, fig13, fig8, fig9, gc_pause_report,
    mem_lifecycle, promote_micro, promote_rate_sweep, promote_workloads, promotion_volume,
    sched_counters, serve_overlap, ExpConfig,
};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig8|fig9|fig10|fig11|fig12|fig13|promotion|promote|ablation|sched|mem|gc|adversarial|serve|chaos|all> \
         [--scale S] [--procs P] [--grain G] [--seeds N] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut json_path: Option<String> = None;
    let mut chaos_seeds: u64 = 64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--procs" => {
                cfg.procs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--grain" => {
                cfg.grain = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seeds" => {
                chaos_seeds = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }

    println!(
        "# hierheap repro — scale {:.4} of the paper's sizes, {} workers, grain {}\n",
        cfg.scale, cfg.procs, cfg.grain
    );

    let run = |name: &str| match name {
        "fig8" => println!("{}", fig8(200_000).render()),
        "fig9" => println!("{}", fig9(cfg).render()),
        "fig10" => println!("{}", fig10(cfg).render()),
        "fig11" => println!("{}", fig11(cfg).render()),
        "fig12" => println!("{}", fig12(cfg).render()),
        "fig13" => println!("{}", fig13(cfg).render()),
        "promotion" => println!("{}", promotion_volume(cfg).render()),
        "promote" => {
            println!("{}", promote_micro(cfg).render());
            println!("{}", promote_workloads(cfg).render());
            println!("{}", promote_rate_sweep(cfg).render());
        }
        "ablation" => println!("{}", ablation_fastpath(cfg).render()),
        "sched" => println!("{}", sched_counters(cfg).render()),
        "mem" => println!("{}", mem_lifecycle(cfg).render()),
        "gc" => {
            let (table, json) = gc_pause_report(cfg);
            println!("{}", table.render());
            append_json(&json_path, &json);
        }
        "adversarial" => {
            let (table, json) = adversarial_report(cfg);
            println!("{}", table.render());
            append_json(&json_path, &json);
        }
        "serve" => println!("{}", serve_overlap(cfg, 1000).render()),
        "chaos" => run_chaos(chaos_seeds, cfg.procs, &json_path),
        _ => usage(),
    };

    if which == "all" {
        for name in [
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "promotion",
            "promote",
            "ablation",
            "sched",
            "mem",
            "gc",
            "adversarial",
            "serve",
        ] {
            run(name);
        }
    } else {
        run(&which);
    }
}

/// The chaos lane: sweep `seeds` seeded fault-injection serve experiments and
/// check each one's post-mortem invariants (at least one aborted attempt,
/// quiescent store, no leaked run epoch, checksum-correct survivors). Dirty
/// seeds get one JSON forensics line each — appended to `--json` and to
/// `$HH_VIOLATION_JSON` when set — and a nonzero exit.
fn run_chaos(seeds: u64, workers: usize, json_path: &Option<String>) {
    let ccfg = hh_server::ChaosConfig {
        seeds,
        workers,
        ..hh_server::ChaosConfig::default()
    };
    println!(
        "chaos sweep: {} seeds from {:#x}, {} runs x {} executors per seed, {} workers",
        ccfg.seeds, ccfg.base_seed, ccfg.runs, ccfg.executors, ccfg.workers
    );
    let mut dirty: Vec<String> = Vec::new();
    for (i, out) in hh_server::chaos_sweep(&ccfg).into_iter().enumerate() {
        let verdict = if out.clean() { "clean" } else { "VIOLATION" };
        println!(
            "seed {:#010x}  rate {:>7} ppm  injected {:>4}  aborted {:>3}  retried {:>3}  \
             rescues {:>2}  completed {:>3}/{:<3}  {verdict}",
            out.seed,
            out.rate_ppm,
            out.injected,
            out.report.aborted,
            out.report.retried,
            out.finalize_rescues,
            out.report.runs,
            out.report.requested,
        );
        if !out.clean() {
            let reason = out
                .violation
                .as_ref()
                .map(|v| v.reason.clone())
                .unwrap_or_else(|| {
                    if !out.checksum_ok {
                        "survivor checksum mismatch".to_string()
                    } else {
                        format!("{} leaked run epoch(s)", out.active_runs)
                    }
                });
            dirty.push(format!(
                "{{\"kind\":\"chaos-violation\",\"sweep_index\":{i},\"seed\":{},\"rate_ppm\":{},\
                 \"reason\":{:?},\"active_runs\":{},\"checksum_ok\":{},\"report\":{}}}",
                out.seed,
                out.rate_ppm,
                reason,
                out.active_runs,
                out.checksum_ok,
                out.report.to_json(),
            ));
        }
    }
    if !dirty.is_empty() {
        let mut sinks: Vec<String> = json_path.iter().cloned().collect();
        if let Ok(p) = std::env::var("HH_VIOLATION_JSON") {
            if !p.is_empty() && !sinks.contains(&p) {
                sinks.push(p);
            }
        }
        for line in &dirty {
            eprintln!("{line}");
        }
        for path in sinks {
            append_json(&Some(path), &dirty);
        }
        eprintln!(
            "chaos: {} of {} seeds violated invariants (HH_CHAOS_SEED=<sweep_index> replays one)",
            dirty.len(),
            seeds
        );
        std::process::exit(1);
    }
    println!("chaos: all {seeds} seeds clean");
}

/// Appends JSON lines to `--json PATH` when one was given.
fn append_json(json_path: &Option<String>, json: &[String]) {
    if let Some(path) = json_path {
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
        for line in json {
            writeln!(out, "{line}").expect("writing JSON report");
        }
        println!("wrote {} JSON record(s) to {path}\n", json.len());
    }
}
