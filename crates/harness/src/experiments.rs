//! The experiments: one function per table / figure of the paper's evaluation.

use crate::measure::{measure, measure_on, measure_parmem_with_config, Measurement, RuntimeKind};
use crate::table::{megabytes, percent, ratio, secs, Table};
use hh_api::{ObjKind, ParCtx, Runtime};
use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
use hh_objmodel::ObjPtr;
use hh_runtime::{HhConfig, HhRuntime};
use hh_workloads::suite::{BenchId, Params};
use std::time::Instant;

/// Configuration of an experiment run.
#[derive(Copy, Clone, Debug)]
pub struct ExpConfig {
    /// Problem-size scale relative to the paper (1.0 = paper sizes).
    pub scale: f64,
    /// Maximum number of workers (the paper's 72-core column becomes this).
    pub procs: usize,
    /// Sequential grain.
    pub grain: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.005,
            procs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            grain: 2048,
        }
    }
}

impl ExpConfig {
    fn params(&self) -> Params {
        Params {
            scale: self.scale,
            grain: self.grain,
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 8: cost of memory operations.
// ---------------------------------------------------------------------------

/// Figure 8: per-operation cost (nanoseconds) of each memory operation on local,
/// distant, and promoted objects, measured on the hierarchical runtime.
pub fn fig8(iterations: u64) -> Table {
    let mut table = Table::new(
        "Figure 8 — cost of memory operations (ns/op, hierarchical runtime)",
        &[
            "object",
            "read-imm",
            "read-mut",
            "write-nonptr",
            "write-ptr",
        ],
    );
    let rt = HhRuntime::new(HhConfig::with_workers(2));
    let rows = rt.run(|ctx| {
        let iters = iterations.max(1000);

        // Helper: measure ns/op of `op` run `iters` times.
        let time_op = |op: &mut dyn FnMut()| -> f64 {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        };

        let mut rows: Vec<Vec<String>> = Vec::new();

        // -- Local objects: allocated by this task, no copies. --------------------
        {
            let obj = ctx.alloc(1, 3, ObjKind::Ref);
            let target = ctx.alloc_ref_data(1);
            let mut acc = 0u64;
            let r_imm = time_op(&mut || acc = acc.wrapping_add(ctx.read_imm(obj, 2)));
            let r_mut = time_op(&mut || acc = acc.wrapping_add(ctx.read_mut(obj, 2)));
            let w_np = time_op(&mut || ctx.write_nonptr(obj, 2, acc));
            let w_p = time_op(&mut || ctx.write_ptr(obj, 0, target));
            rows.push(vec![
                "local".into(),
                format!("{r_imm:.1}"),
                format!("{r_mut:.1}"),
                format!("{w_np:.1}"),
                format!("{w_p:.1}"),
            ]);
            std::hint::black_box(acc);
        }

        // -- Distant objects: allocated by an ancestor, still no copies. ----------
        {
            let obj = ctx.alloc(1, 3, ObjKind::Ref);
            let ancestor_target = ctx.alloc_ref_data(1);
            let row = ctx
                .join(
                    |c| {
                        let mut acc = 0u64;
                        let r_imm = time_op_in(c, iters, &mut |cc| {
                            acc = acc.wrapping_add(cc.read_imm(obj, 2))
                        });
                        let r_mut = time_op_in(c, iters, &mut |cc| {
                            acc = acc.wrapping_add(cc.read_mut(obj, 2))
                        });
                        let w_np = time_op_in(c, iters, &mut |cc| cc.write_nonptr(obj, 2, acc));
                        // Non-promoting pointer write: the pointee is at the same depth
                        // (the root) as the object.
                        let w_p =
                            time_op_in(c, iters, &mut |cc| cc.write_ptr(obj, 0, ancestor_target));
                        std::hint::black_box(acc);
                        vec![
                            "distant".to_string(),
                            format!("{r_imm:.1}"),
                            format!("{r_mut:.1}"),
                            format!("{w_np:.1}"),
                            format!("{w_p:.1}"),
                        ]
                    },
                    |_| (),
                )
                .0;
            rows.push(row);
        }

        // -- Promoted objects: objects that have acquired forwarding pointers. ----
        {
            let holder = ctx.alloc_ref_ptr(ObjPtr::NULL);
            // A child task creates an object and writes it into the parent's ref,
            // forcing a promotion; the original (deep) copy is then a "promoted object".
            let stale = ctx
                .join(
                    |c| {
                        let obj = c.alloc(1, 3, ObjKind::Ref);
                        c.write_nonptr(obj, 2, 7);
                        c.write_ptr(holder, 0, obj);
                        obj
                    },
                    |_| ObjPtr::NULL,
                )
                .0;
            let target = ctx.alloc_ref_data(1);
            let mut acc = 0u64;
            let r_imm = time_op(&mut || acc = acc.wrapping_add(ctx.read_imm(stale, 2)));
            let r_mut = time_op(&mut || acc = acc.wrapping_add(ctx.read_mut(stale, 2)));
            let w_np = time_op(&mut || ctx.write_nonptr(stale, 2, acc));
            let w_p = time_op(&mut || ctx.write_ptr(stale, 0, target));
            rows.push(vec![
                "promoted".into(),
                format!("{r_imm:.1}"),
                format!("{r_mut:.1}"),
                format!("{w_np:.1}"),
                format!("{w_p:.1}"),
            ]);
            std::hint::black_box(acc);
        }
        rows
    });
    for row in rows {
        table.row(row);
    }
    table
}

fn time_op_in<C: ParCtx>(_ctx: &C, iters: u64, op: &mut dyn FnMut(&C)) -> f64 {
    // The context is threaded explicitly so the closure can use the child context.
    let start = Instant::now();
    for _ in 0..iters {
        // Safety valve against the optimizer removing the loop entirely.
        std::hint::black_box(());
    }
    let overhead = start.elapsed();
    let start = Instant::now();
    for _ in 0..iters {
        op(_ctx);
    }
    (start.elapsed().saturating_sub(overhead)).as_nanos() as f64 / iters as f64
}

// ---------------------------------------------------------------------------
// Figure 9: representative operations.
// ---------------------------------------------------------------------------

/// Figure 9: each benchmark's representative memory operation, plus the measured
/// promotion counts on the hierarchical runtime as corroboration.
///
/// The measurement pins the eager per-fork heap shape (ablation A2): Figure 9
/// classifies each benchmark's representative *operation*, so the corroborating
/// counts must not depend on how many forks the scheduler happened to steal (under
/// the default lazy steal-time policy, an unstolen task's publishing writes are
/// same-heap and promote nothing — on a single-core machine the whole column would
/// read 0).
pub fn fig9(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Figure 9 — representative operations per benchmark",
        &[
            "benchmark",
            "representative operation",
            "promoted objects (measured, parmem, eager heaps)",
        ],
    );
    let params = Params {
        scale: cfg.scale.min(0.001),
        grain: cfg.grain,
    };
    for id in BenchId::ALL {
        let m = measure_parmem_with_config(HhConfig::eager_heaps(cfg.procs.min(4)), id, params);
        table.row(vec![
            id.name().to_string(),
            id.representative_operation().to_string(),
            m.stats.promoted_objects.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 10 and 11: the main benchmark tables.
// ---------------------------------------------------------------------------

fn bench_table(title: &str, benches: &[BenchId], kinds: &[RuntimeKind], cfg: ExpConfig) -> Table {
    let mut header: Vec<String> = vec!["benchmark".into(), "Ts(seq)".into(), "GCs".into()];
    for kind in kinds {
        header.push(format!("{}: T1", kind.short()));
        header.push(format!("{}: ovh", kind.short()));
        header.push(format!("{}: T{}", kind.short(), cfg.procs));
        header.push(format!("{}: spd", kind.short()));
        header.push(format!("{}: GC{}", kind.short(), cfg.procs));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    let params = cfg.params();

    for &bench in benches {
        let seq = measure(RuntimeKind::Seq, 1, bench, params);
        let ts = seq.elapsed.as_secs_f64();
        let mut cells = vec![
            bench.name().to_string(),
            secs(seq.elapsed),
            percent(seq.gc_fraction()),
        ];
        for &kind in kinds {
            let one = measure(kind, 1, bench, params);
            let many = measure(kind, cfg.procs, bench, params);
            cells.push(secs(one.elapsed));
            cells.push(ratio(one.elapsed.as_secs_f64(), ts));
            cells.push(secs(many.elapsed));
            cells.push(ratio(ts, many.elapsed.as_secs_f64()));
            cells.push(percent(many.gc_fraction()));
        }
        table.row(cells);
    }
    table
}

/// Figure 10: execution times, overheads, speedups and GC fractions of the pure
/// benchmarks on the stop-the-world baseline, the DLG baseline, and the hierarchical
/// runtime, against the sequential baseline.
pub fn fig10(cfg: ExpConfig) -> Table {
    bench_table(
        "Figure 10 — pure benchmarks",
        &BenchId::PURE,
        &[RuntimeKind::Stw, RuntimeKind::Dlg, RuntimeKind::Parmem],
        cfg,
    )
}

/// Figure 11: the imperative benchmarks, extended with the adversarial pair
/// (`wavefront`, `entangle`) so the promotion-saturated end of the spectrum
/// shows up next to the paper's imperative programs. As in the paper, the
/// Manticore-style baseline is omitted (its source model cannot express these
/// programs).
pub fn fig11(cfg: ExpConfig) -> Table {
    let benches: Vec<BenchId> = BenchId::IMPERATIVE
        .iter()
        .chain(BenchId::ADVERSARIAL.iter())
        .copied()
        .collect();
    bench_table(
        "Figure 11 — imperative and adversarial benchmarks",
        &benches,
        &[RuntimeKind::Stw, RuntimeKind::Parmem],
        cfg,
    )
}

// ---------------------------------------------------------------------------
// Figure 12: speedup curves.
// ---------------------------------------------------------------------------

/// Figure 12: speedup of the hierarchical runtime as the worker count grows, for a
/// representative subset of benchmarks.
pub fn fig12(cfg: ExpConfig) -> Table {
    let benches = [
        BenchId::Fib,
        BenchId::Filter,
        BenchId::MsortPure,
        BenchId::Msort,
        BenchId::Dedup,
        BenchId::Raytracer,
        BenchId::Reachability,
    ];
    let mut procs = vec![1usize];
    let mut p = 2;
    while p < cfg.procs {
        procs.push(p);
        p *= 2;
    }
    if *procs.last().unwrap() != cfg.procs {
        procs.push(cfg.procs);
    }

    let mut header: Vec<String> = vec!["benchmark".into()];
    for p in &procs {
        header.push(format!("P={p}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 12 — speedups of the hierarchical runtime",
        &header_refs,
    );
    let params = cfg.params();

    for bench in benches {
        let seq = measure(RuntimeKind::Seq, 1, bench, params);
        let ts = seq.elapsed.as_secs_f64();
        let mut cells = vec![bench.name().to_string()];
        for &p in &procs {
            let m = measure(RuntimeKind::Parmem, p, bench, params);
            cells.push(ratio(ts, m.elapsed.as_secs_f64()));
        }
        table.row(cells);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 13: memory consumption and inflation.
// ---------------------------------------------------------------------------

/// Figure 13: peak memory consumption of the sequential baseline (Ms, in MB) and the
/// inflation factors of the stop-the-world baseline and the hierarchical runtime on 1
/// and `procs` workers.
pub fn fig13(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Figure 13 — memory consumption (MB) and inflation",
        &[
            "benchmark",
            "Ms(seq)",
            "stw: I1",
            "stw: IP",
            "parmem: I1",
            "parmem: IP",
        ],
    );
    let params = cfg.params();
    for bench in BenchId::ALL {
        let seq = measure(RuntimeKind::Seq, 1, bench, params);
        let ms = seq.stats.peak_live_bytes();
        let infl = |m: &Measurement| ratio(m.stats.peak_live_bytes() as f64, ms as f64);
        let stw1 = measure(RuntimeKind::Stw, 1, bench, params);
        let stwp = measure(RuntimeKind::Stw, cfg.procs, bench, params);
        let hh1 = measure(RuntimeKind::Parmem, 1, bench, params);
        let hhp = measure(RuntimeKind::Parmem, cfg.procs, bench, params);
        table.row(vec![
            bench.name().to_string(),
            megabytes(ms),
            infl(&stw1),
            infl(&stwp),
            infl(&hh1),
            infl(&hhp),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// §4.4: promotion volume (the Manticore 340 MB observation).
// ---------------------------------------------------------------------------

/// §4.4 promotion-volume comparison: bytes promoted by the DLG/Manticore-style baseline
/// versus the hierarchical runtime (the paper reports ~340 MB vs 0 on `map` at full
/// scale). `map` and `msort-pure` are both shown: with a flat-array sequence
/// representation `map`'s leaves build nothing, so the communication-promotion effect
/// is most visible on `msort-pure`, whose leaves allocate their partitions locally (see
/// EXPERIMENTS.md, E6).
pub fn promotion_volume(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Promotion volume (§4.4)",
        &[
            "benchmark",
            "runtime",
            "workers",
            "promoted objects",
            "promoted MB",
        ],
    );
    let params = cfg.params();
    for bench in [BenchId::Map, BenchId::MsortPure] {
        for (kind, workers) in [
            (RuntimeKind::Dlg, cfg.procs),
            (RuntimeKind::Parmem, cfg.procs),
        ] {
            let m = measure(kind, workers, bench, params);
            table.row(vec![
                bench.name().to_string(),
                kind.short().to_string(),
                workers.to_string(),
                m.stats.promoted_objects.to_string(),
                megabytes(m.stats.promoted_bytes()),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Scheduler counters (not in the paper; scheduler v2 observability).
// ---------------------------------------------------------------------------

/// Scheduler summary: per benchmark, the hierarchical runtime's steal / park / wake
/// counters and the heap accounting of the lazy steal-time heap policy. `heaps_elided`
/// is the direct measure of how often the common (unstolen) fork path ran heap-free;
/// `parks`/`wakes` show the idle protocol actually sleeping instead of spinning.
pub fn sched_counters(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Scheduler counters (parmem, lazy steal-time heaps)",
        &[
            "benchmark",
            "steals",
            "parks",
            "wakes",
            "heaps created",
            "heaps elided",
        ],
    );
    let params = cfg.params();
    for id in BenchId::ALL {
        let m = measure(RuntimeKind::Parmem, cfg.procs, id, params);
        table.row(vec![
            id.name().to_string(),
            m.stats.sched_steals.to_string(),
            m.stats.sched_parks.to_string(),
            m.stats.sched_wakes.to_string(),
            m.stats.heaps_created.to_string(),
            m.stats.heaps_elided.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Memory lifecycle (not in the paper; memory v2 observability).
// ---------------------------------------------------------------------------

/// Memory-lifecycle summary (`repro mem`): per benchmark and runtime, the steady-state
/// footprint — peak/live/free words — plus how much of the chunk traffic was served by
/// recycling rather than fresh allocation.
///
/// Each benchmark runs **twice on one runtime**: the reuse horizon passes between
/// runs (a completed run's heap tree is disposed of and its chunks reclaimed when the
/// next run begins, DESIGN.md §5), so the second run's chunk demand is served from
/// the free lists. The table reports the state after the second run; `recycle%` is
/// the fraction of all chunks ever handed out that were reused buffers.
pub fn mem_lifecycle(cfg: ExpConfig) -> Table {
    mem_lifecycle_for(cfg, &BenchId::ALL)
}

fn mem_lifecycle_for(cfg: ExpConfig, benches: &[BenchId]) -> Table {
    let mut table = Table::new(
        "Memory lifecycle — steady state after two runs (peak/live/free in Kwords)",
        &[
            "benchmark",
            "runtime",
            "peak",
            "live",
            "free",
            "recycled",
            "recycle%",
            "cache hits",
            "subtree GCs",
        ],
    );
    let params = cfg.params();
    let kwords = |w: u64| format!("{:.1}", w as f64 / 1024.0);
    for &bench in benches {
        for kind in [
            RuntimeKind::Seq,
            RuntimeKind::Stw,
            RuntimeKind::Dlg,
            RuntimeKind::Parmem,
        ] {
            let m = match kind {
                RuntimeKind::Seq => {
                    let rt = SeqRuntime::new();
                    measure_on(&rt, bench, params, 1);
                    measure_on(&rt, bench, params, 1)
                }
                RuntimeKind::Stw => {
                    let rt = StwRuntime::with_workers(cfg.procs);
                    measure_on(&rt, bench, params, cfg.procs);
                    measure_on(&rt, bench, params, cfg.procs)
                }
                RuntimeKind::Dlg => {
                    let rt = DlgRuntime::with_workers(cfg.procs);
                    measure_on(&rt, bench, params, cfg.procs);
                    measure_on(&rt, bench, params, cfg.procs)
                }
                RuntimeKind::Parmem => {
                    let rt = HhRuntime::new(HhConfig::with_workers(cfg.procs));
                    measure_on(&rt, bench, params, cfg.procs);
                    measure_on(&rt, bench, params, cfg.procs)
                }
            };
            let s = &m.stats;
            table.row(vec![
                bench.name().to_string(),
                kind.short().to_string(),
                kwords(s.peak_live_words),
                kwords(s.live_words),
                kwords(s.free_words),
                s.chunks_recycled.to_string(),
                percent(s.recycle_rate()),
                s.alloc_cache_hits.to_string(),
                s.subtree_collections.to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Promotion v2 (not in the paper; DESIGN.md §6 / ablation A3).
// ---------------------------------------------------------------------------

/// `repro promote`, part 1 — microbenchmark: batched promotion (v2) vs the v1
/// per-object path on closures of increasing size. Each repetition publishes a
/// freshly built cons closure from a child heap into a parent-heap ref under the
/// eager per-fork configuration, and only the promoting `write_ptr` is timed
/// (shared helpers in [`mod@crate::measure`], so this table and the
/// `promote_overhead` bench always measure the same comparison). The
/// configuration is fixed (1 worker, fixed closure sizes); the CLI flags apply to
/// part 2 only. The acceptance bar for promotion v2 is a ≥ 3× speedup on the
/// 1000-object closure.
pub fn promote_micro(_cfg: ExpConfig) -> Table {
    use crate::measure::{promotion_runtime, time_promotions};

    let mut table = Table::new(
        "Promotion v2 — batched vs per-object promotion (ns per promoted object; \
         fixed 1-worker eager config, --scale/--procs/--grain not applicable)",
        &["closure objects", "v1 ns/obj", "v2 ns/obj", "speedup"],
    );
    for &len in &[16usize, 256, 1024, 4096] {
        let reps = (200_000 / len).clamp(20, 2_000) as u64;
        let v1_rt = promotion_runtime(false);
        let v2_rt = promotion_runtime(true);
        // Warm both runtimes once so chunk minting is off the measured path.
        time_promotions(&v1_rt, len, 2);
        time_promotions(&v2_rt, len, 2);
        let per_obj = |d: std::time::Duration| d.as_nanos() as f64 / (reps as usize * len) as f64;
        let v1 = per_obj(time_promotions(&v1_rt, len, reps));
        let v2 = per_obj(time_promotions(&v2_rt, len, reps));
        table.row(vec![
            len.to_string(),
            format!("{v1:.1}"),
            format!("{v2:.1}"),
            ratio(v1, v2),
        ]);
    }
    table
}

/// `repro promote`, part 2 — the mutator-heavy and adversarial workloads:
/// promotion and forwarding-chain counters on the runtimes that promote
/// (`parmem` lazy and eager, `dlg`). `fwd hops` vs `compressions` shows path
/// compression keeping the amortized `findMaster` flat; `promotions` vs
/// `promoted objects` shows the batching factor (objects evacuated per pass).
pub fn promote_workloads(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Promotion v2 — mutator-heavy workloads (counters)",
        &[
            "benchmark",
            "runtime",
            "promotions",
            "promoted objs",
            "promoted KW",
            "fwd hops",
            "compressions",
        ],
    );
    let params = cfg.params();
    for &bench in BenchId::MUTATOR.iter().chain(BenchId::ADVERSARIAL.iter()) {
        for mode in ["parmem", "parmem-eager", "dlg"] {
            let m = match mode {
                "parmem" => measure(RuntimeKind::Parmem, cfg.procs, bench, params),
                "parmem-eager" => {
                    measure_parmem_with_config(HhConfig::eager_heaps(cfg.procs), bench, params)
                }
                _ => measure(RuntimeKind::Dlg, cfg.procs, bench, params),
            };
            let s = &m.stats;
            table.row(vec![
                bench.name().to_string(),
                mode.to_string(),
                s.promotions.to_string(),
                s.promoted_objects.to_string(),
                format!("{:.1}", s.promoted_words as f64 / 1024.0),
                s.fwd_hops.to_string(),
                s.fwd_compressions.to_string(),
            ]);
        }
    }
    table
}

/// `repro promote`, part 3 — the promote-rate sweep: the `entangle` adversary
/// run on the eager hierarchical runtime at cross-subtree write fractions
/// {0, 0.1, 0.5, 1.0}, printing the promotion and forwarding counters at each
/// point. This is the "where does promotion cost overtake hierarchy benefit"
/// crossover as a table: at rate 0 nothing promotes (every write stays inside
/// the sending actor's subtree), and each step up multiplies promoted volume
/// and the forwarding traffic the mutators absorb.
pub fn promote_rate_sweep(cfg: ExpConfig) -> Table {
    use hh_workloads::adversary::entangle;

    let mut table = Table::new(
        "Promotion v2 — entangle promote-rate sweep (parmem, eager heaps)",
        &[
            "promote rate",
            "elapsed",
            "promotions",
            "promoted objs",
            "promoted KW",
            "fwd hops",
            "compressions",
        ],
    );
    // Same shape as the suite's `entangle` entry, with the rate swept instead
    // of pinned at the midpoint.
    let actors = 16;
    let ops = ((2_000_000.0 * cfg.scale) as usize).max(8_000) / actors;
    for &permille in &[0u64, 100, 500, 1000] {
        let rt = HhRuntime::new(HhConfig::eager_heaps(cfg.procs));
        let start = Instant::now();
        rt.run(move |ctx| entangle(ctx, actors, ops, permille, 0xC0DE_0005));
        let elapsed = start.elapsed();
        let s = rt.stats();
        table.row(vec![
            format!("{:.1}", permille as f64 / 1000.0),
            secs(elapsed),
            s.promotions.to_string(),
            s.promoted_objects.to_string(),
            format!("{:.1}", s.promoted_words as f64 / 1024.0),
            s.fwd_hops.to_string(),
            s.fwd_compressions.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// GC v2 (not in the paper; DESIGN.md §9).
// ---------------------------------------------------------------------------

/// `repro gc` — collection behaviour of all four runtimes on the mutator-heavy
/// and adversarial workloads under a GC threshold small enough that collections
/// actually fire:
/// the pause CDF (count, p50/p99/p999/max), copied volume, and the team steal
/// counter. The hierarchical runtime is reported three times: the default GC
/// team, the serial `gc_workers = 1` ablation (A4), and the GC v3
/// mutator-concurrent incremental collector (`incremental_gc`; switching it off
/// is ablation A6 — the plain `parmem` row). The incremental row's pauses are
/// individual safepoint increments, so its tail should stay bounded by the
/// increment budget while the stop-the-world rows' tails grow with the live set.
pub fn gc_pause_table(cfg: ExpConfig) -> Table {
    gc_pause_report(cfg).0
}

/// As [`gc_pause_table`], additionally returning one JSON line per
/// benchmark × runtime with the headline GC metrics (hand-rolled — no serde in
/// this environment): `gc_max_pause_ns`, the pause tail, copied volume, and
/// the evacuation cost in ns per copied word. `repro gc --json PATH` appends
/// these to the benchmark artifact (`BENCH_pr7.json`) that the CI bench gate
/// diffs across PRs.
pub fn gc_pause_report(cfg: ExpConfig) -> (Table, Vec<String>) {
    let mut json: Vec<String> = Vec::new();
    let mut table = Table::new(
        "GC v3 — pause CDF and team counters (tiny thresholds)",
        &[
            "benchmark",
            "runtime",
            "GCs",
            "incr GCs",
            "stolen blocks",
            "copied Kw",
            "gc time",
            "pauses",
            "p50",
            "p99",
            "p999",
            "max pause",
        ],
    );
    let params = cfg.params();
    let chunk = 1024;
    let threshold = 16 * 1024;
    let pause_us = |ns: u64| format!("{:.1} µs", ns as f64 / 1e3);
    let kwords = |w: u64| format!("{:.1}", w as f64 / 1024.0);
    for &bench in BenchId::MUTATOR.iter().chain(BenchId::ADVERSARIAL.iter()) {
        let mut measurements: Vec<(String, &'static str, Measurement)> = Vec::new();
        let seq = SeqRuntime::with_params(chunk, threshold, true);
        measurements.push(("seq".into(), "seq", measure_on(&seq, bench, params, 1)));
        let stw = StwRuntime::with_params(cfg.procs, chunk, threshold, true);
        measurements.push((
            "stw".into(),
            "stw",
            measure_on(&stw, bench, params, cfg.procs),
        ));
        let dlg = DlgRuntime::with_params(cfg.procs, chunk, threshold, true);
        measurements.push((
            "dlg".into(),
            "dlg",
            measure_on(&dlg, bench, params, cfg.procs),
        ));
        for (label, key, gc_workers, incremental) in [
            ("parmem (A6)", "parmem_a6", 0usize, false),
            ("parmem gc=1 (A4)", "parmem_a4", 1, false),
            ("parmem inc (v3)", "parmem_inc", 0, true),
        ] {
            let m = measure_parmem_with_config(
                HhConfig {
                    n_workers: cfg.procs,
                    chunk_words: chunk,
                    gc_threshold_words: threshold,
                    gc_workers,
                    incremental_gc: incremental,
                    ..Default::default()
                },
                bench,
                params,
            );
            measurements.push((label.into(), key, m));
        }
        for (label, key, m) in measurements {
            let s = &m.stats;
            table.row(vec![
                bench.name().to_string(),
                label,
                s.gc_count.to_string(),
                s.gc_incremental_collections.to_string(),
                s.gc_steal_blocks.to_string(),
                kwords(s.gc_copied_words),
                secs(s.gc_time),
                s.gc_pause_count.to_string(),
                pause_us(s.gc_pause_p50_ns),
                pause_us(s.gc_pause_p99_ns),
                pause_us(s.gc_pause_p999_ns),
                pause_us(s.gc_max_pause_ns),
            ]);
            let gc_ns = s.gc_time.as_nanos() as f64;
            json.push(format!(
                concat!(
                    "{{\"experiment\":\"gc\",\"benchmark\":\"{}\",\"runtime\":\"{}\",",
                    "\"elapsed_s\":{:.6},\"gc_count\":{},\"gc_incremental_collections\":{},",
                    "\"gc_pause_count\":{},\"gc_pause_p50_ns\":{},\"gc_pause_p99_ns\":{},",
                    "\"gc_pause_p999_ns\":{},\"gc_max_pause_ns\":{},\"gc_copied_words\":{},",
                    "\"gc_time_s\":{:.6},\"ns_per_copied_word\":{:.2},\"checksum\":{}}}"
                ),
                bench.name(),
                key,
                m.elapsed.as_secs_f64(),
                s.gc_count,
                s.gc_incremental_collections,
                s.gc_pause_count,
                s.gc_pause_p50_ns,
                s.gc_pause_p99_ns,
                s.gc_pause_p999_ns,
                s.gc_max_pause_ns,
                s.gc_copied_words,
                s.gc_time.as_secs_f64(),
                gc_ns / (s.gc_copied_words.max(1)) as f64,
                m.checksum,
            ));
        }
    }
    (table, json)
}

// ---------------------------------------------------------------------------
// Adversarial workloads (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// `repro adversarial` — headline costs of the adversarial workloads, plus one
/// JSON line per row for the CI bench gate. `wavefront` reports nanoseconds per
/// grid cell to reach the reconstruction fixpoint (metric `ns_per_cell`) on all
/// four runtimes and the incremental hierarchical shape; `entangle` reports the
/// per-promoted-object cost of the run (`promote_ns_per_obj`) on the eager
/// hierarchical runtime at promote rates 0.1/0.5/1.0 — eager heaps make the
/// promotion volume deterministic, so the metric is stable across schedules.
pub fn adversarial_report(cfg: ExpConfig) -> (Table, Vec<String>) {
    use hh_workloads::adversary::entangle;

    let mut json: Vec<String> = Vec::new();
    let mut table = Table::new(
        "Adversarial workloads — wavefront ns/cell, entangle promotion cost",
        &[
            "benchmark",
            "runtime",
            "elapsed",
            "ns/cell",
            "promotions",
            "promoted objs",
            "promote ns/obj",
        ],
    );
    let params = cfg.params();

    // Wavefront: ns per grid cell, same side formula as the suite entry.
    let side = ((2048.0 * cfg.scale.sqrt()) as usize).clamp(64, 2048);
    let cells = (side * side) as f64;
    let mut wavefront_rows: Vec<(&'static str, Measurement)> = vec![
        (
            "seq",
            measure(RuntimeKind::Seq, 1, BenchId::Wavefront, params),
        ),
        (
            "stw",
            measure(RuntimeKind::Stw, cfg.procs, BenchId::Wavefront, params),
        ),
        (
            "dlg",
            measure(RuntimeKind::Dlg, cfg.procs, BenchId::Wavefront, params),
        ),
        (
            "parmem",
            measure(RuntimeKind::Parmem, cfg.procs, BenchId::Wavefront, params),
        ),
        (
            "parmem_inc",
            measure_parmem_with_config(
                HhConfig::incremental(cfg.procs),
                BenchId::Wavefront,
                params,
            ),
        ),
    ];
    for (key, m) in wavefront_rows.drain(..) {
        let ns_per_cell = m.elapsed.as_nanos() as f64 / cells;
        table.row(vec![
            "wavefront".into(),
            key.into(),
            secs(m.elapsed),
            format!("{ns_per_cell:.1}"),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        json.push(format!(
            concat!(
                "{{\"experiment\":\"adversarial\",\"benchmark\":\"wavefront\",",
                "\"runtime\":\"{}\",\"elapsed_s\":{:.6},\"cells\":{},",
                "\"ns_per_cell\":{:.2},\"checksum\":{}}}"
            ),
            key,
            m.elapsed.as_secs_f64(),
            cells as u64,
            ns_per_cell,
            m.checksum,
        ));
    }

    // Entangle: per-promoted-object cost at each non-zero promote rate. The
    // `mode` field keys the gate line (one per rate); rate 0 promotes nothing
    // under eager heaps, so it has no per-object cost to track.
    let actors = 16;
    let ops = ((2_000_000.0 * cfg.scale) as usize).max(8_000) / actors;
    for &permille in &[100u64, 500, 1000] {
        let rt = HhRuntime::new(HhConfig::eager_heaps(cfg.procs));
        let start = Instant::now();
        let checksum = rt.run(move |ctx| entangle(ctx, actors, ops, permille, 0xC0DE_0005));
        let elapsed = start.elapsed();
        let s = rt.stats();
        let ns_per_obj = elapsed.as_nanos() as f64 / s.promoted_objects.max(1) as f64;
        table.row(vec![
            format!("entangle r={:.1}", permille as f64 / 1000.0),
            "parmem_eager".into(),
            secs(elapsed),
            "-".into(),
            s.promotions.to_string(),
            s.promoted_objects.to_string(),
            format!("{ns_per_obj:.1}"),
        ]);
        json.push(format!(
            concat!(
                "{{\"experiment\":\"adversarial\",\"benchmark\":\"entangle\",",
                "\"mode\":\"entangle-r{}\",\"runtime\":\"parmem_eager\",",
                "\"elapsed_s\":{:.6},\"promotions\":{},\"promoted_objects\":{},",
                "\"promote_ns_per_obj\":{:.2},\"checksum\":{}}}"
            ),
            permille,
            elapsed.as_secs_f64(),
            s.promotions,
            s.promoted_objects,
            ns_per_obj,
            checksum,
        ));
    }
    (table, json)
}

// ---------------------------------------------------------------------------
// Ablations (not in the paper; DESIGN.md A1/A2).
// ---------------------------------------------------------------------------

/// Ablation A1: the hierarchical runtime with its fast paths disabled, to quantify how
/// much of the design's efficiency comes from them.
pub fn ablation_fastpath(cfg: ExpConfig) -> Table {
    let mut table = Table::new(
        "Ablation A1 — fast paths on/off (parmem)",
        &[
            "benchmark",
            "fast paths (s)",
            "no fast paths (s)",
            "slowdown",
        ],
    );
    let params = cfg.params();
    for bench in [BenchId::Msort, BenchId::Tourney, BenchId::Usp] {
        let with = measure_parmem_with_config(HhConfig::with_workers(cfg.procs), bench, params);
        let without = measure_parmem_with_config(
            HhConfig {
                n_workers: cfg.procs,
                enable_read_write_fast_path: false,
                enable_write_ptr_fast_path: false,
                ..Default::default()
            },
            bench,
            params,
        );
        table.row(vec![
            bench.name().to_string(),
            secs(with.elapsed),
            secs(without.elapsed),
            ratio(without.elapsed.as_secs_f64(), with.elapsed.as_secs_f64()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// hh-server: overlapping runs under epoch vs global-horizon reclamation (A5).
// ---------------------------------------------------------------------------

/// `repro serve` — the multi-tenant experiment (DESIGN.md §5): `runs` independent
/// small runs flow from client threads through a bounded queue onto one shared
/// runtime, so several runs overlap at every instant. One row per reclamation
/// mode: the default epoch watermark keeps recycling mid-overlap; the A5 global
/// horizon (reclaim only when *no* run is active) never gets to reclaim under
/// sustained load, so it mints a fresh chunk per run and its footprint grows with
/// the request count.
pub fn serve_overlap(cfg: ExpConfig, runs: usize) -> Table {
    let mut table = Table::new(
        "serve — overlapping independent runs, epoch vs global-horizon reclamation (A5)",
        &[
            "mode",
            "runs",
            "runs/s",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "recycle%",
            "epoch reclaims",
            "overlap peak",
            "peak footprint (Kw)",
        ],
    );
    let serve_cfg = hh_server::ServeConfig {
        runs,
        clients: 2,
        executors: cfg.procs.max(2),
        queue_cap: 64,
        seed: 0x5eed_0001,
        scale: 1,
        sample_every: 8,
        workload: None,
        ..hh_server::ServeConfig::default()
    };
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    for (mode, config) in [
        ("epoch", HhConfig::with_workers(cfg.procs)),
        ("global (A5)", HhConfig::global_horizon(cfg.procs)),
    ] {
        let rt = HhRuntime::new(config);
        let label = if mode == "epoch" { "epoch" } else { "global" };
        let r = hh_server::serve(&rt, &serve_cfg, label);
        hh_server::verify_quiescent(&rt)
            .unwrap_or_else(|e| panic!("serve {mode}: invariant violated: {e}"));
        table.row(vec![
            mode.to_string(),
            r.runs.to_string(),
            format!("{:.0}", r.throughput_rps),
            us(r.latency.p50_ns),
            us(r.latency.p99_ns),
            us(r.latency.p999_ns),
            percent(r.recycle_rate()),
            r.stats.epoch_reclaims.to_string(),
            r.stats.active_runs_peak.to_string(),
            format!("{:.1}", r.peak_footprint_words as f64 / 1024.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale: 0.0002,
            procs: 2,
            grain: 512,
        }
    }

    #[test]
    fn fig8_produces_three_rows() {
        let t = fig8(2_000);
        assert_eq!(t.n_rows(), 3);
        let s = t.render();
        assert!(s.contains("local") && s.contains("distant") && s.contains("promoted"));
    }

    #[test]
    fn fig9_covers_all_benchmarks() {
        let t = fig9(tiny_cfg());
        assert_eq!(t.n_rows(), BenchId::ALL.len());
        let s = t.render();
        assert!(s.contains("usp-tree"));
        assert!(s.contains("distant promoting writes"));
    }

    #[test]
    fn fig12_has_speedup_columns() {
        let cfg = tiny_cfg();
        let t = fig12(cfg);
        assert_eq!(t.n_rows(), 7);
        assert!(t.render().contains("P=2"));
    }

    #[test]
    fn sched_counters_cover_the_suite_and_show_elisions() {
        let t = sched_counters(ExpConfig {
            scale: 0.0005,
            procs: 2,
            grain: 256,
        });
        assert_eq!(t.n_rows(), BenchId::ALL.len());
        let rendered = t.render();
        // Every fork-join workload must elide heaps under the lazy policy: each data
        // row's last column (heaps elided) must be positive.
        for line in rendered.lines().skip(3) {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.is_empty() {
                continue;
            }
            let elided: u64 = toks.last().unwrap().parse().expect("elided column");
            assert!(
                elided > 0,
                "{}: no heaps elided on a fork-join workload",
                toks[0]
            );
        }
    }

    #[test]
    fn promote_tables_render_and_eager_rows_promote() {
        let micro = promote_micro(tiny_cfg());
        assert_eq!(micro.n_rows(), 4);
        assert!(micro.render().contains("1024"));

        let t = promote_workloads(ExpConfig {
            scale: 0.0005,
            procs: 2,
            grain: 256,
        });
        assert_eq!(
            t.n_rows(),
            3 * (BenchId::MUTATOR.len() + BenchId::ADVERSARIAL.len())
        );
        // Every eager parmem row must show promotions (column 2) — the mutator
        // and adversarial workloads all publish cross-heap structures.
        for line in t.render().lines().skip(3) {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() < 3 || toks[1] != "parmem-eager" {
                continue;
            }
            let promotions: u64 = toks[2].parse().expect("promotions column");
            assert!(promotions > 0, "{}: eager run never promoted", toks[0]);
        }
    }

    #[test]
    fn mem_lifecycle_reports_recycling_in_steady_state() {
        let t = mem_lifecycle_for(tiny_cfg(), &[BenchId::Reduce, BenchId::MsortPure]);
        assert_eq!(t.n_rows(), 2 * 4);
        let rendered = t.render();
        // Every runtime reuses chunk memory on its second run: the recycled column
        // (index 5) must be positive on each data row.
        for line in rendered.lines().skip(3) {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.is_empty() {
                continue;
            }
            let recycled: u64 = toks[5].parse().expect("recycled column");
            assert!(
                recycled > 0,
                "{} on {}: no chunks recycled across runs",
                toks[0],
                toks[1]
            );
        }
    }

    #[test]
    fn gc_pause_table_covers_mutator_and_adversarial_workloads_on_six_rows_each() {
        let t = gc_pause_table(tiny_cfg());
        // 3 mutator + 2 adversarial workloads ×
        // (seq, stw, dlg, parmem-A6, parmem-A4, parmem-inc).
        assert_eq!(t.n_rows(), 5 * 6);
        let rendered = t.render();
        assert!(rendered.contains("union-find"));
        assert!(rendered.contains("wavefront"));
        assert!(rendered.contains("entangle"));
        assert!(rendered.contains("(A4)"));
        assert!(rendered.contains("(A6)"));
        assert!(rendered.contains("parmem inc (v3)"));
        assert!(rendered.contains("max pause"));
        assert!(rendered.contains("p999"));
    }

    #[test]
    fn promote_rate_sweep_shows_the_crossover() {
        let t = promote_rate_sweep(tiny_cfg());
        assert_eq!(t.n_rows(), 4);
        let rendered = t.render();
        let row = |rate: &str| -> Vec<String> {
            rendered
                .lines()
                .find(|l| l.split_whitespace().next() == Some(rate))
                .unwrap_or_else(|| panic!("no row for rate {rate}"))
                .split_whitespace()
                .map(str::to_string)
                .collect()
        };
        // Columns: rate, elapsed, promotions, ...
        let promotions = |rate: &str| -> u64 { row(rate)[2].parse().expect("promotions column") };
        assert_eq!(
            promotions("0.0"),
            0,
            "rate 0 must not promote under eager heaps"
        );
        assert!(promotions("1.0") > promotions("0.1"));
    }

    #[test]
    fn adversarial_report_emits_gate_metrics() {
        let (t, json) = adversarial_report(tiny_cfg());
        // 5 wavefront runtimes + 3 entangle rates.
        assert_eq!(t.n_rows(), 5 + 3);
        assert_eq!(json.len(), 8);
        assert!(json.iter().any(|l| l.contains("\"ns_per_cell\":")));
        assert!(json.iter().any(|l| l.contains("\"promote_ns_per_obj\":")));
        assert!(json
            .iter()
            .any(|l| l.contains("\"mode\":\"entangle-r1000\"")));
        // All wavefront rows computed the same fixpoint.
        let sums: Vec<&str> = json
            .iter()
            .filter(|l| l.contains("wavefront"))
            .map(|l| l.split("\"checksum\":").nth(1).unwrap())
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn serve_overlap_contrasts_epoch_and_global_modes() {
        let t = serve_overlap(
            ExpConfig {
                scale: 0.0005,
                procs: 2,
                grain: 256,
            },
            24,
        );
        assert_eq!(t.n_rows(), 2);
        let rendered = t.render();
        assert!(rendered.contains("epoch"));
        assert!(rendered.contains("global (A5)"));
        // The A5 row reclaims nothing via the watermark.
        let global_line = rendered
            .lines()
            .find(|l| l.trim_start().starts_with("global"))
            .unwrap();
        let toks: Vec<&str> = global_line.split_whitespace().collect();
        // columns: global (A5) runs runs/s p50 p99 p999 recycle% reclaims peak footprint
        assert_eq!(
            toks[toks.len() - 3],
            "0",
            "A5 epoch reclaims: {global_line}"
        );
    }

    #[test]
    fn promotion_volume_shows_dlg_promoting_more_than_parmem() {
        let t = promotion_volume(ExpConfig {
            scale: 0.0005,
            procs: 3,
            grain: 256,
        });
        assert_eq!(t.n_rows(), 4);
        let rendered = t.render();
        // The map/parmem row must report zero promoted objects.
        let parmem_line = rendered
            .lines()
            .find(|l| {
                let toks: Vec<&str> = l.split_whitespace().collect();
                toks.first() == Some(&"map") && toks.get(1) == Some(&"parmem")
            })
            .unwrap();
        assert!(
            parmem_line.split_whitespace().any(|tok| tok == "0"),
            "parmem should promote nothing on map: {parmem_line}"
        );
    }
}
