//! The sequential baseline (`mlton` in the paper's tables).
//!
//! One flat heap, no locks, no parallelism: `join` simply runs both branches in order on
//! the calling thread, and a plain semispace collection runs at safe points when the
//! heap exceeds its threshold. Benchmark times measured on this runtime are the `T_s`
//! baseline against which the parallel runtimes' overhead and speedup are computed.

use crate::common::{resolve_tracked, semispace_collect, FlatHeap, RootRegistry, RunEpoch};
use crate::counters::Counters;
use hh_api::{ParCtx, RunStats, Runtime};
use hh_objmodel::{ChunkStore, Header, ObjKind, ObjPtr};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Raw heap-owner id used by the sequential baseline.
const OWNER_SEQ: u32 = u32::MAX - 2;

struct SeqInner {
    store: Arc<ChunkStore>,
    heap: FlatHeap,
    roots: RootRegistry,
    counters: Counters,
    epoch: RunEpoch,
    gc_threshold_words: usize,
    chunk_words: usize,
    enable_gc: bool,
}

/// The sequential baseline runtime.
pub struct SeqRuntime {
    inner: Arc<SeqInner>,
}

impl SeqRuntime {
    /// Creates a sequential runtime with default memory parameters.
    pub fn new() -> SeqRuntime {
        Self::with_params(8 * 1024, 4 * 1024 * 1024, true)
    }

    /// Creates a sequential runtime with explicit chunk size and GC threshold (words).
    pub fn with_params(
        chunk_words: usize,
        gc_threshold_words: usize,
        enable_gc: bool,
    ) -> SeqRuntime {
        let store = Arc::new(ChunkStore::new(chunk_words));
        let heap = FlatHeap::new(Arc::clone(&store), OWNER_SEQ, 1);
        SeqRuntime {
            inner: Arc::new(SeqInner {
                store,
                heap,
                roots: RootRegistry::new(),
                counters: Counters::default(),
                epoch: RunEpoch::new(),
                gc_threshold_words,
                chunk_words,
                enable_gc,
            }),
        }
    }
}

impl Default for SeqRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-task context of the sequential baseline (all tasks share the single heap).
pub struct SeqCtx {
    inner: Arc<SeqInner>,
    root_id: u64,
    roots: Arc<Mutex<Vec<ObjPtr>>>,
}

impl Drop for SeqCtx {
    fn drop(&mut self) {
        self.inner.roots.unregister(self.root_id);
    }
}

impl SeqInner {
    fn collect(&self) {
        let start = Instant::now();
        let zone = self.heap.chunks();
        let outcome = semispace_collect(
            &self.store,
            OWNER_SEQ,
            &zone,
            &self.roots,
            &mut [],
            self.chunk_words,
        );
        self.heap
            .replace_chunks(outcome.new_chunks, outcome.occupied_words);
        self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
        self.counters
            .gc_copied_words
            .fetch_add(outcome.copied_words as u64, Ordering::Relaxed);
        let pause = start.elapsed();
        self.counters.add_gc_time(pause);
        self.counters.record_gc_pause(pause);
    }
}

impl ParCtx for SeqCtx {
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
        let header = Header::new(n_ptr + n_nonptr, n_ptr, kind);
        self.inner
            .counters
            .allocated_words
            .fetch_add(header.size_words() as u64, Ordering::Relaxed);
        self.inner.heap.alloc(0, header)
    }

    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.store.view(obj).field(field)
    }

    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).field(field)
    }

    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).set_field(field, val);
    }

    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).set_field(field, ptr.to_bits());
    }

    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64> {
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).cas_field(field, expected, new)
    }

    fn obj_len(&self, obj: ObjPtr) -> usize {
        self.inner.store.view(obj).n_fields()
    }

    // Bulk operations (ParCtx v2): shared bodies in `common` — one forwarding
    // resolution per operand, no safepoints (single-threaded).

    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_imm(&self.inner.store, &self.inner.counters, obj, start, out);
    }

    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_mut(
            &self.inner.store,
            &self.inner.counters,
            None,
            obj,
            start,
            out,
        );
    }

    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        crate::common::bulk_write_nonptr(
            &self.inner.store,
            &self.inner.counters,
            None,
            obj,
            start,
            vals,
        );
    }

    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        crate::common::bulk_fill_nonptr(
            &self.inner.store,
            &self.inner.counters,
            None,
            obj,
            start,
            len,
            val,
        );
    }

    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        crate::common::bulk_copy_nonptr(
            &self.inner.store,
            &self.inner.counters,
            None,
            src,
            src_start,
            dst,
            dst_start,
            len,
        );
    }

    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // Sequential elision of parallelism: run left then right on the same context.
        (fa(self), fb(self))
    }

    fn pin(&self, obj: ObjPtr) {
        self.roots.lock().push(obj);
    }

    fn unpin(&self, obj: ObjPtr) {
        let mut roots = self.roots.lock();
        if let Some(pos) = roots.iter().rposition(|r| *r == obj) {
            roots.swap_remove(pos);
            return;
        }
        // A collection between pin and unpin rewrote the pin slot in place, and
        // path compression can shortcut either pointer past the other's hop.
        // Forwarding is confluent, so compare resolved masters rather than raw
        // pointers to keep pin/unpin balanced across collections.
        if obj.is_null() {
            return;
        }
        let master = crate::common::resolve(&self.inner.store, obj);
        if let Some(pos) = roots
            .iter()
            .rposition(|r| !r.is_null() && crate::common::resolve(&self.inner.store, *r) == master)
        {
            roots.swap_remove(pos);
        }
    }

    fn maybe_collect(&self) {
        if self.inner.enable_gc
            && self.inner.heap.allocated_words() >= self.inner.gc_threshold_words
        {
            self.inner.collect();
        }
    }

    fn n_workers(&self) -> usize {
        1
    }
}

impl Runtime for SeqRuntime {
    type Ctx = SeqCtx;

    fn name(&self) -> &'static str {
        "seq"
    }

    fn n_workers(&self) -> usize {
        1
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        // Completed runs' memory is disposed of and recycled here, at the reuse
        // horizon (see `RunEpoch`); the guard ends the run even if `f` panics.
        let _epoch = self.inner.epoch.begin(|| {
            self.inner.heap.dispose();
            self.inner.store.reclaim_retired();
        });
        let _store_epoch = crate::common::StoreEpochGuard::begin(&self.inner.store);
        let (root_id, roots) = self.inner.roots.register();
        let ctx = SeqCtx {
            inner: Arc::clone(&self.inner),
            root_id,
            roots,
        };
        f(&ctx)
    }

    fn stats(&self) -> RunStats {
        self.inner.counters.snapshot(&self.inner.store.stats(), 1)
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops_and_join() {
        let rt = SeqRuntime::new();
        let v = rt.run(|ctx| {
            let r = ctx.alloc_ref_data(10);
            let (a, b) = ctx.join(|c| c.read_mut(r, 0) + 1, |c| c.read_mut(r, 0) + 2);
            ctx.write_nonptr(r, 0, a + b);
            ctx.read_mut(r, 0)
        });
        assert_eq!(v, 23);
        assert_eq!(rt.name(), "seq");
        assert!(rt.stats().allocated_words >= 3);
    }

    #[test]
    fn gc_triggers_and_preserves_pinned_data() {
        let rt = SeqRuntime::with_params(256, 5_000, true);
        rt.run(|ctx| {
            let keep = ctx.alloc_data_array(16);
            ctx.write_nonptr(keep, 3, 777);
            ctx.pin(keep);
            for _ in 0..200 {
                let _garbage = ctx.alloc_data_array(100);
                ctx.maybe_collect();
            }
            assert_eq!(ctx.read_mut(keep, 3), 777);
        });
        let s = rt.stats();
        assert!(s.gc_count >= 1);
        assert!(s.gc_copied_words > 0);
    }

    #[test]
    fn pointer_writes_never_promote() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let (_, _) = ctx.join(
                |c| {
                    let local = c.alloc_ref_data(5);
                    c.write_ptr(cell, 0, local);
                },
                |c| {
                    let p = c.read_mut_ptr(cell, 0);
                    if !p.is_null() {
                        assert_eq!(c.read_mut(p, 0), 5);
                    }
                },
            );
        });
        assert_eq!(rt.stats().promoted_objects, 0);
    }
}
