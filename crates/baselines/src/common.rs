//! Shared machinery for the baseline runtimes: flat heaps over the chunk store, the
//! forwarding-resolution read barrier, root registries, and a plain semispace collector.

use hh_objmodel::{Chunk, ChunkId, ChunkStore, Header, ObjPtr};
use hh_sched::{EvacEngine, EvacZone};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Raw owner id used for the shared global heap of the parallel baselines.
pub const OWNER_GLOBAL: u32 = u32::MAX - 1;

/// A flat (non-hierarchical) heap: a bag of chunks with one allocation cursor per lane.
///
/// Lanes give the parallel baselines per-worker allocation buffers (the paper's
/// `mlton-spoonhower` supports parallel allocation) while keeping a single logical heap
/// that is collected as a whole.
pub struct FlatHeap {
    store: Arc<ChunkStore>,
    owner_raw: u32,
    lanes: Vec<Mutex<Option<ChunkId>>>,
    chunks: Mutex<Vec<ChunkId>>,
    allocated_words: AtomicUsize,
}

impl FlatHeap {
    /// Creates a flat heap with `lanes` independent allocation cursors.
    pub fn new(store: Arc<ChunkStore>, owner_raw: u32, lanes: usize) -> FlatHeap {
        FlatHeap {
            store,
            owner_raw,
            lanes: (0..lanes.max(1)).map(|_| Mutex::new(None)).collect(),
            chunks: Mutex::new(Vec::new()),
            allocated_words: AtomicUsize::new(0),
        }
    }

    /// The raw owner id stamped on this heap's chunks.
    pub fn owner_raw(&self) -> u32 {
        self.owner_raw
    }

    /// Words allocated since creation or the last [`FlatHeap::replace_chunks`].
    pub fn allocated_words(&self) -> usize {
        self.allocated_words.load(Ordering::Relaxed)
    }

    /// Allocates an object in lane `lane`.
    ///
    /// Objects larger than the store's default chunk size get a dedicated chunk
    /// without displacing the lane's current bump chunk, so a large-object detour
    /// does not abandon the partially filled chunk that subsequent small objects
    /// still fit in.
    pub fn alloc(&self, lane: usize, header: Header) -> ObjPtr {
        let lane = lane % self.lanes.len();
        let size = header.size_words();
        let mut cur = self.lanes[lane].lock();
        if self.store.needs_dedicated_chunk(header) {
            let (chunk, ptr) = self.store.alloc_dedicated(self.owner_raw, header);
            self.chunks.lock().push(chunk.id());
            self.allocated_words.fetch_add(size, Ordering::Relaxed);
            return ptr;
        }
        if let Some(id) = *cur {
            let chunk = self.store.chunk(id);
            if let Some(ptr) = self.store.alloc_in_chunk(chunk, header) {
                self.allocated_words.fetch_add(size, Ordering::Relaxed);
                return ptr;
            }
        }
        let chunk = self.store.alloc_chunk(self.owner_raw, size);
        let ptr = self
            .store
            .alloc_in_chunk(&chunk, header)
            .expect("fresh chunk too small");
        *cur = Some(chunk.id());
        self.chunks.lock().push(chunk.id());
        self.allocated_words.fetch_add(size, Ordering::Relaxed);
        ptr
    }

    /// Snapshot of every chunk currently belonging to this heap.
    pub fn chunks(&self) -> Vec<ChunkId> {
        self.chunks.lock().clone()
    }

    /// Replaces the chunk list after a collection and resets all allocation cursors.
    /// Returns the old chunk list.
    pub fn replace_chunks(&self, new_chunks: Vec<ChunkId>, new_words: usize) -> Vec<ChunkId> {
        let mut chunks = self.chunks.lock();
        let old = std::mem::replace(&mut *chunks, new_chunks);
        for lane in &self.lanes {
            *lane.lock() = None;
        }
        self.allocated_words.store(new_words, Ordering::Relaxed);
        old
    }

    /// The chunk store this heap allocates from.
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// Retires every chunk of this heap and resets its allocation state. Used by the
    /// runtimes to dispose of a completed run's memory before recycling (memory v2).
    pub fn dispose(&self) {
        for c in self.replace_chunks(Vec::new(), 0) {
            self.store.retire_chunk(c);
        }
    }
}

/// Run-boundary bookkeeping shared by the baseline runtimes (memory v2).
///
/// The flat heaps of a completed run are unreachable once `run` has returned, but
/// stale `ObjPtr`s in that run's Rust locals resolved through forwarding until then —
/// so disposal (retire + reclaim into the store's free lists) happens at the *next*
/// run start, and only once no other run is active. This mirrors `HhRuntime`'s reuse
/// horizon; see DESIGN.md §5.
#[derive(Default)]
pub struct RunEpoch {
    state: Mutex<EpochState>,
}

#[derive(Default)]
struct EpochState {
    /// Number of `run` calls currently executing.
    active: usize,
    /// True once at least one run has completed since the last disposal.
    completed: bool,
}

impl RunEpoch {
    /// Creates the bookkeeping for a freshly constructed runtime.
    pub fn new() -> RunEpoch {
        RunEpoch::default()
    }

    /// Marks a run as starting. If no other run is active and a previous run has
    /// completed, `dispose` runs first — the runtime retires its heaps' chunks and
    /// reclaims the store's quarantine there. The returned guard marks the run as
    /// completed when dropped, so a panicking run closure cannot leave the epoch
    /// permanently active (which would disable recycling for good).
    #[must_use = "dropping the guard ends the run"]
    pub fn begin(&self, dispose: impl FnOnce()) -> RunEpochGuard<'_> {
        let mut st = self.state.lock();
        if st.active == 0 && st.completed {
            dispose();
            st.completed = false;
        }
        st.active += 1;
        RunEpochGuard { epoch: self }
    }
}

/// Ends a run on drop; see [`RunEpoch::begin`].
pub struct RunEpochGuard<'a> {
    epoch: &'a RunEpoch,
}

impl Drop for RunEpochGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.epoch.state.lock();
        st.active -= 1;
        st.completed = true;
    }
}

/// Registers one baseline `run` with the chunk store's epoch registry
/// ([`hh_objmodel::RunEpochs`]) for its duration.
///
/// The baselines keep the quiescent full-dispose policy above (their flat heaps are
/// shared across runs, so per-run disposal does not apply), but registering the run
/// buys two things under overlapping load: the store's `active_runs_peak` gauge
/// reports the overlap `serve` actually achieved, and dropping the guard advances
/// the min-active-epoch watermark and drains the eligible quarantine — so chunks
/// retired by *mid-run collections* recycle as soon as every run alive at their
/// retirement has ended, instead of waiting for global quiescence. (Baseline
/// allocations are untagged, so retirees carry the conservative latest-issued
/// stamp; see `ChunkStore::retire_chunk`.)
pub struct StoreEpochGuard<'a> {
    store: &'a ChunkStore,
    epoch: u64,
}

impl<'a> StoreEpochGuard<'a> {
    /// Draws a fresh run epoch from `store`'s registry.
    #[must_use = "dropping the guard ends the run's epoch"]
    pub fn begin(store: &'a ChunkStore) -> StoreEpochGuard<'a> {
        let epoch = store.run_epochs().begin();
        StoreEpochGuard { store, epoch }
    }
}

impl Drop for StoreEpochGuard<'_> {
    fn drop(&mut self) {
        self.store.run_epochs().end(self.epoch);
        self.store.reclaim_watermark();
    }
}

/// Follows an object's forwarding chain to its newest copy.
///
/// The baselines install forwarding pointers in two situations — semispace collection
/// and (for the DLG design) promotion to the global heap — and every mutable access
/// resolves through this barrier so that stale pointers held in Rust locals stay
/// correct. This is the moral equivalent of the read barrier the MultiMLton work
/// worries about (§6 of the paper); its cost is one predictable branch per access.
#[inline]
pub fn resolve(store: &ChunkStore, mut obj: ObjPtr) -> ObjPtr {
    loop {
        let v = store.view(obj);
        if !v.has_fwd() {
            return obj;
        }
        obj = v.fwd();
    }
}

/// As [`resolve`], but counts forwarding hops and **path-compresses** chains of two
/// or more hops via [`ChunkStore::compress_fwd_chain`], so the amortized barrier
/// cost stays O(1) for objects that have been copied many times (promotion v2
/// counter parity with the hierarchical runtime; the lock-freedom argument lives on
/// that method and `ObjView::compress_fwd`).
#[inline]
pub fn resolve_tracked(
    store: &ChunkStore,
    counters: &crate::counters::Counters,
    obj: ObjPtr,
) -> ObjPtr {
    let mut cur = obj;
    let mut hops = 0u64;
    loop {
        let v = store.view(cur);
        if !v.has_fwd() {
            break;
        }
        cur = v.fwd();
        hops += 1;
    }
    if hops > 0 {
        counters.fwd_hops.fetch_add(hops, Ordering::Relaxed);
        if hops >= 2 {
            let done = store.compress_fwd_chain(obj, cur);
            if done > 0 {
                counters.fwd_compressions.fetch_add(done, Ordering::Relaxed);
            }
        }
    }
    cur
}

/// As [`resolve_tracked`], but also counts the resolution in the bulk-operation
/// statistics.
///
/// Every baseline bulk operation resolves forwarding through this wrapper, so the
/// `bulk_master_lookups` counter is a measurement: if an implementation regressed to
/// per-element resolution, the counter would expose it.
#[inline]
pub fn resolve_counted(
    store: &ChunkStore,
    counters: &crate::counters::Counters,
    obj: ObjPtr,
) -> ObjPtr {
    counters.bulk_master_lookups.fetch_add(1, Ordering::Relaxed);
    resolve_tracked(store, counters, obj)
}

// ---------------------------------------------------------------------------
// Shared bulk-operation bodies (ParCtx v2).
//
// All three baselines implement the bulk field operations the same way: one optional
// safepoint poll, one counted forwarding resolution per object operand, then a straight
// field loop over the view. `sp` is `None` for the sequential baseline (it has no
// safepoint protocol) and `Some` for the parallel ones. Not polling inside the loop is
// safe for the STW designs — a collection cannot start until every thread parks at a
// poll, so no forwarding pointer can appear mid-slice — and for DLG it has exactly the
// scalar loop's semantics with respect to concurrent promotion (the scalar path also
// resolves once before each access).
// ---------------------------------------------------------------------------

use crate::counters::Counters;
use hh_sched::Safepoints;

/// Shared body of `read_imm_bulk`: immutable fields never change and never need the
/// forwarding chain, so a single view resolution amortizes the whole slice.
pub(crate) fn bulk_read_imm(
    store: &ChunkStore,
    counters: &Counters,
    obj: ObjPtr,
    start: usize,
    out: &mut [u64],
) {
    if out.is_empty() {
        return;
    }
    counters.record_bulk(out.len() as u64);
    let v = store.view(obj);
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = v.field(start + k);
    }
}

/// Shared body of `read_mut_bulk`.
pub(crate) fn bulk_read_mut(
    store: &ChunkStore,
    counters: &Counters,
    sp: Option<&Safepoints>,
    obj: ObjPtr,
    start: usize,
    out: &mut [u64],
) {
    if out.is_empty() {
        return;
    }
    if let Some(sp) = sp {
        sp.poll();
    }
    counters.record_bulk(out.len() as u64);
    let obj = resolve_counted(store, counters, obj);
    let v = store.view(obj);
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = v.field(start + k);
    }
}

/// Shared body of `write_nonptr_bulk`.
pub(crate) fn bulk_write_nonptr(
    store: &ChunkStore,
    counters: &Counters,
    sp: Option<&Safepoints>,
    obj: ObjPtr,
    start: usize,
    vals: &[u64],
) {
    if vals.is_empty() {
        return;
    }
    if let Some(sp) = sp {
        sp.poll();
    }
    counters.record_bulk(vals.len() as u64);
    let obj = resolve_counted(store, counters, obj);
    let v = store.view(obj);
    for (k, &val) in vals.iter().enumerate() {
        v.set_field(start + k, val);
    }
}

/// Shared body of `fill_nonptr`.
pub(crate) fn bulk_fill_nonptr(
    store: &ChunkStore,
    counters: &Counters,
    sp: Option<&Safepoints>,
    obj: ObjPtr,
    start: usize,
    len: usize,
    val: u64,
) {
    if len == 0 {
        return;
    }
    if let Some(sp) = sp {
        sp.poll();
    }
    counters.record_bulk(len as u64);
    let obj = resolve_counted(store, counters, obj);
    let v = store.view(obj);
    for k in 0..len {
        v.set_field(start + k, val);
    }
}

/// Shared body of `copy_nonptr`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bulk_copy_nonptr(
    store: &ChunkStore,
    counters: &Counters,
    sp: Option<&Safepoints>,
    src: ObjPtr,
    src_start: usize,
    dst: ObjPtr,
    dst_start: usize,
    len: usize,
) {
    if len == 0 {
        return;
    }
    if let Some(sp) = sp {
        sp.poll();
    }
    counters.record_bulk(len as u64);
    let src = resolve_counted(store, counters, src);
    let dst = resolve_counted(store, counters, dst);
    let sv = store.view(src);
    let dv = store.view(dst);
    for k in 0..len {
        dv.set_field(dst_start + k, sv.field(src_start + k));
    }
}

/// A registry of per-task shadow stacks, so a collector can find every root.
#[derive(Default)]
pub struct RootRegistry {
    next_id: AtomicU64,
    sets: Mutex<HashMap<u64, Arc<Mutex<Vec<ObjPtr>>>>>,
}

impl RootRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new task's root set and returns its id plus the shared vector.
    pub fn register(&self) -> (u64, Arc<Mutex<Vec<ObjPtr>>>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(Mutex::new(Vec::new()));
        self.sets.lock().insert(id, Arc::clone(&set));
        (id, set)
    }

    /// Removes a task's root set.
    pub fn unregister(&self, id: u64) {
        self.sets.lock().remove(&id);
    }

    /// Applies `f` to every registered root slot (used by collectors to trace and
    /// rewrite roots). The world must be stopped while this runs.
    pub fn for_each_root_mut(&self, mut f: impl FnMut(&mut ObjPtr)) {
        let sets = self.sets.lock();
        for set in sets.values() {
            let mut roots = set.lock();
            for r in roots.iter_mut() {
                f(r);
            }
        }
    }

    /// Number of registered root sets (diagnostics).
    pub fn len(&self) -> usize {
        self.sets.lock().len()
    }

    /// True if no root set is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of a semispace collection.
pub struct CollectOutcome {
    /// Chunks of the new from-space (the to-space that was just filled).
    pub new_chunks: Vec<ChunkId>,
    /// Words of live data copied (survivors; excludes evacuation-race waste).
    pub copied_words: usize,
    /// Words occupying the to-space (survivors plus race-loser fillers) — what the
    /// heap's allocation volume should restart from.
    pub occupied_words: usize,
    /// Scan blocks stolen between team members (0 for a solo collection).
    pub steal_blocks: u64,
}

/// A plain (non-hierarchical) semispace collection over an explicit zone, run solo
/// by the calling thread. Shorthand for [`par_semispace_collect`] without a draft.
pub fn semispace_collect(
    store: &Arc<ChunkStore>,
    owner_raw: u32,
    zone: &[ChunkId],
    registry: &RootRegistry,
    extra_roots: &mut [ObjPtr],
    chunk_words_hint: usize,
) -> CollectOutcome {
    par_semispace_collect(
        store,
        owner_raw,
        zone,
        registry,
        extra_roots,
        chunk_words_hint,
        None,
    )
}

/// The flat slot-to-heap mapping for the shared evacuation engine
/// ([`hh_sched::EvacEngine`], GC v3): a single zone slot backed by one owner's
/// to-space. The member body, span pack/steal loop, CAS forwarding race, and
/// idle-termination protocol all live in `hh_sched::evac` — shared verbatim
/// with the hierarchical collector, so a protocol fix lands in both at once.
struct FlatZone {
    store: Arc<ChunkStore>,
    owner_raw: u32,
    chunk_words_hint: usize,
}

impl EvacZone for FlatZone {
    fn n_slots(&self) -> usize {
        1
    }

    fn alloc_dedicated(&self, _slot: u16, header: Header) -> (Arc<Chunk>, ObjPtr) {
        self.store.alloc_dedicated(self.owner_raw, header)
    }

    fn alloc_chunk(&self, _slot: u16, min_words: usize) -> Arc<Chunk> {
        self.store
            .alloc_chunk(self.owner_raw, min_words.max(self.chunk_words_hint))
    }
}

/// A plain (non-hierarchical) semispace collection over an explicit zone,
/// optionally run on a **GC team** (GC v2): `draft = Some((safepoints, helpers))`
/// offers the collection to up to `helpers` threads parked at the safepoint — the
/// stop-the-world baselines' workers stop sleeping through the pause and collect
/// instead, so the fig12/fig13 comparisons measure parallel collectors on both
/// sides of the hierarchical-vs-flat divide.
///
/// `zone` is the set of chunks being evacuated; objects outside it are left alone
/// (membership is decided by epoch-tagged chunk metadata, not hash sets). Roots are
/// rewritten in place via `registry`, plus any extra roots supplied in
/// `extra_roots`. The caller must have stopped the world; drafted helpers are
/// parked mutators, so they are quiescent by construction.
///
/// The trigger is **pre-registered** at engine construction — before the
/// pause-work offer is published — and non-idle throughout seeding, so a
/// drafted helper that joins first and finds no work can never observe an
/// all-idle team and finish the collection before the roots have seeded the
/// wavefront (the PR-5 race, now guarded in exactly one place:
/// `hh_sched::evac`).
pub fn par_semispace_collect(
    store: &Arc<ChunkStore>,
    owner_raw: u32,
    zone: &[ChunkId],
    registry: &RootRegistry,
    extra_roots: &mut [ObjPtr],
    chunk_words_hint: usize,
    draft: Option<(&Safepoints, usize)>,
) -> CollectOutcome {
    let epoch = store.next_gc_epoch();
    for &c in zone {
        store.chunk(c).set_gc_from_space(epoch, 0);
    }
    let team = 1 + draft.map_or(0, |(_, helpers)| helpers);
    let engine = Arc::new(EvacEngine::new(
        FlatZone {
            store: Arc::clone(store),
            owner_raw,
            chunk_words_hint,
        },
        Arc::clone(store),
        epoch,
        team,
        false,
    ));
    // Slot assignment for drafted helpers (slot 0 is the triggering thread).
    let next_slot = Arc::new(AtomicUsize::new(1));
    let drafted = match draft {
        Some((safepoints, helpers)) if helpers > 0 => {
            let offer_engine = Arc::clone(&engine);
            let offer_slot = Arc::clone(&next_slot);
            safepoints.begin_pause_work(Arc::new(move || {
                let slot = offer_slot.fetch_add(1, Ordering::Relaxed);
                offer_engine.run_helper(slot);
            }));
            Some(safepoints)
        }
        _ => None,
    };
    engine.run_trigger(|fwd| {
        registry.for_each_root_mut(|r| *r = fwd(*r));
        for r in extra_roots.iter_mut() {
            *r = fwd(*r);
        }
    });
    engine.await_team();
    if let Some(safepoints) = drafted {
        safepoints.end_pause_work();
    }
    let outcome = engine.merge();
    for c in zone {
        // A zone chunk whose tag now reads `ToSpace` held one large object and
        // was promoted in place — it is part of `new_chunks`, not garbage.
        if matches!(
            store.chunk(*c).gc_state(epoch),
            hh_objmodel::ChunkGcState::ToSpace(_)
        ) {
            continue;
        }
        store.retire_chunk(*c);
    }
    let (new_chunks, occupied_words) = outcome
        .per_slot
        .into_iter()
        .next()
        .expect("flat zone has exactly one slot");
    CollectOutcome {
        new_chunks,
        copied_words: outcome.copied_words as usize,
        occupied_words,
        steal_blocks: outcome.steal_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_objmodel::ObjKind;

    fn setup() -> (Arc<ChunkStore>, FlatHeap) {
        let store = Arc::new(ChunkStore::new(256));
        let heap = FlatHeap::new(Arc::clone(&store), OWNER_GLOBAL, 2);
        (store, heap)
    }

    #[test]
    fn flat_heap_allocates_across_lanes() {
        let (store, heap) = setup();
        let h = Header::new(3, 0, ObjKind::Tuple);
        let a = heap.alloc(0, h);
        let b = heap.alloc(1, h);
        assert_ne!(a, b);
        assert_eq!(store.view(a).n_fields(), 3);
        assert_eq!(heap.allocated_words(), 2 * h.size_words());
        assert!(!heap.chunks().is_empty());
    }

    #[test]
    fn resolve_follows_forwarding_chain() {
        let (store, heap) = setup();
        let h = Header::new(1, 0, ObjKind::Ref);
        let a = heap.alloc(0, h);
        let b = heap.alloc(0, h);
        let c = heap.alloc(0, h);
        store.view(a).set_fwd(b);
        store.view(b).set_fwd(c);
        assert_eq!(resolve(&store, a), c);
        assert_eq!(resolve(&store, c), c);
    }

    #[test]
    fn resolve_tracked_counts_hops_and_compresses_long_chains() {
        use crate::counters::Counters;
        use std::sync::atomic::Ordering;
        let (store, heap) = setup();
        let h = Header::new(1, 0, ObjKind::Ref);
        let a = heap.alloc(0, h);
        let b = heap.alloc(0, h);
        let c = heap.alloc(0, h);
        store.view(a).set_fwd(b);
        store.view(b).set_fwd(c);
        let counters = Counters::default();
        assert_eq!(resolve_tracked(&store, &counters, a), c);
        assert_eq!(counters.fwd_hops.load(Ordering::Relaxed), 2);
        assert_eq!(counters.fwd_compressions.load(Ordering::Relaxed), 1);
        // The chain was short-cut: a now points straight at c…
        assert_eq!(store.view(a).fwd(), c);
        // …so the next resolution walks a single hop and compresses nothing.
        assert_eq!(resolve_tracked(&store, &counters, a), c);
        assert_eq!(counters.fwd_hops.load(Ordering::Relaxed), 3);
        assert_eq!(counters.fwd_compressions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn root_registry_registers_and_iterates() {
        let reg = RootRegistry::new();
        assert!(reg.is_empty());
        let (id1, set1) = reg.register();
        let (_id2, set2) = reg.register();
        set1.lock().push(ObjPtr::new(hh_objmodel::ChunkId(0), 4));
        set2.lock().push(ObjPtr::new(hh_objmodel::ChunkId(1), 8));
        let mut seen = 0;
        reg.for_each_root_mut(|_| seen += 1);
        assert_eq!(seen, 2);
        reg.unregister(id1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn semispace_collect_preserves_rooted_graph_and_drops_garbage() {
        let (store, heap) = setup();
        // Build: root cons-list of 5 cells, plus 100 garbage arrays.
        let mut list = ObjPtr::NULL;
        for i in 0..5u64 {
            let cell = heap.alloc(0, Header::new(3, 2, ObjKind::Cons));
            let v = store.view(cell);
            v.set_field_ptr(0, ObjPtr::NULL);
            v.set_field_ptr(1, list);
            v.set_field(2, i);
            list = cell;
        }
        for _ in 0..100 {
            heap.alloc(0, Header::new(50, 0, ObjKind::ArrayData));
        }
        let registry = RootRegistry::new();
        let (_id, roots) = registry.register();
        roots.lock().push(list);

        let zone = heap.chunks();
        let outcome = semispace_collect(&store, OWNER_GLOBAL, &zone, &registry, &mut [], 256);
        heap.replace_chunks(outcome.new_chunks, outcome.copied_words);

        // Live data: 5 cells of 5 words each.
        assert_eq!(outcome.copied_words, 5 * 5);
        // Walk through the updated root.
        let new_root = roots.lock()[0];
        let mut cur = new_root;
        let mut tags = Vec::new();
        while !cur.is_null() {
            let v = store.view(cur);
            tags.push(v.field(2));
            cur = v.field_ptr(1);
        }
        assert_eq!(tags, vec![4, 3, 2, 1, 0]);
        // The stale pointer also resolves to the same data through forwarding.
        let resolved = resolve(&store, list);
        assert_eq!(store.view(resolved).field(2), 4);
    }

    #[test]
    fn collect_twice_is_stable() {
        let (store, heap) = setup();
        let obj = heap.alloc(0, Header::new(3, 0, ObjKind::ArrayData));
        store.view(obj).set_field(1, 42);
        let registry = RootRegistry::new();
        let (_id, roots) = registry.register();
        roots.lock().push(obj);
        for _ in 0..2 {
            let zone = heap.chunks();
            let outcome = semispace_collect(&store, OWNER_GLOBAL, &zone, &registry, &mut [], 256);
            heap.replace_chunks(outcome.new_chunks, outcome.copied_words);
            assert_eq!(outcome.copied_words, 5);
        }
        let cur = roots.lock()[0];
        assert_eq!(store.view(cur).field(1), 42);
    }
}
