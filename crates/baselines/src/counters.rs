//! Statistics counters shared by the baseline runtimes.

use hh_api::{LatencyRecorder, RunStats};
use hh_objmodel::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic statistics counters for a baseline runtime.
#[derive(Default, Debug)]
pub struct Counters {
    /// Nanoseconds spent collecting.
    pub gc_nanos: AtomicU64,
    /// Number of collections.
    pub gc_count: AtomicU64,
    /// Number of stop-the-world pauses.
    pub world_stops: AtomicU64,
    /// Words allocated by mutators.
    pub allocated_words: AtomicU64,
    /// Transitive promotion passes to the global heap (DLG baseline).
    pub promotions: AtomicU64,
    /// Objects promoted to the global heap (DLG baseline).
    pub promoted_objects: AtomicU64,
    /// Words promoted to the global heap (DLG baseline).
    pub promoted_words: AtomicU64,
    /// Forwarding hops walked by the read barrier (`common::resolve_tracked`).
    pub fwd_hops: AtomicU64,
    /// Forwarding hops short-cut by path compression (chains of length ≥ 2).
    pub fwd_compressions: AtomicU64,
    /// Words copied by collections.
    pub gc_copied_words: AtomicU64,
    /// Bulk field operations executed.
    pub bulk_ops: AtomicU64,
    /// Words moved by bulk field operations.
    pub bulk_words: AtomicU64,
    /// Forwarding resolutions performed inside bulk operations (at most one per object
    /// operand).
    pub bulk_master_lookups: AtomicU64,
    /// Collections run in team mode (safepoint-parked workers were offered the
    /// collection; participation is best-effort — see `gc_steal_blocks`; GC v2).
    pub gc_parallel_collections: AtomicU64,
    /// Scan blocks stolen between GC team members during collections.
    pub gc_steal_blocks: AtomicU64,
    /// Longest single collection pause observed, in nanoseconds (`fetch_max`).
    pub gc_max_pause_ns: AtomicU64,
    /// One sample per stop-the-world pause; feeds the GC pause CDF in
    /// [`RunStats`] (same recorder the hierarchical runtime uses, so the
    /// `repro gc` table contrasts like with like).
    pub gc_pauses: parking_lot::Mutex<LatencyRecorder>,
}

impl Counters {
    /// Adds `d` to the GC time.
    pub fn add_gc_time(&self, d: Duration) {
        self.gc_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one stop-the-world pause: high-water mark plus a CDF sample.
    pub fn record_gc_pause(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        self.gc_max_pause_ns.fetch_max(ns, Ordering::Relaxed);
        self.gc_pauses.lock().record_ns(ns);
    }

    /// Snapshot into the common [`RunStats`] format, merging in the chunk store's
    /// memory accounting.
    pub fn snapshot(&self, store: &StoreStats, heaps: u64) -> RunStats {
        let pauses = self.gc_pauses.lock().summary();
        RunStats {
            gc_time: Duration::from_nanos(self.gc_nanos.load(Ordering::Relaxed)),
            gc_count: self.gc_count.load(Ordering::Relaxed),
            world_stops: self.world_stops.load(Ordering::Relaxed),
            allocated_words: self.allocated_words.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            promoted_objects: self.promoted_objects.load(Ordering::Relaxed),
            promoted_words: self.promoted_words.load(Ordering::Relaxed),
            fwd_hops: self.fwd_hops.load(Ordering::Relaxed),
            fwd_compressions: self.fwd_compressions.load(Ordering::Relaxed),
            heaps_created: heaps,
            // The baselines have no lazy heap policy; scheduler counters are overlaid
            // from the pool by each runtime's `Runtime::stats`.
            heaps_elided: 0,
            sched_steals: 0,
            sched_parks: 0,
            sched_wakes: 0,
            peak_live_words: store.peak_words as u64,
            gc_copied_words: self.gc_copied_words.load(Ordering::Relaxed),
            bulk_ops: self.bulk_ops.load(Ordering::Relaxed),
            bulk_words: self.bulk_words.load(Ordering::Relaxed),
            bulk_master_lookups: self.bulk_master_lookups.load(Ordering::Relaxed),
            // Flat heaps never collect subtrees; the store lifecycle fields apply to
            // every runtime.
            subtree_collections: 0,
            gc_parallel_collections: self.gc_parallel_collections.load(Ordering::Relaxed),
            gc_steal_blocks: self.gc_steal_blocks.load(Ordering::Relaxed),
            gc_max_pause_ns: self.gc_max_pause_ns.load(Ordering::Relaxed),
            gc_pause_count: pauses.count,
            gc_pause_p50_ns: pauses.p50_ns,
            gc_pause_p99_ns: pauses.p99_ns,
            gc_pause_p999_ns: pauses.p999_ns,
            // The baselines only collect stop-the-world.
            gc_increments: 0,
            gc_incremental_collections: 0,
            chunks_created: store.chunks_created as u64,
            chunks_recycled: store.chunks_recycled as u64,
            alloc_cache_hits: store.alloc_cache_hits as u64,
            live_words: store.live_words as u64,
            free_words: store.free_words as u64,
            epoch_reclaims: store.epoch_reclaims as u64,
            active_runs_peak: store.active_runs_peak as u64,
            quarantine_lag_words: store.quarantined_words as u64,
        }
    }

    /// Records one bulk operation moving `words` words. Forwarding resolutions are
    /// counted separately, at the `resolve` call sites themselves (see
    /// `common::resolve_counted`), so `bulk_master_lookups` measures what actually
    /// happened rather than restating what the implementation intends.
    pub fn record_bulk(&self, words: u64) {
        self.bulk_ops.fetch_add(1, Ordering::Relaxed);
        self.bulk_words.fetch_add(words, Ordering::Relaxed);
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        for c in [
            &self.gc_nanos,
            &self.gc_count,
            &self.world_stops,
            &self.allocated_words,
            &self.promotions,
            &self.promoted_objects,
            &self.promoted_words,
            &self.fwd_hops,
            &self.fwd_compressions,
            &self.gc_copied_words,
            &self.bulk_ops,
            &self.bulk_words,
            &self.bulk_master_lookups,
            &self.gc_parallel_collections,
            &self.gc_steal_blocks,
            &self.gc_max_pause_ns,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.gc_pauses.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = Counters::default();
        c.allocated_words.fetch_add(5, Ordering::Relaxed);
        c.world_stops.fetch_add(2, Ordering::Relaxed);
        let store = StoreStats {
            peak_words: 9,
            chunks_recycled: 4,
            free_words: 11,
            ..Default::default()
        };
        let s = c.snapshot(&store, 3);
        assert_eq!(s.allocated_words, 5);
        assert_eq!(s.world_stops, 2);
        assert_eq!(s.peak_live_words, 9);
        assert_eq!(s.heaps_created, 3);
        assert_eq!(s.chunks_recycled, 4);
        assert_eq!(s.free_words, 11);
        c.reset();
        assert_eq!(c.snapshot(&StoreStats::default(), 0).allocated_words, 0);
    }
}
