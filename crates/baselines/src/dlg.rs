//! A Doligez–Leroy–Gonthier / Manticore-style baseline: per-worker local heaps, a
//! shared global heap, and eager promotion of data that escapes a local heap.
//!
//! The policy modelled here (see §6 of the paper and DESIGN.md):
//!
//! * ordinary allocation goes to the allocating *worker's* local heap;
//! * storing a pointer into an object that lives in the global heap first promotes the
//!   pointee — and everything reachable from it — into the global heap (the DLG
//!   invariant forbids global→local pointers);
//! * tasks created by a *steal* allocate directly in the global heap, modelling
//!   Manticore's promotion of data communicated between processors (task results,
//!   scheduler cells). The volume of such allocation is reported as promotion volume,
//!   which is what the paper's §4.4 measurement ("manticore promoted nearly 340 MB of
//!   data on `map`") compares against.
//! * collection is stop-the-world over all heaps (a simplification — Manticore collects
//!   local heaps independently — that does not affect the promotion-cost comparison this
//!   baseline exists for; the paper does not report Manticore GC percentages either).

use crate::common::{
    par_semispace_collect, resolve_tracked, FlatHeap, RootRegistry, RunEpoch, OWNER_GLOBAL,
};
use crate::counters::Counters;
use hh_api::{ParCtx, RunStats, Runtime};
use hh_objmodel::{ChunkStore, Header, ObjKind, ObjPtr};
use hh_sched::{Pool, Safepoints, Worker};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct DlgInner {
    pub(crate) store: Arc<ChunkStore>,
    pub(crate) global: FlatHeap,
    pub(crate) locals: Vec<FlatHeap>,
    pub(crate) roots: RootRegistry,
    pub(crate) safepoints: Arc<Safepoints>,
    pub(crate) pool: Pool,
    pub(crate) counters: Counters,
    pub(crate) epoch: RunEpoch,
    pub(crate) promote_lock: Mutex<()>,
    pub(crate) gc_threshold_words: usize,
    pub(crate) chunk_words: usize,
    pub(crate) enable_gc: bool,
}

/// The DLG / Manticore-style baseline runtime.
pub struct DlgRuntime {
    inner: Arc<DlgInner>,
}

impl DlgRuntime {
    /// Creates a runtime with `n_workers` workers and default memory parameters.
    pub fn with_workers(n_workers: usize) -> DlgRuntime {
        Self::with_params(n_workers, 8 * 1024, 4 * 1024 * 1024, true)
    }

    /// Creates a runtime with explicit chunk size and GC threshold (in words).
    pub fn with_params(
        n_workers: usize,
        chunk_words: usize,
        gc_threshold_words: usize,
        enable_gc: bool,
    ) -> DlgRuntime {
        let n = n_workers.max(1);
        let store = Arc::new(ChunkStore::new(chunk_words));
        let global = FlatHeap::new(Arc::clone(&store), OWNER_GLOBAL, n);
        let locals = (0..n)
            .map(|w| FlatHeap::new(Arc::clone(&store), w as u32, 1))
            .collect();
        let safepoints = Arc::new(Safepoints::new());
        for _ in 0..n {
            safepoints.register();
        }
        let pool = Pool::new(n);
        {
            let sp = Arc::clone(&safepoints);
            pool.set_idle_hook(move |_| sp.poll());
        }
        // Parking interplay: see `StwRuntime::with_params` — a requested collection
        // wakes pool-parked workers so they reach the safepoint promptly.
        {
            let waker = pool.waker();
            safepoints.set_wake_hook(move || waker.wake_all());
        }
        DlgRuntime {
            inner: Arc::new(DlgInner {
                store,
                global,
                locals,
                roots: RootRegistry::new(),
                safepoints,
                pool,
                counters: Counters::default(),
                epoch: RunEpoch::new(),
                promote_lock: Mutex::new(()),
                gc_threshold_words,
                chunk_words,
                enable_gc,
            }),
        }
    }
}

impl DlgInner {
    fn total_allocated_words(&self) -> usize {
        self.global.allocated_words()
            + self
                .locals
                .iter()
                .map(|h| h.allocated_words())
                .sum::<usize>()
    }

    fn is_global(&self, obj: ObjPtr) -> bool {
        self.store.chunk_owner(obj) == OWNER_GLOBAL
    }

    /// Transitively copies `root` into the global heap, installing forwarding pointers,
    /// and returns the address of the global copy. Serialized by `promote_lock`.
    fn promote_to_global(&self, lane: usize, root: ObjPtr) -> ObjPtr {
        if root.is_null() {
            return ObjPtr::NULL;
        }
        let _guard = self.promote_lock.lock();
        self.counters.promotions.fetch_add(1, Ordering::Relaxed);
        let store = &self.store;
        let mut pending: Vec<ObjPtr> = Vec::new();

        let forward = |cur_in: ObjPtr, pending: &mut Vec<ObjPtr>, this: &DlgInner| -> ObjPtr {
            if cur_in.is_null() {
                return ObjPtr::NULL;
            }
            let mut cur = cur_in;
            loop {
                if this.is_global(cur) {
                    return cur;
                }
                let v = store.view(cur);
                if v.has_fwd() {
                    cur = v.fwd();
                    continue;
                }
                let header = v.header();
                let copy = this.global.alloc(lane, header);
                let cv = store.view(copy);
                v.set_fwd(copy);
                for f in 0..header.n_fields() {
                    cv.set_field(f, v.field(f));
                }
                this.counters
                    .promoted_objects
                    .fetch_add(1, Ordering::Relaxed);
                this.counters
                    .promoted_words
                    .fetch_add(header.size_words() as u64, Ordering::Relaxed);
                pending.push(copy);
                return copy;
            }
        };

        let result = forward(root, &mut pending, self);
        while let Some(copy) = pending.pop() {
            let v = store.view(copy);
            for f in 0..v.n_ptr() {
                let old = v.field_ptr(f);
                let new = forward(old, &mut pending, self);
                v.set_field_ptr(f, new);
            }
        }
        result
    }

    fn safepoint_and_maybe_collect(&self) {
        self.safepoints.poll();
        if !self.enable_gc || self.total_allocated_words() < self.gc_threshold_words {
            return;
        }
        let collected = self.safepoints.stop_the_world(|| {
            if self.total_allocated_words() < self.gc_threshold_words {
                return;
            }
            let start = Instant::now();
            let mut zone = self.global.chunks();
            for local in &self.locals {
                zone.extend(local.chunks());
            }
            // GC v2: draft the safepoint-parked workers into the collection team
            // (same parallel evacuation as the hierarchical and STW collectors).
            let helpers = self.pool.n_workers().saturating_sub(1);
            let outcome = par_semispace_collect(
                &self.store,
                OWNER_GLOBAL,
                &zone,
                &self.roots,
                &mut [],
                self.chunk_words,
                Some((&self.safepoints, helpers)),
            );
            // Survivors all land in the global heap; local heaps restart empty.
            self.global
                .replace_chunks(outcome.new_chunks, outcome.occupied_words);
            for local in &self.locals {
                local.replace_chunks(Vec::new(), 0);
            }
            self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
            if helpers > 0 {
                self.counters
                    .gc_parallel_collections
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.counters
                .gc_steal_blocks
                .fetch_add(outcome.steal_blocks, Ordering::Relaxed);
            self.counters
                .gc_copied_words
                .fetch_add(outcome.copied_words as u64, Ordering::Relaxed);
            let pause = start.elapsed();
            self.counters.add_gc_time(pause);
            self.counters.record_gc_pause(pause);
        });
        if collected {
            self.counters.world_stops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-task context of the DLG baseline.
pub struct DlgCtx {
    inner: Arc<DlgInner>,
    worker: Worker,
    /// True if this task was obtained by a steal: its allocations go to the global heap
    /// (modelling promotion of communicated data).
    stolen: bool,
    root_id: u64,
    roots: Arc<Mutex<Vec<ObjPtr>>>,
}

impl DlgCtx {
    fn new(inner: Arc<DlgInner>, worker: Worker, stolen: bool) -> DlgCtx {
        let (root_id, roots) = inner.roots.register();
        DlgCtx {
            inner,
            worker,
            stolen,
            root_id,
            roots,
        }
    }
}

impl Drop for DlgCtx {
    fn drop(&mut self) {
        self.inner.roots.unregister(self.root_id);
    }
}

impl ParCtx for DlgCtx {
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
        self.inner.safepoint_and_maybe_collect();
        let header = Header::new(n_ptr + n_nonptr, n_ptr, kind);
        let words = header.size_words() as u64;
        self.inner
            .counters
            .allocated_words
            .fetch_add(words, Ordering::Relaxed);
        let lane = self.worker.index();
        if self.stolen {
            // Communicated-task allocation: counts as promotion volume.
            self.inner
                .counters
                .promoted_words
                .fetch_add(words, Ordering::Relaxed);
            self.inner
                .counters
                .promoted_objects
                .fetch_add(1, Ordering::Relaxed);
            self.inner.global.alloc(lane, header)
        } else {
            self.inner.locals[lane].alloc(0, header)
        }
    }

    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.store.view(obj).field(field)
    }

    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).field(field)
    }

    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).set_field(field, val);
    }

    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        let mut ptr = ptr;
        if !ptr.is_null() {
            ptr = resolve_tracked(&self.inner.store, &self.inner.counters, ptr);
            // The DLG invariant: no pointers from the global heap into a local heap.
            if self.inner.is_global(obj) && !self.inner.is_global(ptr) {
                ptr = self.inner.promote_to_global(self.worker.index(), ptr);
            }
        }
        self.inner.store.view(obj).set_field(field, ptr.to_bits());
    }

    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).cas_field(field, expected, new)
    }

    fn obj_len(&self, obj: ObjPtr) -> usize {
        self.inner.store.view(obj).n_fields()
    }

    // Bulk operations (ParCtx v2): shared bodies in `common` — one safepoint poll and
    // one forwarding resolution per operand (scalar-equivalent under concurrent
    // promotion; see `common`).

    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_imm(&self.inner.store, &self.inner.counters, obj, start, out);
    }

    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_mut(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            out,
        );
    }

    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        crate::common::bulk_write_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            vals,
        );
    }

    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        crate::common::bulk_fill_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            len,
            val,
        );
    }

    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        crate::common::bulk_copy_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            src,
            src_start,
            dst,
            dst_start,
            len,
        );
    }

    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.inner.safepoints.poll();
        let inner_a = Arc::clone(&self.inner);
        let inner_b = Arc::clone(&self.inner);
        self.worker.join_context(
            move || {
                let worker = Worker::current_in(&inner_a.pool)
                    .expect("task branch must execute on a pool worker");
                // The left branch always runs inline on the parent's worker.
                let ctx = DlgCtx::new(inner_a, worker, false);
                fa(&ctx)
            },
            // The scheduler's per-fork steal flag replaces the old worker-index
            // comparison: a stolen right branch models a task communicated between
            // processors, whose allocations Manticore promotes to the global heap.
            move |stolen| {
                let worker = Worker::current_in(&inner_b.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = DlgCtx::new(inner_b, worker, stolen);
                fb(&ctx)
            },
        )
    }

    fn pin(&self, obj: ObjPtr) {
        self.roots.lock().push(obj);
    }

    fn unpin(&self, obj: ObjPtr) {
        let mut roots = self.roots.lock();
        if let Some(pos) = roots.iter().rposition(|r| *r == obj) {
            roots.swap_remove(pos);
            return;
        }
        // A collection or promotion (DLG's promote-on-communication) between pin
        // and unpin rewrote the pin slot in place, and path compression can
        // shortcut either pointer past the other's hop. Forwarding is confluent,
        // so compare resolved masters rather than raw pointers to keep pin/unpin
        // balanced across collections.
        if obj.is_null() {
            return;
        }
        let master = crate::common::resolve(&self.inner.store, obj);
        if let Some(pos) = roots
            .iter()
            .rposition(|r| !r.is_null() && crate::common::resolve(&self.inner.store, *r) == master)
        {
            roots.swap_remove(pos);
        }
    }

    fn maybe_collect(&self) {
        self.inner.safepoint_and_maybe_collect();
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }
}

impl Runtime for DlgRuntime {
    type Ctx = DlgCtx;

    fn name(&self) -> &'static str {
        "dlg"
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        // Completed runs' memory is disposed of and recycled here, at the reuse
        // horizon (see `RunEpoch`); the guard ends the run even if `f` panics out
        // through `Pool::run`.
        let _epoch = self.inner.epoch.begin(|| {
            self.inner.global.dispose();
            for local in &self.inner.locals {
                local.dispose();
            }
            self.inner.store.reclaim_retired();
        });
        let _store_epoch = crate::common::StoreEpochGuard::begin(&self.inner.store);
        let inner = Arc::clone(&self.inner);
        self.inner.pool.run(move |worker| {
            let ctx = DlgCtx::new(inner, worker.clone(), false);
            f(&ctx)
        })
    }

    fn stats(&self) -> RunStats {
        let mut stats = self.inner.counters.snapshot(
            &self.inner.store.stats(),
            1 + self.inner.locals.len() as u64,
        );
        let sched = self.inner.pool.sched_stats();
        stats.sched_steals = sched.steals as u64;
        stats.sched_parks = sched.parks as u64;
        stats.sched_wakes = sched.wakes as u64;
        stats
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_allocation_and_global_write_barrier() {
        let rt = DlgRuntime::with_workers(2);
        let v = rt.run(|ctx| {
            // A ref allocated by the root task lives in a local heap; move it to the
            // global heap by making it reachable from a global object first.
            let global_cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let (_, _) = ctx.join(
                |c| {
                    let payload = c.alloc_ref_data(31);
                    c.write_ptr(global_cell, 0, payload);
                },
                |_| (),
            );
            let p = ctx.read_mut_ptr(global_cell, 0);
            ctx.read_mut(p, 0)
        });
        assert_eq!(v, 31);
    }

    #[test]
    fn writes_into_global_objects_promote_transitively() {
        let rt = DlgRuntime::with_workers(1);
        rt.run(|ctx| {
            // Build a global array by promoting: first allocate locally, then force it
            // global by writing it into an object we make global via stolen allocation…
            // Simpler: allocate a chain locally and write it into a cell that is already
            // global because it was itself promoted.
            let cell = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let holder = ctx.alloc_ref_ptr(ObjPtr::NULL);
            // Make `holder` global by promoting it through a write into `cell` after
            // `cell` is promoted… to bootstrap, promote `cell` directly:
            let promoted_cell = rt_inner_promote(&rt, cell);
            // Now a write of a local chain into the (global) promoted cell must promote
            // the whole chain.
            let mut chain = ObjPtr::NULL;
            for i in 0..5u64 {
                chain = ctx.alloc_cons(ObjPtr::NULL, chain, i);
            }
            ctx.write_ptr(promoted_cell, 0, chain);
            let mut cur = ctx.read_mut_ptr(promoted_cell, 0);
            let mut count = 0;
            while !cur.is_null() {
                count += 1;
                cur = ctx.read_imm_ptr(cur, 1);
            }
            assert_eq!(count, 5);
            let _ = holder;
        });
        let s = rt.stats();
        assert!(
            s.promoted_objects >= 5,
            "chain must have been promoted, saw {}",
            s.promoted_objects
        );
    }

    // Test helper: reach into the runtime to promote an object to the global heap.
    fn rt_inner_promote(rt: &DlgRuntime, obj: ObjPtr) -> ObjPtr {
        rt.inner.promote_to_global(0, obj)
    }

    #[test]
    fn parallel_reduction_is_correct_and_counts_stolen_allocation() {
        let rt = DlgRuntime::with_workers(4);
        let total = rt.run(|ctx| {
            fn build<C: ParCtx>(c: &C, lo: u64, hi: u64) -> u64 {
                if hi - lo <= 32 {
                    let arr = c.alloc_data_array((hi - lo) as usize);
                    for (k, i) in (lo..hi).enumerate() {
                        c.write_nonptr(arr, k, hh_api::hash64(i) % 1000);
                    }
                    (0..(hi - lo) as usize).map(|k| c.read_mut(arr, k)).sum()
                } else {
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = c.join(|c| build(c, lo, mid), |c| build(c, mid, hi));
                    a + b
                }
            }
            build(ctx, 0, 2048)
        });
        let expected: u64 = (0..2048u64).map(|i| hh_api::hash64(i) % 1000).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn stop_the_world_collection_preserves_pinned_data() {
        let rt = DlgRuntime::with_params(2, 256, 20_000, true);
        rt.run(|ctx| {
            let keep = ctx.alloc_ref_data(9);
            ctx.pin(keep);
            for _ in 0..300 {
                let _g = ctx.alloc_data_array(100);
            }
            assert_eq!(ctx.read_mut(keep, 0), 9);
        });
        assert!(rt.stats().gc_count >= 1);
    }
}
