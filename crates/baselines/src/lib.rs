//! # hh-baselines — the comparison runtimes
//!
//! The paper's evaluation compares its hierarchical-heap runtime (`mlton-parmem`)
//! against three other systems. This crate provides Rust stand-ins for each, all
//! implementing the same [`ParCtx`] / [`Runtime`]
//! interface as `hh-runtime` so every benchmark runs unchanged on all of them:
//!
//! * [`SeqRuntime`] — the sequential `mlton` baseline: a single heap, no locks, `join`
//!   runs both branches in order on the calling thread, and a plain semispace collector
//!   runs when the heap exceeds its threshold. Benchmark times on this runtime are the
//!   `T_s` column of Figures 10–11.
//! * [`StwRuntime`] — the `mlton-spoonhower` baseline: parallel fork/join execution with
//!   per-worker allocation into one shared global heap, but *sequential stop-the-world*
//!   collection coordinated through [`hh_sched::Safepoints`]. Its poor GC scalability is
//!   what the paper's speedup comparison highlights.
//! * [`DlgRuntime`] — a Doligez–Leroy–Gonthier / Manticore-style design: per-worker
//!   local heaps, a shared global heap, a write barrier that promotes (transitively
//!   copies) data into the global heap when a pointer to it is stored in a global
//!   object, and global-heap allocation for stolen tasks to model Manticore's
//!   promotion-on-communication. Promotion volume is reported in its statistics
//!   (experiment E6 in DESIGN.md).
//!
//! The baselines deliberately reuse the same chunked object model (`hh-objmodel`) and
//! the same scheduler (`hh-sched`) as the hierarchical runtime, so measured differences
//! come from the memory-management policy, not from incidental implementation detail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod counters;
pub mod dlg;
pub mod seq;
pub mod stw;

pub use dlg::{DlgCtx, DlgRuntime};
pub use seq::{SeqCtx, SeqRuntime};
pub use stw::{StwCtx, StwRuntime};

pub use hh_api::{ParCtx, Runtime};
