//! The `mlton-spoonhower` baseline: parallel fork/join execution and parallel
//! allocation, but *sequential, stop-the-world* garbage collection.
//!
//! All workers allocate into one shared global heap through per-worker allocation lanes.
//! When the heap exceeds its threshold, the allocating worker requests a collection
//! through [`Safepoints`]: every other worker parks at its next safe point (allocations,
//! mutable accesses, fork/join boundaries, and the scheduler's idle / help loops all
//! poll), and a single thread performs a semispace collection of the whole heap while
//! the world is stopped. This reproduces the property the paper's speedup comparison
//! hinges on: GC work is serialized and every processor pays for it.

use crate::common::{
    par_semispace_collect, resolve_tracked, FlatHeap, RootRegistry, RunEpoch, OWNER_GLOBAL,
};
use crate::counters::Counters;
use hh_api::{ParCtx, RunStats, Runtime};
use hh_objmodel::{ChunkStore, Header, ObjKind, ObjPtr};
use hh_sched::{Pool, Safepoints, Worker};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct StwInner {
    pub(crate) store: Arc<ChunkStore>,
    pub(crate) heap: FlatHeap,
    pub(crate) roots: RootRegistry,
    pub(crate) safepoints: Arc<Safepoints>,
    pub(crate) pool: Pool,
    pub(crate) counters: Counters,
    pub(crate) epoch: RunEpoch,
    pub(crate) gc_threshold_words: usize,
    pub(crate) chunk_words: usize,
    pub(crate) enable_gc: bool,
}

/// The stop-the-world parallel baseline runtime.
pub struct StwRuntime {
    inner: Arc<StwInner>,
}

impl StwRuntime {
    /// Creates a runtime with `n_workers` workers and default memory parameters.
    pub fn with_workers(n_workers: usize) -> StwRuntime {
        Self::with_params(n_workers, 8 * 1024, 4 * 1024 * 1024, true)
    }

    /// Creates a runtime with explicit chunk size and GC threshold (in words).
    pub fn with_params(
        n_workers: usize,
        chunk_words: usize,
        gc_threshold_words: usize,
        enable_gc: bool,
    ) -> StwRuntime {
        let store = Arc::new(ChunkStore::new(chunk_words));
        let heap = FlatHeap::new(Arc::clone(&store), OWNER_GLOBAL, n_workers.max(1));
        let safepoints = Arc::new(Safepoints::new());
        // Every worker participates in the safepoint protocol for the lifetime of the
        // pool (it polls either from mutator operations or from the idle/help hooks).
        for _ in 0..n_workers.max(1) {
            safepoints.register();
        }
        let pool = Pool::new(n_workers.max(1));
        {
            let sp = Arc::clone(&safepoints);
            pool.set_idle_hook(move |_| sp.poll());
        }
        // Parking interplay: workers asleep on the pool condvar are not polling, so a
        // requested collection must kick them awake; they then re-run the idle hook,
        // hit `poll`, and park at the safepoint where the collector can count them.
        {
            let waker = pool.waker();
            safepoints.set_wake_hook(move || waker.wake_all());
        }
        StwRuntime {
            inner: Arc::new(StwInner {
                store,
                heap,
                roots: RootRegistry::new(),
                safepoints,
                pool,
                counters: Counters::default(),
                epoch: RunEpoch::new(),
                gc_threshold_words,
                chunk_words,
                enable_gc,
            }),
        }
    }
}

impl StwInner {
    /// Safe point plus, if the heap is over threshold, a stop-the-world collection.
    pub(crate) fn safepoint_and_maybe_collect(&self) {
        self.safepoints.poll();
        if !self.enable_gc || self.heap.allocated_words() < self.gc_threshold_words {
            return;
        }
        let collected = self.safepoints.stop_the_world(|| {
            // Re-check under exclusion: another collection may just have run.
            if self.heap.allocated_words() < self.gc_threshold_words {
                return;
            }
            let start = Instant::now();
            let zone = self.heap.chunks();
            // GC v2: the world is stopped, so every other worker is parked at the
            // safepoint — draft them into the collection team instead of letting
            // them sleep through the pause.
            let helpers = self.pool.n_workers().saturating_sub(1);
            let outcome = par_semispace_collect(
                &self.store,
                OWNER_GLOBAL,
                &zone,
                &self.roots,
                &mut [],
                self.chunk_words,
                Some((&self.safepoints, helpers)),
            );
            self.heap
                .replace_chunks(outcome.new_chunks, outcome.occupied_words);
            self.counters.gc_count.fetch_add(1, Ordering::Relaxed);
            if helpers > 0 {
                self.counters
                    .gc_parallel_collections
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.counters
                .gc_steal_blocks
                .fetch_add(outcome.steal_blocks, Ordering::Relaxed);
            self.counters
                .gc_copied_words
                .fetch_add(outcome.copied_words as u64, Ordering::Relaxed);
            let pause = start.elapsed();
            self.counters.add_gc_time(pause);
            self.counters.record_gc_pause(pause);
        });
        if collected {
            self.counters.world_stops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-task context of the stop-the-world baseline.
pub struct StwCtx {
    inner: Arc<StwInner>,
    worker: Worker,
    root_id: u64,
    roots: Arc<Mutex<Vec<ObjPtr>>>,
}

impl StwCtx {
    fn new(inner: Arc<StwInner>, worker: Worker) -> StwCtx {
        let (root_id, roots) = inner.roots.register();
        StwCtx {
            inner,
            worker,
            root_id,
            roots,
        }
    }
}

impl Drop for StwCtx {
    fn drop(&mut self) {
        self.inner.roots.unregister(self.root_id);
    }
}

impl ParCtx for StwCtx {
    fn alloc(&self, n_ptr: usize, n_nonptr: usize, kind: ObjKind) -> ObjPtr {
        self.inner.safepoint_and_maybe_collect();
        let header = Header::new(n_ptr + n_nonptr, n_ptr, kind);
        self.inner
            .counters
            .allocated_words
            .fetch_add(header.size_words() as u64, Ordering::Relaxed);
        self.inner.heap.alloc(self.worker.index(), header)
    }

    fn read_imm(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.store.view(obj).field(field)
    }

    fn read_mut(&self, obj: ObjPtr, field: usize) -> u64 {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).field(field)
    }

    fn write_nonptr(&self, obj: ObjPtr, field: usize, val: u64) {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).set_field(field, val);
    }

    fn write_ptr(&self, obj: ObjPtr, field: usize, ptr: ObjPtr) {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).set_field(field, ptr.to_bits());
    }

    fn cas_nonptr(&self, obj: ObjPtr, field: usize, expected: u64, new: u64) -> Result<u64, u64> {
        self.inner.safepoints.poll();
        let obj = resolve_tracked(&self.inner.store, &self.inner.counters, obj);
        self.inner.store.view(obj).cas_field(field, expected, new)
    }

    fn obj_len(&self, obj: ObjPtr) -> usize {
        self.inner.store.view(obj).n_fields()
    }

    // Bulk operations (ParCtx v2): shared bodies in `common` — one safepoint poll and
    // one forwarding resolution per operand.

    fn read_imm_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_imm(&self.inner.store, &self.inner.counters, obj, start, out);
    }

    fn read_mut_bulk(&self, obj: ObjPtr, start: usize, out: &mut [u64]) {
        crate::common::bulk_read_mut(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            out,
        );
    }

    fn write_nonptr_bulk(&self, obj: ObjPtr, start: usize, vals: &[u64]) {
        crate::common::bulk_write_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            vals,
        );
    }

    fn fill_nonptr(&self, obj: ObjPtr, start: usize, len: usize, val: u64) {
        crate::common::bulk_fill_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            obj,
            start,
            len,
            val,
        );
    }

    fn copy_nonptr(
        &self,
        src: ObjPtr,
        src_start: usize,
        dst: ObjPtr,
        dst_start: usize,
        len: usize,
    ) {
        crate::common::bulk_copy_nonptr(
            &self.inner.store,
            &self.inner.counters,
            Some(&self.inner.safepoints),
            src,
            src_start,
            dst,
            dst_start,
            len,
        );
    }

    fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce(&Self) -> RA + Send,
        FB: FnOnce(&Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.inner.safepoints.poll();
        let inner_a = Arc::clone(&self.inner);
        let inner_b = Arc::clone(&self.inner);
        self.worker.join(
            move || {
                let worker = Worker::current_in(&inner_a.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = StwCtx::new(inner_a, worker);
                fa(&ctx)
            },
            move || {
                let worker = Worker::current_in(&inner_b.pool)
                    .expect("task branch must execute on a pool worker");
                let ctx = StwCtx::new(inner_b, worker);
                fb(&ctx)
            },
        )
    }

    fn pin(&self, obj: ObjPtr) {
        self.roots.lock().push(obj);
    }

    fn unpin(&self, obj: ObjPtr) {
        let mut roots = self.roots.lock();
        if let Some(pos) = roots.iter().rposition(|r| *r == obj) {
            roots.swap_remove(pos);
            return;
        }
        // A collection between pin and unpin rewrote the pin slot in place, and
        // path compression can shortcut either pointer past the other's hop.
        // Forwarding is confluent, so compare resolved masters rather than raw
        // pointers to keep pin/unpin balanced across collections.
        if obj.is_null() {
            return;
        }
        let master = crate::common::resolve(&self.inner.store, obj);
        if let Some(pos) = roots
            .iter()
            .rposition(|r| !r.is_null() && crate::common::resolve(&self.inner.store, *r) == master)
        {
            roots.swap_remove(pos);
        }
    }

    fn maybe_collect(&self) {
        self.inner.safepoint_and_maybe_collect();
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }
}

impl Runtime for StwRuntime {
    type Ctx = StwCtx;

    fn name(&self) -> &'static str {
        "stw"
    }

    fn n_workers(&self) -> usize {
        self.inner.pool.n_workers()
    }

    fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Self::Ctx) -> R + Send,
    {
        // Completed runs' memory is disposed of and recycled here, at the reuse
        // horizon (see `RunEpoch`); the guard ends the run even if `f` panics out
        // through `Pool::run`.
        let _epoch = self.inner.epoch.begin(|| {
            self.inner.heap.dispose();
            self.inner.store.reclaim_retired();
        });
        let _store_epoch = crate::common::StoreEpochGuard::begin(&self.inner.store);
        let inner = Arc::clone(&self.inner);
        self.inner.pool.run(move |worker| {
            let ctx = StwCtx::new(inner, worker.clone());
            f(&ctx)
        })
    }

    fn stats(&self) -> RunStats {
        let mut stats = self.inner.counters.snapshot(&self.inner.store.stats(), 1);
        let sched = self.inner.pool.sched_stats();
        stats.sched_steals = sched.steals as u64;
        stats.sched_parks = sched.parks as u64;
        stats.sched_wakes = sched.wakes as u64;
        stats
    }

    fn reset_stats(&self) {
        self.inner.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sum_with_shared_mutation() {
        let rt = StwRuntime::with_workers(4);
        let total = rt.run(|ctx| {
            fn sum<C: ParCtx>(c: &C, lo: u64, hi: u64) -> u64 {
                if hi - lo <= 64 {
                    (lo..hi).map(hh_api::hash64).fold(0u64, u64::wrapping_add)
                } else {
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = c.join(|c| sum(c, lo, mid), |c| sum(c, mid, hi));
                    a.wrapping_add(b)
                }
            }
            sum(ctx, 0, 4096)
        });
        let expected = (0..4096u64)
            .map(hh_api::hash64)
            .fold(0u64, u64::wrapping_add);
        assert_eq!(total, expected);
    }

    #[test]
    fn stop_the_world_collections_happen_under_allocation_pressure() {
        let rt = StwRuntime::with_params(4, 256, 20_000, true);
        rt.run(|ctx| {
            fn churn<C: ParCtx>(c: &C, depth: usize, keep: ObjPtr) {
                if depth == 0 {
                    for _ in 0..50 {
                        let _g = c.alloc_data_array(64);
                    }
                    assert_eq!(c.read_mut(keep, 0), 123);
                } else {
                    c.join(|c| churn(c, depth - 1, keep), |c| churn(c, depth - 1, keep));
                }
            }
            let keep = ctx.alloc_ref_data(123);
            ctx.pin(keep);
            churn(ctx, 4, keep);
            assert_eq!(ctx.read_mut(keep, 0), 123);
        });
        let s = rt.stats();
        assert!(
            s.gc_count >= 1,
            "expected at least one stop-the-world collection"
        );
        assert_eq!(s.gc_count, s.world_stops);
        assert_eq!(s.promoted_objects, 0);
    }

    #[test]
    fn shared_ref_visible_across_tasks() {
        let rt = StwRuntime::with_workers(2);
        let v = rt.run(|ctx| {
            let r = ctx.alloc_ref_ptr(ObjPtr::NULL);
            let (_, _) = ctx.join(
                |c| {
                    let payload = c.alloc_ref_data(55);
                    c.write_ptr(r, 0, payload);
                },
                |_| (),
            );
            let p = ctx.read_mut_ptr(r, 0);
            ctx.read_mut(p, 0)
        });
        assert_eq!(v, 55);
    }
}
