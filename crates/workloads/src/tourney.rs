//! The tournament-tree benchmark (`tourney`, §4.2).
//!
//! A sequence of contestants (random fitness values) is reduced with a
//! divide-and-conquer tournament. Every contestant is a managed node carrying a mutable
//! *parent pointer*; at each join point the loser's parent pointer is set to the winner
//! — the representative "local non-promoting write" workload of Figure 9, because by the
//! time the write happens the children's heaps have already been joined into the
//! writer's heap.

use crate::seq::MSeq;
use hh_api::ParCtx;
use hh_objmodel::{ObjKind, ObjPtr};

/// Field index of the parent pointer in a contestant node.
const F_PARENT: usize = 0;
/// Field index of the fitness value in a contestant node.
const F_FITNESS: usize = 1;

/// Result of building the tournament.
pub struct Tournament {
    /// The overall winner's node.
    pub winner: ObjPtr,
    /// The winner's fitness.
    pub winner_fitness: u64,
    /// Number of contestants.
    pub n: usize,
}

/// Builds the tournament tree over `fitness[lo..hi)` and returns the winning node.
///
/// The tree structure itself — a parent-pointer write at every join point, which is the
/// benchmark's representative "local non-promoting write" — is preserved; only the
/// splitting goes through [`ParCtx::join_many`] and the leaf reads its fitness slice in
/// one bulk operation.
fn play<C: ParCtx>(ctx: &C, fitness: MSeq, lo: usize, hi: usize, grain: usize) -> (ObjPtr, u64) {
    debug_assert!(hi > lo);
    if hi - lo <= grain.max(1) {
        // Sequential block: bulk-read the fitness slice, then create contestants and
        // play them off left to right.
        let mut buf = vec![0u64; hi - lo];
        fitness.get_bulk(ctx, lo, &mut buf);
        let mut best = make_contestant(ctx, buf[0]);
        let mut best_fit = ctx.read_mut(best, F_FITNESS);
        for &f in &buf[1..] {
            let challenger = make_contestant(ctx, f);
            let challenger_fit = ctx.read_mut(challenger, F_FITNESS);
            if challenger_fit > best_fit {
                ctx.write_ptr(best, F_PARENT, challenger);
                best = challenger;
                best_fit = challenger_fit;
            } else {
                ctx.write_ptr(challenger, F_PARENT, best);
            }
        }
        ctx.maybe_collect();
        (best, best_fit)
    } else {
        let mid = lo + (hi - lo) / 2;
        let halves = vec![(lo, mid), (mid, hi)];
        let results = ctx.join_many(
            halves
                .into_iter()
                .map(|(l, h)| move |c: &C| play(c, fitness, l, h, grain))
                .collect(),
        );
        let [(lw, lf), (rw, rf)]: [(ObjPtr, u64); 2] = results
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly two halves"));
        // The join point: record who eliminated the loser.
        if lf >= rf {
            ctx.write_ptr(rw, F_PARENT, lw);
            (lw, lf)
        } else {
            ctx.write_ptr(lw, F_PARENT, rw);
            (rw, rf)
        }
    }
}

fn make_contestant<C: ParCtx>(ctx: &C, fitness: u64) -> ObjPtr {
    let node = ctx.alloc(1, 1, ObjKind::Node);
    ctx.write_nonptr(node, F_FITNESS, fitness);
    node
}

/// Runs the tournament over a fitness sequence.
pub fn tourney<C: ParCtx>(ctx: &C, fitness: MSeq, grain: usize) -> Tournament {
    assert!(
        !fitness.is_empty(),
        "a tournament needs at least one contestant"
    );
    let (winner, winner_fitness) = play(ctx, fitness, 0, fitness.len(), grain);
    Tournament {
        winner,
        winner_fitness,
        n: fitness.len(),
    }
}

/// Follows a contestant's parent chain to the overall winner (validation helper: every
/// chain must terminate at the tournament winner).
pub fn chain_to_winner<C: ParCtx>(ctx: &C, mut node: ObjPtr, limit: usize) -> Option<ObjPtr> {
    for _ in 0..limit {
        let parent = ctx.read_mut_ptr(node, F_PARENT);
        if parent.is_null() {
            return Some(node);
        }
        node = parent;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::random_input;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn winner_has_maximum_fitness() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let fitness = random_input(ctx, 1000, 64, 11);
            let t = tourney(ctx, fitness, 64);
            let expected = (0..1000usize).map(|i| fitness.get(ctx, i)).max().unwrap();
            assert_eq!(t.winner_fitness, expected);
            assert!(ctx.read_mut_ptr(t.winner, F_PARENT).is_null());
        });
    }

    #[test]
    fn parallel_tournament_is_consistent_and_local() {
        let rt = HhRuntime::with_workers(4);
        rt.run(|ctx| {
            let fitness = random_input(ctx, 4096, 128, 5);
            let t = tourney(ctx, fitness, 128);
            let expected = (0..4096usize).map(|i| fitness.get(ctx, i)).max().unwrap();
            assert_eq!(t.winner_fitness, expected);
            // The winner's chain is trivially itself; spot-check that parent chains
            // terminate at the winner.
            let w = chain_to_winner(ctx, t.winner, 64).unwrap();
            assert_eq!(ctx.read_mut(w, F_FITNESS), expected);
        });
        assert_eq!(rt.check_disentangled(), 0);
        assert_eq!(
            rt.stats().promoted_objects,
            0,
            "tournament writes are local and must not promote"
        );
    }
}
