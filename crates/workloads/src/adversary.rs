//! The entanglement adversary: a shared work-log / actor-mailbox workload where a
//! *tunable* fraction of writes crosses subtrees and promotes.
//!
//! `actors` sibling tasks each process a deterministic op stream. With probability
//! `promote_permille / 1000` an op is a **cross-subtree send**: the actor
//! allocates a message in its own heap, publishes it into the shared
//! per-(sender, receiver) slot of a work-log matrix (a promoting pointer write on
//! the hierarchical runtime whenever the actor runs outside the log's subtree),
//! and folds the payload into the receiver's mailbox accumulator with a CAS-add
//! retry loop. Otherwise the op churns a task-private scratch ring — the
//! hierarchy-friendly case that never touches shared state.
//!
//! Sweeping `promote_permille` from 0 to 1000 moves the workload from perfectly
//! hierarchy-friendly (zero pointer writes, zero promotions) to
//! promotion-saturated (every op publishes and promotes), which is how
//! `repro promote` maps where promotion cost overtakes hierarchy benefit.
//!
//! Determinism (the oracle-soundness argument, DESIGN.md §12): each actor's op
//! stream, receivers, and payloads are hash-derived from `(seed, actor, op)`, so
//! they do not depend on the schedule. The three shared sinks are each
//! schedule-independent:
//! * mailbox accumulators receive their deltas via CAS-add — addition is
//!   commutative and associative, so the final sum is the same no matter how the
//!   concurrent adds interleave;
//! * the work-log matrix slot `(t, r)` is written only by actor `t`, whose ops are
//!   sequential — the surviving message is its *last* send to `r`;
//! * scratch rings are task-private.
//!
//! The checksum folds actor accumulators, mailbox sums, and the surviving log
//! messages only after the join.

use hh_api::{hash64, ObjKind, ParCtx};
use hh_objmodel::ObjPtr;

/// Size of each actor's private scratch ring (the hierarchy-friendly sink).
const SCRATCH: usize = 64;

/// Commutative fold into a shared accumulator slot: CAS-add with retry. The final
/// value of the slot is the wrapping sum of every delta folded into it, regardless
/// of interleaving.
fn cas_add<C: ParCtx>(c: &C, arr: ObjPtr, slot: usize, delta: u64) {
    let mut cur = c.read_mut(arr, slot);
    loop {
        match c.cas_nonptr(arr, slot, cur, cur.wrapping_add(delta)) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The entanglement adversary: `actors` tasks, `ops_per_actor` ops each, with
/// `promote_permille`/1000 of ops publishing cross-subtree (see module docs).
/// Returns a deterministic checksum.
pub fn entangle<C: ParCtx>(
    ctx: &C,
    actors: usize,
    ops_per_actor: usize,
    promote_permille: u64,
    seed: u64,
) -> u64 {
    assert!(actors > 0 && promote_permille <= 1000);
    // Mailbox accumulators (one per receiver) and the (sender × receiver)
    // work-log matrix, both rooted above every actor.
    let inbox = ctx.alloc_data_array(actors);
    let log = ctx.alloc_ptr_array(actors * actors);
    ctx.pin(inbox);
    ctx.pin(log);

    let accs = ctx.join_many(
        (0..actors)
            .map(|t| {
                move |c: &C| {
                    let scratch = c.alloc_data_array(SCRATCH);
                    let mut acc = seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for op in 0..ops_per_actor {
                        let h = hash64(seed ^ ((t as u64) << 32) ^ op as u64);
                        if h % 1000 < promote_permille && actors > 1 {
                            // Cross-subtree send to a deterministic other actor.
                            let r = (t + 1 + (h >> 10) as usize % (actors - 1)) % actors;
                            let payload = hash64(h ^ 0x4D41_494C); // "MAIL"
                            let msg = c.alloc(0, 2, ObjKind::Node);
                            c.write_nonptr(msg, 0, payload);
                            c.write_nonptr(msg, 1, op as u64);
                            // The promoting publish: single writer per (t, r) slot.
                            c.write_ptr(log, t * actors + r, msg);
                            // Commutative fold into the receiver's mailbox.
                            cas_add(c, inbox, r, payload);
                            // Read back through the (now possibly stale) local
                            // pointer — the forwarding-chain traffic `fwd_hops`
                            // measures.
                            acc = acc.wrapping_add(c.read_mut(msg, 0).rotate_left(7));
                        } else {
                            // Hierarchy-friendly op: churn the private ring.
                            let slot = (h >> 10) as usize % SCRATCH;
                            let old = c.read_mut(scratch, slot);
                            c.write_nonptr(scratch, slot, old ^ h);
                            acc = acc.wrapping_add(old ^ h);
                        }
                        if op % 512 == 511 {
                            c.maybe_collect();
                        }
                    }
                    acc
                }
            })
            .collect(),
    );

    // Fold the shared sinks after the join: mailbox sums (commutative, so
    // deterministic) and the surviving last message of every (sender, receiver)
    // pair (single-writer, so deterministic).
    let mut acc = accs.into_iter().fold(0u64, u64::wrapping_add);
    for r in 0..actors {
        acc = acc.wrapping_add(ctx.read_mut(inbox, r).wrapping_mul(r as u64 | 1));
    }
    for s in 0..actors * actors {
        let msg = ctx.read_mut_ptr(log, s);
        if !msg.is_null() {
            acc = acc
                .wrapping_add(ctx.read_imm(msg, 0).wrapping_mul(s as u64 | 1))
                .wrapping_add(ctx.read_imm(msg, 1));
        }
    }
    ctx.unpin(log);
    ctx.unpin(inbox);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime;
    use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
    use hh_runtime::{HhConfig, HhRuntime};

    const ACTORS: usize = 8;
    const OPS: usize = 1200;
    const SEED: u64 = 0xE17A_61E5;

    #[test]
    fn entangle_agrees_across_runtimes_at_every_rate() {
        let workers = hh_api::env_workers(3);
        for rate in [0u64, 100, 500, 1000] {
            let expected = SeqRuntime::new().run(|c| entangle(c, ACTORS, OPS, rate, SEED));
            assert_eq!(
                StwRuntime::with_workers(workers).run(|c| entangle(c, ACTORS, OPS, rate, SEED)),
                expected,
                "stw rate={rate}"
            );
            assert_eq!(
                DlgRuntime::with_workers(workers).run(|c| entangle(c, ACTORS, OPS, rate, SEED)),
                expected,
                "dlg rate={rate}"
            );
            let hh = HhRuntime::with_workers(workers);
            assert_eq!(
                hh.run(|c| entangle(c, ACTORS, OPS, rate, SEED)),
                expected,
                "parmem rate={rate}"
            );
            assert_eq!(hh.check_disentangled(), 0, "rate={rate}");
        }
    }

    /// The promote-rate knob really is the promotion knob: under eager heaps rate 0
    /// promotes nothing (no pointer write ever happens) and rate 1000 promotes on
    /// every send; the saturated run promotes strictly more than a mid-rate run.
    #[test]
    fn promote_rate_sweeps_from_friendly_to_saturated() {
        let expected0 = SeqRuntime::new().run(|c| entangle(c, ACTORS, OPS, 0, SEED));
        let eager0 = HhRuntime::new(HhConfig::eager_heaps(2));
        assert_eq!(eager0.run(|c| entangle(c, ACTORS, OPS, 0, SEED)), expected0);
        assert_eq!(
            eager0.stats().promotions,
            0,
            "rate 0 must perform no promotions even under eager heaps"
        );

        let mut prev = 0u64;
        for rate in [500u64, 1000] {
            let expected = SeqRuntime::new().run(|c| entangle(c, ACTORS, OPS, rate, SEED));
            let eager = HhRuntime::new(HhConfig::eager_heaps(2));
            assert_eq!(
                eager.run(|c| entangle(c, ACTORS, OPS, rate, SEED)),
                expected
            );
            let s = eager.stats();
            assert!(
                s.promotions > prev,
                "rate {rate} must promote more than the previous rate ({} <= {prev})",
                s.promotions
            );
            prev = s.promotions;
        }
    }
}
