//! Mutator-heavy workloads (promotion v2): three benchmarks whose inner loops are
//! dominated by mutation of shared structures rather than pure construction, built to
//! hammer the promotion path, the forwarding barrier, and allocation churn:
//!
//! * [`union_find`] — concurrent union-find with path halving: distant CAS traffic
//!   on a shared parent array plus one promoting pointer write per processed edge
//!   (an allocation published into a shared log).
//! * [`frontier_bfs`] — BFS over a *growing* graph: adjacency lists are materialized
//!   lazily by whichever task visits a vertex and published into the shared graph
//!   with pointer writes, so the frontier expansion itself promotes.
//! * [`lru_churn`] — per-task LRU caches over a shared backing store: every miss
//!   allocates a fresh node (churn for the collector), and each task publishes its
//!   whole cache at the end — one batched transitive promotion of the cache closure.
//!
//! All three are deterministic by construction (checksum equality across the four
//! runtimes is asserted by the suite tests): parallel tasks write only disjoint slots
//! of shared arrays, union-find links larger roots under smaller ones so the final
//! representative of every component is its minimum element regardless of schedule,
//! and BFS is level-synchronous so distances are schedule-independent.

use hh_api::{hash64, ObjKind, ParCtx};
use hh_objmodel::ObjPtr;

// ---------------------------------------------------------------------------
// Concurrent union-find with path halving.
// ---------------------------------------------------------------------------

/// Finds the representative of `i` with path halving: every probe CASes `parent[i]`
/// from its parent to its grandparent, so chains shorten as they are walked. Parent
/// values only ever decrease (links go from larger to smaller indices), which keeps
/// the forest acyclic under concurrency.
fn uf_find<C: ParCtx>(ctx: &C, parent: ObjPtr, mut i: usize) -> u64 {
    loop {
        let p = ctx.read_mut(parent, i);
        if p as usize == i {
            return p;
        }
        let gp = ctx.read_mut(parent, p as usize);
        if gp != p {
            // Path halving; a failed CAS means someone else already halved (or
            // linked) — either way the chain got shorter.
            let _ = ctx.cas_nonptr(parent, i, p, gp);
        }
        i = gp as usize;
    }
}

/// Unites the components of `a` and `b`, always linking the larger root under the
/// smaller one, so every component's final representative is its minimum element —
/// deterministic no matter how concurrent unions interleave.
fn uf_unite<C: ParCtx>(ctx: &C, parent: ObjPtr, a: usize, b: usize) {
    loop {
        let ra = uf_find(ctx, parent, a);
        let rb = uf_find(ctx, parent, b);
        if ra == rb {
            return;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        // The root's slot still holds its own index iff it is still a root; a failed
        // CAS means a concurrent union got there first — re-find and retry.
        if ctx.cas_nonptr(parent, hi as usize, hi, lo).is_ok() {
            return;
        }
    }
}

/// Concurrent union-find over `n` elements processing `edges` hash-generated unions
/// in parallel, with path halving and a shared promotion-heavy edge log: every
/// processed edge allocates a record in the processing task's heap and publishes it
/// into a shared log array (one promoting pointer write per edge on the hierarchical
/// runtime whenever the leaf ran stolen or in eager mode).
///
/// Returns a deterministic checksum: the sum of every element's final representative
/// (the minimum of its component) folded with the log records' payloads.
pub fn union_find<C: ParCtx>(ctx: &C, n: usize, edges: usize, grain: usize, seed: u64) -> u64 {
    assert!(n > 0);
    let parent = ctx.alloc_data_array(n);
    let log = ctx.alloc_ptr_array(edges);
    ctx.pin(parent);
    ctx.pin(log);

    // parent[i] = i.
    ctx.par_for(0..n, grain, move |c, r| {
        let vals: Vec<u64> = r.clone().map(|i| i as u64).collect();
        c.write_nonptr_bulk(parent, r.start, &vals);
    });

    // Process the edges: union + log record (the promoting write).
    ctx.par_for(0..edges, grain, move |c, r| {
        for k in r {
            let a = (hash64(seed ^ (2 * k as u64)) % n as u64) as usize;
            let b = (hash64(seed ^ (2 * k as u64 + 1)) % n as u64) as usize;
            uf_unite(c, parent, a, b);
            let rec = c.alloc(0, 1, ObjKind::Node);
            c.write_nonptr(rec, 0, hash64(seed ^ 0xED6E ^ k as u64));
            c.write_ptr(log, k, rec);
            // Re-read through the (now possibly stale) local pointer: after a
            // promoting publish this walks the forwarding chain — the barrier
            // traffic the `fwd_hops` counter measures.
            let _ = c.read_mut(rec, 0);
        }
    });

    // Checksum: roots are deterministic (component minima); log payloads are
    // hash-derived. Both fold independently of schedule.
    let root_sums = ctx.par_map(0..n, grain, move |c, r| {
        r.map(|i| uf_find(c, parent, i)).sum::<u64>()
    });
    let log_sums = ctx.par_map(0..edges, grain, move |c, r| {
        r.map(|k| {
            let rec = c.read_mut_ptr(log, k);
            c.read_imm(rec, 0)
        })
        .fold(0u64, u64::wrapping_add)
    });
    ctx.unpin(log);
    ctx.unpin(parent);
    root_sums
        .into_iter()
        .fold(0u64, u64::wrapping_add)
        .wrapping_add(log_sums.into_iter().fold(0u64, u64::wrapping_add))
}

// ---------------------------------------------------------------------------
// Mutable BFS frontier over a growing graph.
// ---------------------------------------------------------------------------

/// Deterministic degree of vertex `v` (1 ..= max_degree).
fn fb_degree(seed: u64, v: u64, max_degree: usize) -> usize {
    1 + (hash64(seed ^ v.wrapping_mul(0x9E37)) % max_degree as u64) as usize
}

/// Deterministic `j`-th neighbour of vertex `v`.
fn fb_neighbor(seed: u64, v: u64, j: usize, n: usize) -> u64 {
    hash64(seed ^ v.wrapping_mul(31).wrapping_add(j as u64 + 1)) % n as u64
}

/// Level-synchronous BFS over a graph that *grows while it is traversed*: the
/// adjacency list of a vertex is materialized (allocated in the visiting task's heap
/// and published into the shared `adj` array with a pointer write) the first time
/// the frontier reaches it. On the hierarchical runtime every expansion by a stolen
/// task is a promoting write of the freshly built neighbour array — the mutable
/// frontier is the promotion workload.
///
/// Returns a deterministic checksum over the (schedule-independent) BFS levels and
/// the visited count.
pub fn frontier_bfs<C: ParCtx>(
    ctx: &C,
    n: usize,
    max_degree: usize,
    grain: usize,
    seed: u64,
) -> u64 {
    assert!(n > 0 && max_degree > 0);
    let adj = ctx.alloc_ptr_array(n);
    // dist[v] = 0 while unvisited, else BFS level + 1.
    let dist = ctx.alloc_data_array(n);
    ctx.pin(adj);
    ctx.pin(dist);

    ctx.write_nonptr(dist, 0, 1);
    let mut frontier: Vec<u64> = vec![0];
    let mut level = 1u64;
    while !frontier.is_empty() {
        let cur: &[u64] = &frontier;
        let next_level = level + 1;
        let blocks = ctx.par_map(0..cur.len(), grain, move |c, r| {
            let mut out: Vec<u64> = Vec::new();
            for &v in &cur[r] {
                // Grow the graph: build v's adjacency and publish it. Each visited
                // vertex appears in exactly one frontier exactly once, so the slot
                // is written by exactly one task.
                let deg = fb_degree(seed, v, max_degree);
                let arr = c.alloc_data_array(deg);
                let neighbors: Vec<u64> = (0..deg).map(|j| fb_neighbor(seed, v, j, n)).collect();
                c.write_nonptr_bulk(arr, 0, &neighbors);
                c.write_ptr(adj, v as usize, arr);
                // Expand by reading the adjacency back *through the graph*: the
                // publish may have promoted `arr`, so this bulk read resolves the
                // master copy (one amortized lookup, hops counted) — the mutable
                // frontier really does go through the shared structure.
                let mut fetched = vec![0u64; deg];
                c.read_mut_bulk(arr, 0, &mut fetched);
                for &u in &fetched {
                    if c.cas_nonptr(dist, u as usize, 0, next_level).is_ok() {
                        out.push(u);
                    }
                }
            }
            out
        });
        frontier = blocks.into_iter().flatten().collect();
        level = next_level;
    }

    let sums = ctx.par_map(0..n, grain.max(64), move |c, r| {
        let mut levels = 0u64;
        let mut visited = 0u64;
        for i in r {
            let d = c.read_mut(dist, i);
            levels = levels.wrapping_add(d.wrapping_mul(i as u64 | 1));
            visited += (d != 0) as u64;
        }
        (levels, visited)
    });
    ctx.unpin(dist);
    ctx.unpin(adj);
    let (levels, visited) = sums.into_iter().fold((0u64, 0u64), |(l, v), (bl, bv)| {
        (l.wrapping_add(bl), v + bv)
    });
    levels.wrapping_mul(31).wrapping_add(visited)
}

// ---------------------------------------------------------------------------
// LRU-cache churn.
// ---------------------------------------------------------------------------

/// Per-task LRU caches churning over a shared backing store.
///
/// `tasks` independent tasks each maintain their own LRU cache (`capacity` slots:
/// key array, stamp array, node-pointer array) and process a deterministic stream of
/// `ops_per_task` lookups over a `keyspace`-sized shared backing array. Every miss
/// evicts the least-recently-used slot and allocates a fresh node — steady
/// allocation churn with dead nodes for the collector — and at the end each task
/// publishes its whole cache into a shared array: one transitive promotion of the
/// cache closure per task on the hierarchical runtime.
///
/// Each task's hit/miss sequence depends only on its own stream, so the folded
/// checksum (per-task accumulators plus a walk over the published caches) is
/// deterministic.
pub fn lru_churn<C: ParCtx>(
    ctx: &C,
    tasks: usize,
    ops_per_task: usize,
    capacity: usize,
    keyspace: usize,
    seed: u64,
) -> u64 {
    assert!(tasks > 0 && capacity > 0 && keyspace > 0);
    let backing = ctx.alloc_data_array(keyspace);
    let published = ctx.alloc_ptr_array(tasks);
    ctx.pin(backing);
    ctx.pin(published);
    ctx.par_for(0..keyspace, 1024, move |c, r| {
        let vals: Vec<u64> = r.clone().map(|k| hash64(seed ^ k as u64)).collect();
        c.write_nonptr_bulk(backing, r.start, &vals);
    });

    const EMPTY: u64 = u64::MAX;
    let accs = ctx.join_many(
        (0..tasks)
            .map(|t| {
                move |c: &C| {
                    let keys = c.alloc_data_array(capacity);
                    let stamps = c.alloc_data_array(capacity);
                    let nodes = c.alloc_ptr_array(capacity);
                    c.pin(nodes);
                    c.fill_nonptr(keys, 0, capacity, EMPTY);
                    let mut clock = 0u64;
                    let mut acc = seed ^ t as u64;
                    for op in 0..ops_per_task {
                        clock += 1;
                        // Mildly skewed deterministic key stream: squaring biases
                        // towards the low end of the keyspace, giving real hits.
                        let h = hash64(seed ^ ((t as u64) << 32) ^ op as u64);
                        let key = ((h % keyspace as u64) * (h % keyspace as u64)) / keyspace as u64;
                        let mut hit_slot = None;
                        for s in 0..capacity {
                            if c.read_mut(keys, s) == key {
                                hit_slot = Some(s);
                                break;
                            }
                        }
                        match hit_slot {
                            Some(s) => {
                                c.write_nonptr(stamps, s, clock);
                                let node = c.read_mut_ptr(nodes, s);
                                acc = acc.wrapping_add(c.read_imm(node, 0));
                            }
                            None => {
                                // Evict the least-recently-used slot and install a
                                // freshly allocated node (the churn).
                                let mut victim = 0;
                                let mut oldest = u64::MAX;
                                for s in 0..capacity {
                                    let st = c.read_mut(stamps, s);
                                    if st < oldest {
                                        oldest = st;
                                        victim = s;
                                    }
                                }
                                let val = c.read_mut(backing, key as usize);
                                let node = c.alloc(0, 1, ObjKind::Node);
                                c.write_nonptr(node, 0, val);
                                c.write_nonptr(keys, victim, key);
                                c.write_nonptr(stamps, victim, clock);
                                c.write_ptr(nodes, victim, node);
                                acc = acc.wrapping_add(val ^ 0x5D);
                            }
                        }
                        if op % 1024 == 1023 {
                            c.maybe_collect();
                        }
                    }
                    // Publish the whole cache: one transitive promotion of the node
                    // array plus every resident node.
                    c.write_ptr(published, t, nodes);
                    // Verify the publish through the *stale* local pointers: every
                    // access resolves the forwarding chain to the master copies
                    // (the barrier traffic `fwd_hops` measures). The values are the
                    // task's own deterministic cache contents.
                    for s in 0..capacity {
                        let node = c.read_mut_ptr(nodes, s);
                        if !node.is_null() {
                            acc = acc.wrapping_add(c.read_mut(node, 0).rotate_left(11));
                        }
                    }
                    c.unpin(nodes);
                    acc
                }
            })
            .collect(),
    );

    // Walk the published caches from the parent (all traffic goes through master
    // copies after the publish promotions).
    let mut acc = accs.into_iter().fold(0u64, u64::wrapping_add);
    for t in 0..tasks {
        let nodes = ctx.read_mut_ptr(published, t);
        for s in 0..capacity {
            let node = ctx.read_mut_ptr(nodes, s);
            if !node.is_null() {
                acc = acc.wrapping_add(ctx.read_imm(node, 0).wrapping_mul(s as u64 + 1));
            }
        }
    }
    ctx.unpin(published);
    ctx.unpin(backing);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime;
    use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
    use hh_runtime::{HhConfig, HhRuntime};

    const N: usize = 600;
    const SEED: u64 = 0xC0FF_EE11;

    #[test]
    fn union_find_agrees_across_runtimes() {
        let workers = hh_api::env_workers(3);
        let expected = SeqRuntime::new().run(|c| union_find(c, N, N, 64, SEED));
        assert_eq!(
            StwRuntime::with_workers(workers).run(|c| union_find(c, N, N, 64, SEED)),
            expected,
            "stw"
        );
        assert_eq!(
            DlgRuntime::with_workers(workers).run(|c| union_find(c, N, N, 64, SEED)),
            expected,
            "dlg"
        );
        let hh = HhRuntime::with_workers(workers);
        assert_eq!(
            hh.run(|c| union_find(c, N, N, 64, SEED)),
            expected,
            "parmem"
        );
        assert_eq!(hh.check_disentangled(), 0);
        // Eager heaps force every log write to promote, deterministically.
        let eager = HhRuntime::new(HhConfig::eager_heaps(2));
        assert_eq!(
            eager.run(|c| union_find(c, N, N, 64, SEED)),
            expected,
            "parmem-eager"
        );
        let s = eager.stats();
        assert!(
            s.promotions > 0,
            "log writes must promote under eager heaps"
        );
        assert!(s.promoted_objects >= s.promotions);
    }

    /// GC v3 ≡ A6: mutator-concurrent incremental collection must compute the
    /// exact same checksums as the monolithic shape on all three mutator
    /// workloads — under GC pressure (tiny chunks and threshold), with the
    /// invariant checker on — and leave no entanglement behind.
    #[test]
    fn incremental_gc_matches_a6_on_mutator_workloads() {
        let workers = hh_api::env_workers(3);
        let mk = |incremental_gc: bool| {
            HhRuntime::new(HhConfig {
                n_workers: workers,
                chunk_words: 256,
                gc_threshold_words: 2 * 1024,
                check_invariants: true,
                incremental_gc,
                ..Default::default()
            })
        };
        // Counters reset at each run's start, so fold the three runs' stats.
        let run_all = |rt: &HhRuntime| -> ([u64; 3], hh_api::RunStats) {
            let mut total = hh_api::RunStats::default();
            let mut sums = [0u64; 3];
            sums[0] = rt.run(|c| union_find(c, N, 2 * N, 16, SEED));
            total.merge(&rt.stats());
            sums[1] = rt.run(|c| frontier_bfs(c, N, 6, 16, SEED));
            total.merge(&rt.stats());
            // ≥ 1024 ops per task so lru_churn's own safe points (its
            // `maybe_collect` stride) actually fire under the tiny threshold.
            sums[2] = rt.run(|c| lru_churn(c, 4, 2048, 16, 256, SEED));
            total.merge(&rt.stats());
            (sums, total)
        };
        let a6 = mk(false);
        let inc = mk(true);
        let (expected, _) = run_all(&a6);
        let (got, s) = run_all(&inc);
        assert_eq!(got, expected, "incremental ≠ A6 checksums");
        assert_eq!(inc.check_disentangled(), 0);
        assert!(
            s.gc_incremental_collections > 0,
            "pressure must force at least one incremental collection: {s:?}"
        );
        assert!(
            s.gc_increments >= s.gc_incremental_collections,
            "every incremental collection drains at least one increment: {s:?}"
        );
    }

    #[test]
    fn union_find_roots_are_component_minima() {
        // Sequential reference: build the same unions with a simple DSU and compare
        // representative sums.
        let mut parent: Vec<usize> = (0..N).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] == i {
                i
            } else {
                let r = find(p, p[i]);
                p[i] = r;
                r
            }
        }
        for k in 0..N as u64 {
            let a = (hash64(SEED ^ (2 * k)) % N as u64) as usize;
            let b = (hash64(SEED ^ (2 * k + 1)) % N as u64) as usize;
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                // Union by minimum, as the concurrent version guarantees.
                let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
                parent[hi] = lo;
            }
        }
        let expected_roots: u64 = (0..N).map(|i| find(&mut parent, i) as u64).sum();
        let expected_log: u64 = (0..N as u64)
            .map(|k| hash64(SEED ^ 0xED6E ^ k))
            .fold(0u64, u64::wrapping_add);
        let got = SeqRuntime::new().run(|c| union_find(c, N, N, 64, SEED));
        assert_eq!(got, expected_roots.wrapping_add(expected_log));
    }

    #[test]
    fn frontier_bfs_agrees_across_runtimes() {
        let workers = hh_api::env_workers(3);
        let expected = SeqRuntime::new().run(|c| frontier_bfs(c, N, 6, 16, SEED));
        assert_eq!(
            StwRuntime::with_workers(workers).run(|c| frontier_bfs(c, N, 6, 16, SEED)),
            expected,
            "stw"
        );
        assert_eq!(
            DlgRuntime::with_workers(workers).run(|c| frontier_bfs(c, N, 6, 16, SEED)),
            expected,
            "dlg"
        );
        let hh = HhRuntime::with_workers(workers);
        assert_eq!(
            hh.run(|c| frontier_bfs(c, N, 6, 16, SEED)),
            expected,
            "parmem"
        );
        assert_eq!(hh.check_disentangled(), 0);
        let eager = HhRuntime::new(HhConfig::eager_heaps(2));
        assert_eq!(
            eager.run(|c| frontier_bfs(c, N, 6, 16, SEED)),
            expected,
            "parmem-eager"
        );
        assert!(
            eager.stats().promotions > 0,
            "adjacency publishes must promote under eager heaps"
        );
    }

    #[test]
    fn lru_churn_agrees_across_runtimes_and_churns() {
        let workers = hh_api::env_workers(3);
        let expected = SeqRuntime::new().run(|c| lru_churn(c, 4, 800, 16, 256, SEED));
        assert_eq!(
            StwRuntime::with_workers(workers).run(|c| lru_churn(c, 4, 800, 16, 256, SEED)),
            expected,
            "stw"
        );
        assert_eq!(
            DlgRuntime::with_workers(workers).run(|c| lru_churn(c, 4, 800, 16, 256, SEED)),
            expected,
            "dlg"
        );
        let hh = HhRuntime::with_workers(workers);
        assert_eq!(
            hh.run(|c| lru_churn(c, 4, 800, 16, 256, SEED)),
            expected,
            "parmem"
        );
        assert_eq!(hh.check_disentangled(), 0);
        let eager = HhRuntime::new(HhConfig::eager_heaps(2));
        assert_eq!(
            eager.run(|c| lru_churn(c, 4, 800, 16, 256, SEED)),
            expected,
            "parmem-eager"
        );
        let s = eager.stats();
        assert!(
            s.promotions >= 4,
            "each task's publish must promote its cache (saw {})",
            s.promotions
        );
        assert!(s.allocated_words > 0);
    }
}
