//! Name-keyed registry of the workloads the `serve` multi-tenant driver can
//! dispatch.
//!
//! The serve loop used to hard-dispatch `(seed >> 33) % 3` onto the three
//! mutator workloads by index; adding a workload meant editing the server. The
//! registry inverts that: `hh-server` looks suite ids up here, `--workload`
//! pins a run to one entry by name, and a new workload is a one-line addition
//! to [`ServeWorkloadId::ALL`]. The default *mix* is kept at exactly the three
//! PR-4 mutator workloads (same `% 3` selection off the seed's high bits) so
//! serve throughput artifacts remain comparable across PR snapshots.

use crate::adversary::entangle;
use crate::mutator::{frontier_bfs, lru_churn, union_find};
use crate::wavefront::wavefront;
use hh_api::ParCtx;

/// A workload the serve driver can run as one tenant request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ServeWorkloadId {
    UnionFind,
    FrontierBfs,
    LruChurn,
    Wavefront,
    Entangle,
}

impl ServeWorkloadId {
    /// Every workload `serve --workload` accepts.
    pub const ALL: [ServeWorkloadId; 5] = [
        ServeWorkloadId::UnionFind,
        ServeWorkloadId::FrontierBfs,
        ServeWorkloadId::LruChurn,
        ServeWorkloadId::Wavefront,
        ServeWorkloadId::Entangle,
    ];

    /// The default tenant mix when no workload is pinned: the three PR-4
    /// mutator workloads, selected by the request seed's high bits exactly as
    /// the old hard-coded dispatch did (artifact continuity across snapshots).
    pub const DEFAULT_MIX: [ServeWorkloadId; 3] = [
        ServeWorkloadId::UnionFind,
        ServeWorkloadId::FrontierBfs,
        ServeWorkloadId::LruChurn,
    ];

    /// The suite id used by `--workload` and carried into JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ServeWorkloadId::UnionFind => "union-find",
            ServeWorkloadId::FrontierBfs => "bfs-frontier",
            ServeWorkloadId::LruChurn => "lru-churn",
            ServeWorkloadId::Wavefront => "wavefront",
            ServeWorkloadId::Entangle => "entangle",
        }
    }

    /// Looks a workload up by suite id; `None` for unknown names (the caller
    /// rejects them — there is no silent fallback).
    pub fn from_name(name: &str) -> Option<ServeWorkloadId> {
        ServeWorkloadId::ALL
            .iter()
            .copied()
            .find(|w| w.name() == name)
    }

    /// Picks the default-mix member for a request seed (the historical
    /// `(seed >> 33) % 3` selection off the high bits — the low bits of simple
    /// generators are the weak ones).
    pub fn from_mix_seed(seed: u64) -> ServeWorkloadId {
        Self::DEFAULT_MIX[((seed >> 33) % Self::DEFAULT_MIX.len() as u64) as usize]
    }

    /// Runs one tenant request of this workload at the serve smoke sizing
    /// (`scale` multiplies the per-request problem size) and returns its
    /// deterministic checksum.
    pub fn run<C: ParCtx>(self, ctx: &C, seed: u64, scale: usize) -> u64 {
        let n = 48 * scale;
        match self {
            ServeWorkloadId::UnionFind => union_find(ctx, n, n + n / 2, 16, seed),
            ServeWorkloadId::FrontierBfs => frontier_bfs(ctx, n, 4, 16, seed),
            ServeWorkloadId::LruChurn => lru_churn(ctx, 4, 8 * scale, 16, 64, seed),
            ServeWorkloadId::Wavefront => {
                // Grid sized so the cell count tracks the other workloads' n.
                let side = ((n as f64).sqrt() as usize).max(8);
                let seeds = (side * side / 64).max(2);
                wavefront(ctx, side, side, seeds, 16, seed)
            }
            // Half the ops cross subtrees: the mid-point of the promote-rate
            // sweep, entangled enough to stress reclamation under overlap.
            ServeWorkloadId::Entangle => entangle(ctx, 6, 16 * scale, 500, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn names_round_trip_and_unknown_names_are_rejected() {
        for w in ServeWorkloadId::ALL {
            assert_eq!(ServeWorkloadId::from_name(w.name()), Some(w));
        }
        assert_eq!(ServeWorkloadId::from_name("no-such-workload"), None);
        assert_eq!(ServeWorkloadId::from_name(""), None);
        assert_eq!(
            ServeWorkloadId::from_name("Union-Find"),
            None,
            "case-sensitive"
        );
    }

    #[test]
    fn default_mix_matches_historical_dispatch() {
        for (k, expect) in [
            ServeWorkloadId::UnionFind,
            ServeWorkloadId::FrontierBfs,
            ServeWorkloadId::LruChurn,
        ]
        .into_iter()
        .enumerate()
        {
            let seed = (k as u64) << 33;
            assert_eq!(ServeWorkloadId::from_mix_seed(seed), expect);
        }
    }

    #[test]
    fn every_registry_entry_runs_and_agrees_between_seq_and_parmem() {
        for w in ServeWorkloadId::ALL {
            let expected = SeqRuntime::new().run(|c| w.run(c, 0xBEEF ^ w as u64, 1));
            let hh = HhRuntime::with_workers(2);
            let got = hh.run(|c| w.run(c, 0xBEEF ^ w as u64, 1));
            assert_eq!(got, expected, "{}", w.name());
            assert_eq!(hh.check_disentangled(), 0, "{}", w.name());
        }
    }
}
