//! Graphs and the BFS benchmark family (`reachability`, `usp`, `usp-tree`,
//! `multi-usp-tree`, §4.2).
//!
//! The paper runs these on the `orkut` social-network graph (≈3 M vertices, 117 M edges,
//! diameter 9). That dataset is not available here, so [`generate`] builds a synthetic
//! stand-in with the properties that matter for the benchmarks' behaviour: heavy-tailed
//! out-degrees, guaranteed reachability from the source, and a small diameter (every
//! vertex has an edge to a vertex of half its index, giving diameter ≈ log₂ n, plus
//! hash-random long-range edges). See DESIGN.md, substitutions.
//!
//! The graph itself is stored in managed memory in compact adjacency-sequence (CSR)
//! form. Per-vertex mutable state — visited flags, distances, ancestor lists — lives in
//! managed arrays allocated by the task that starts the BFS (the root task for the
//! single-BFS benchmarks), which is what makes vertex visits *distant* writes, and, for
//! `usp-tree`, *promoting* writes.

use crate::seq::MSeq;
use hh_api::{hash64, ParCtx};
use hh_objmodel::{ObjKind, ObjPtr};

/// A directed graph in CSR form held in managed memory.
#[derive(Copy, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    offsets: MSeq,
    targets: MSeq,
}

impl Graph {
    /// Out-degree of `v`.
    pub fn degree<C: ParCtx>(&self, ctx: &C, v: usize) -> usize {
        (self.offsets.get(ctx, v + 1) - self.offsets.get(ctx, v)) as usize
    }

    /// The `k`-th out-neighbour of `v`.
    pub fn neighbour<C: ParCtx>(&self, ctx: &C, v: usize, k: usize) -> usize {
        let start = self.offsets.get(ctx, v) as usize;
        self.targets.get(ctx, start + k) as usize
    }
}

/// Generates the synthetic power-law graph with `n` vertices and an average out-degree
/// of roughly `avg_degree`.
pub fn generate<C: ParCtx>(ctx: &C, n: usize, avg_degree: usize, grain: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    // Degree of vertex v: heavy-tailed — a few hubs with large degree, most vertices
    // small — plus one structural edge to v/2 that guarantees reachability from 0 and a
    // logarithmic diameter.
    let degree_of = move |v: usize| -> usize {
        if v == 0 {
            return avg_degree; // the source has ordinary degree
        }
        let h = hash64(seed ^ v as u64);
        let extra = if h.is_multiple_of(97) {
            avg_degree * 16 // hub
        } else {
            (h % (2 * avg_degree as u64 + 1)) as usize
        };
        1 + extra // +1 for the structural edge to v/2
    };
    // Offsets via a (sequential) prefix sum over degrees; the offsets array is modest
    // (n+1 words) compared to the edge array.
    let offsets = MSeq::alloc(ctx, n + 1);
    let mut total = 0u64;
    for v in 0..n {
        offsets.set(ctx, v, total);
        total += degree_of(v) as u64;
    }
    offsets.set(ctx, n, total);
    let m = total as usize;
    // Edge targets filled in parallel per vertex block: each leaf reads its slice of
    // the offsets array in one bulk read, builds the covered edge range in a buffer,
    // and publishes it with one bulk write.
    let targets = MSeq::alloc(ctx, m);
    ctx.par_for(0..n, grain, move |c, vertices| {
        let (lo, hi) = (vertices.start, vertices.end);
        let mut offs = vec![0u64; hi - lo + 1];
        offsets.get_bulk(c, lo, &mut offs);
        let edge_lo = offs[0] as usize;
        let edge_hi = offs[hi - lo] as usize;
        let mut buf = vec![0u64; edge_hi - edge_lo];
        for v in lo..hi {
            let start = offs[v - lo] as usize - edge_lo;
            let end = offs[v - lo + 1] as usize - edge_lo;
            if end == start {
                continue;
            }
            // Structural edge first (to v/2), then hash-random edges.
            buf[start] = (v / 2) as u64;
            for (k, slot) in (start + 1..end).enumerate() {
                buf[slot] = hash64(seed ^ ((v as u64) << 24) ^ k as u64) % n as u64;
            }
        }
        targets.set_bulk(c, edge_lo, &buf);
    });
    Graph {
        n,
        m,
        offsets,
        targets,
    }
}

/// Which BFS variant to run — they differ only in the per-vertex mutable update.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BfsVariant {
    /// Mark reachable vertices with plain (racy but benign) flag writes.
    Reachability,
    /// Record the round number as the distance, marking vertices with compare-and-swap.
    Usp,
    /// Record full shortest-path trees: `A[v] := cons(u, A[u])` on visit — a promoting
    /// pointer write into the root-allocated ancestor array.
    UspTree,
}

/// Mutable per-vertex state for one BFS run. All arrays are allocated by the caller
/// (the root task for the benchmarks), so updates from worker tasks are distant.
pub struct BfsState {
    /// 0 = unvisited, 1 = visited.
    pub visited: MSeq,
    /// Distance from the source (only meaningful for `Usp`).
    pub dist: MSeq,
    /// Ancestor-list heads (only used by `UspTree`).
    pub ancestors: ObjPtr,
    variant: BfsVariant,
}

impl BfsState {
    /// Allocates per-vertex state for a graph of `n` vertices.
    pub fn new<C: ParCtx>(ctx: &C, n: usize, variant: BfsVariant) -> BfsState {
        let ancestors = if variant == BfsVariant::UspTree {
            ctx.alloc_ptr_array(n)
        } else {
            ObjPtr::NULL
        };
        BfsState {
            visited: MSeq::alloc(ctx, n),
            dist: MSeq::alloc(ctx, n),
            ancestors,
            variant,
        }
    }
}

/// Runs one parallel BFS from `source`, returning the number of vertices visited.
///
/// The frontier bookkeeping (which vertices to expand next) is scheduler-side Rust data;
/// the per-vertex state updated at every visit is managed data, preserving the paper's
/// memory-operation mix per variant (Figure 9).
pub fn bfs<C: ParCtx>(ctx: &C, g: &Graph, state: &BfsState, source: usize, grain: usize) -> usize {
    let mut frontier: Vec<u32> = vec![source as u32];
    state.visited.set(ctx, source, 1);
    state.dist.set(ctx, source, 0);
    if state.variant == BfsVariant::UspTree {
        // The source's ancestor list is empty (NULL), which it already is.
    }
    let mut visited_count = 1usize;
    let mut round = 1u64;
    while !frontier.is_empty() {
        let next = expand(ctx, g, state, &frontier, round, grain);
        visited_count += next.len();
        frontier = next;
        round += 1;
    }
    visited_count
}

/// Expands one BFS round: one [`ParCtx::par_map`] task per grain-sized frontier
/// block, each returning the vertices it newly visited; the per-block results are
/// concatenated in frontier order.
fn expand<C: ParCtx>(
    ctx: &C,
    g: &Graph,
    state: &BfsState,
    frontier: &[u32],
    round: u64,
    grain: usize,
) -> Vec<u32> {
    let blocks = ctx.par_map(0..frontier.len(), grain, move |c, r| {
        let mut out = Vec::new();
        for &u in &frontier[r] {
            let u = u as usize;
            let deg = g.degree(c, u);
            for k in 0..deg {
                let v = g.neighbour(c, u, k);
                let newly_visited = match state.variant {
                    BfsVariant::Reachability => {
                        // Plain read + write; the benign race may visit a
                        // vertex twice.
                        if state.visited.get_mut(c, v) == 0 {
                            state.visited.set(c, v, 1);
                            true
                        } else {
                            false
                        }
                    }
                    BfsVariant::Usp | BfsVariant::UspTree => {
                        c.cas_nonptr(state.visited.raw(), v, 0, 1).is_ok()
                    }
                };
                if newly_visited {
                    state.dist.set(c, v, round);
                    if state.variant == BfsVariant::UspTree {
                        // A[v] := u :: A[u]  — allocate the cons cell locally
                        // and write it into the (root-allocated) ancestor
                        // array: a promoting write.
                        let tail = c.read_mut_ptr(state.ancestors, u);
                        let cell = c.alloc(1, 1, ObjKind::Cons);
                        c.write_ptr(cell, 0, tail);
                        c.write_nonptr(cell, 1, u as u64);
                        c.write_ptr(state.ancestors, v, cell);
                    }
                    out.push(v as u32);
                }
            }
        }
        out
    });
    let mut merged = Vec::new();
    for block in blocks {
        merged.extend_from_slice(&block);
    }
    merged
}

/// Runs `copies` independent `usp-tree` BFS instances in parallel over the same graph
/// (`multi-usp-tree`). Returns the total number of visits across the copies.
pub fn multi_usp_tree<C: ParCtx>(
    ctx: &C,
    g: &Graph,
    copies: usize,
    source: usize,
    grain: usize,
) -> usize {
    // One n-ary fork with one task per BFS copy, each owning its private state.
    let tasks: Vec<_> = (0..copies.max(1))
        .map(|_copy| {
            move |c: &C| {
                let state = BfsState::new(c, g.n, BfsVariant::UspTree);
                bfs(c, g, &state, source, grain)
            }
        })
        .collect();
    ctx.join_many(tasks).into_iter().sum()
}

/// Length of the ancestor list recorded for vertex `v` (validation helper).
pub fn ancestor_list_len<C: ParCtx>(ctx: &C, state: &BfsState, v: usize) -> usize {
    let mut cur = ctx.read_mut_ptr(state.ancestors, v);
    let mut len = 0;
    while !cur.is_null() {
        len += 1;
        cur = ctx.read_imm_ptr(cur, 0);
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    fn reference_bfs_distances<C: ParCtx>(ctx: &C, g: &Graph, source: usize) -> Vec<u64> {
        // Plain sequential BFS in Rust for validation.
        let mut dist = vec![u64::MAX; g.n];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for k in 0..g.degree(ctx, u) {
                let v = g.neighbour(ctx, u, k);
                if dist[v] == u64::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    #[test]
    fn generator_produces_reachable_small_diameter_graph() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let g = generate(ctx, 2000, 4, 128, 9);
            assert!(g.m >= g.n, "every vertex has at least its structural edge");
            let dist = reference_bfs_distances(ctx, &g, 0);
            // Everything reachable (via the structural v -> v/2 edges the generator
            // inserts, 0 is reachable from everything; we also need reachability *from*
            // 0 — the random edges plus hubs provide it for the overwhelming majority,
            // and the structural edges make low indices reachable).
            let reachable = dist.iter().filter(|&&d| d != u64::MAX).count();
            assert!(
                reachable > g.n / 2,
                "expected most vertices reachable from the source, got {reachable}/{}",
                g.n
            );
            let max_d = dist
                .iter()
                .filter(|&&d| d != u64::MAX)
                .max()
                .copied()
                .unwrap();
            assert!(max_d <= 40, "diameter-ish bound violated: {max_d}");
        });
    }

    #[test]
    fn usp_distances_match_reference_bfs() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let g = generate(ctx, 1000, 4, 64, 3);
            let expected = reference_bfs_distances(ctx, &g, 0);
            let state = BfsState::new(ctx, g.n, BfsVariant::Usp);
            let visited = bfs(ctx, &g, &state, 0, 16);
            let expected_visited = expected.iter().filter(|&&d| d != u64::MAX).count();
            assert_eq!(visited, expected_visited);
            for (v, &exp) in expected.iter().enumerate() {
                if exp != u64::MAX {
                    assert_eq!(state.visited.get_mut(ctx, v), 1);
                    assert_eq!(state.dist.get_mut(ctx, v), exp, "distance of {v}");
                } else {
                    assert_eq!(state.visited.get_mut(ctx, v), 0);
                }
            }
        });
    }

    #[test]
    fn parallel_usp_tree_promotes_and_matches_distances() {
        // Eager per-fork heaps: the promotion assertion below must not depend on
        // whether the scheduler happened to steal (under the default lazy steal-time
        // heap policy, unstolen leaves run in the parent's heap and their
        // tree-extension writes are same-heap).
        let rt = HhRuntime::new(hh_runtime::HhConfig::eager_heaps(4));
        rt.run(|ctx| {
            let g = generate(ctx, 1500, 4, 64, 5);
            let expected = reference_bfs_distances(ctx, &g, 0);
            let state = BfsState::new(ctx, g.n, BfsVariant::UspTree);
            let _visited = bfs(ctx, &g, &state, 0, 32);
            for (v, &exp) in expected.iter().enumerate() {
                if exp != u64::MAX && exp > 0 {
                    assert_eq!(state.dist.get_mut(ctx, v), exp, "distance of {v}");
                    // The ancestor list of v has exactly dist(v) entries.
                    assert_eq!(
                        ancestor_list_len(ctx, &state, v),
                        exp as usize,
                        "ancestor list of {v}"
                    );
                }
            }
        });
        assert_eq!(rt.check_disentangled(), 0);
        let stats = rt.stats();
        assert!(
            stats.promoted_objects > 0,
            "usp-tree with multiple workers must perform promoting writes"
        );
    }

    #[test]
    fn reachability_visits_everything_usp_visits() {
        let rt = HhRuntime::with_workers(3);
        rt.run(|ctx| {
            let g = generate(ctx, 1000, 4, 64, 7);
            let usp_state = BfsState::new(ctx, g.n, BfsVariant::Usp);
            bfs(ctx, &g, &usp_state, 0, 32);
            let reach_state = BfsState::new(ctx, g.n, BfsVariant::Reachability);
            bfs(ctx, &g, &reach_state, 0, 32);
            for v in 0..g.n {
                assert_eq!(
                    reach_state.visited.get_mut(ctx, v) != 0,
                    usp_state.visited.get_mut(ctx, v) != 0,
                    "visit disagreement at {v}"
                );
            }
        });
    }

    #[test]
    fn multi_usp_tree_runs_independent_copies() {
        let rt = HhRuntime::with_workers(4);
        let total = rt.run(|ctx| {
            let g = generate(ctx, 500, 4, 64, 11);
            let state = BfsState::new(ctx, g.n, BfsVariant::Usp);
            let single = bfs(ctx, &g, &state, 0, 32);
            let multi = multi_usp_tree(ctx, &g, 4, 0, 32);
            assert_eq!(multi, single * 4);
            multi
        });
        assert!(total > 0);
        assert_eq!(rt.check_disentangled(), 0);
    }
}
