//! Dense and sparse matrix benchmarks (`dmm`, `smvm`, §4.1).
//!
//! Matrices hold IEEE-754 doubles stored as bit patterns in managed data arrays. `dmm`
//! multiplies two dense square matrices with the naive O(n³) algorithm parallelized over
//! rows; `smvm` multiplies a sparse matrix in CSR form by a dense vector, parallelized
//! over rows. Both are pure workloads: the result arrays are allocated by the calling
//! task and filled with non-pointer writes, so no promotion can occur.

use crate::seq::MSeq;
use hh_api::{f64_from_bits, f64_to_bits, hash64, ParCtx};

/// A dense row-major `n × n` matrix of doubles in managed memory.
#[derive(Copy, Clone)]
pub struct Dense {
    data: MSeq,
    /// Side length.
    pub n: usize,
}

impl Dense {
    /// Allocates an `n × n` matrix filled by `f(row, col)`.
    pub fn generate<C: ParCtx>(ctx: &C, n: usize, grain: usize, seed: u64) -> Dense {
        let data = crate::seq::tabulate(ctx, n * n, grain, move |i| {
            f64_to_bits((hash64(seed ^ i as u64) % 1000) as f64 / 1000.0)
        });
        Dense { data, n }
    }

    /// Reads element `(i, j)`.
    #[inline]
    pub fn get<C: ParCtx>(&self, ctx: &C, i: usize, j: usize) -> f64 {
        f64_from_bits(self.data.get(ctx, i * self.n + j))
    }

    /// The backing sequence.
    pub fn data(&self) -> MSeq {
        self.data
    }
}

/// `dmm`: naive dense matrix multiplication, one parallel task per block of rows.
///
/// Each leaf bulk-reads its block of `a` rows once, then streams `b` one bulk-read row
/// at a time in a k-major loop (accumulating `out[i][j] += a[i][k] * b[k][j]`, with k
/// ascending so the floating-point sum order matches the textbook i-j-k loop), and
/// publishes the whole output block with a single bulk write — every word of matrix
/// traffic is amortized.
pub fn dmm<C: ParCtx>(ctx: &C, a: &Dense, b: &Dense, rows_grain: usize) -> Dense {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let out = MSeq::alloc(ctx, n * n);
    let (a, b) = (*a, *b);
    ctx.par_for(0..n, rows_grain, move |c, rows| {
        let (lo, rlen) = (rows.start, rows.len());
        let mut a_block = vec![0u64; rlen * n];
        a.data.get_bulk(c, lo * n, &mut a_block);
        let mut acc = vec![0.0f64; rlen * n];
        let mut b_row = vec![0u64; n];
        for k in 0..n {
            b.data.get_bulk(c, k * n, &mut b_row);
            for r in 0..rlen {
                let aik = f64_from_bits(a_block[r * n + k]);
                let acc_row = &mut acc[r * n..(r + 1) * n];
                for (acc_rj, &bkj) in acc_row.iter_mut().zip(b_row.iter()) {
                    *acc_rj += aik * f64_from_bits(bkj);
                }
            }
        }
        let out_block: Vec<u64> = acc.into_iter().map(f64_to_bits).collect();
        out.set_bulk(c, lo * n, &out_block);
    });
    Dense { data: out, n }
}

/// A sparse matrix in CSR form: row offsets, column indices, and values, all in managed
/// arrays. Rows have `nnz_per_row` non-zero entries at hash-random columns.
pub struct Csr {
    /// Number of rows (and columns).
    pub n: usize,
    offsets: MSeq,
    cols: MSeq,
    vals: MSeq,
}

impl Csr {
    /// Generates a random sparse matrix with `nnz_per_row` non-zeros per row.
    pub fn generate<C: ParCtx>(
        ctx: &C,
        n: usize,
        nnz_per_row: usize,
        grain: usize,
        seed: u64,
    ) -> Csr {
        let nnz = n * nnz_per_row;
        let offsets = crate::seq::tabulate(ctx, n + 1, grain, move |i| (i * nnz_per_row) as u64);
        let n_u64 = n as u64;
        let cols =
            crate::seq::tabulate(ctx, nnz, grain, move |k| hash64(seed ^ (k as u64)) % n_u64);
        let vals = crate::seq::tabulate(ctx, nnz, grain, move |k| {
            f64_to_bits((hash64(seed.wrapping_add(1) ^ k as u64) % 100) as f64 / 100.0)
        });
        Csr {
            n,
            offsets,
            cols,
            vals,
        }
    }
}

/// `smvm`: sparse matrix–dense vector product, parallelized over rows. Returns the
/// result vector.
///
/// Each leaf bulk-reads the row-offset slice for its rows plus the column-index and
/// value slices for the covered non-zeros, and publishes its result rows with one bulk
/// write — five amortized operations per leaf instead of four calls per non-zero.
pub fn smvm<C: ParCtx>(ctx: &C, m: &Csr, x: MSeq, rows_grain: usize) -> MSeq {
    assert_eq!(x.len(), m.n);
    let out = MSeq::alloc(ctx, m.n);
    let (offsets, cols, vals) = (m.offsets, m.cols, m.vals);
    ctx.par_for(0..m.n, rows_grain, move |c, rows| {
        let (lo, hi) = (rows.start, rows.end);
        let mut offs = vec![0u64; hi - lo + 1];
        offsets.get_bulk(c, lo, &mut offs);
        let nnz_lo = offs[0] as usize;
        let nnz_hi = offs[hi - lo] as usize;
        let mut col_buf = vec![0u64; nnz_hi - nnz_lo];
        let mut val_buf = vec![0u64; nnz_hi - nnz_lo];
        cols.get_bulk(c, nnz_lo, &mut col_buf);
        vals.get_bulk(c, nnz_lo, &mut val_buf);
        let mut row_out = vec![0u64; hi - lo];
        for i in 0..hi - lo {
            let start = offs[i] as usize - nnz_lo;
            let end = offs[i + 1] as usize - nnz_lo;
            let mut acc = 0.0f64;
            for k in start..end {
                let j = col_buf[k] as usize;
                acc += f64_from_bits(val_buf[k]) * f64_from_bits(x.get(c, j));
            }
            row_out[i] = f64_to_bits(acc);
        }
        out.set_bulk(c, lo, &row_out);
    });
    out
}

/// Deterministic checksum of a vector of doubles (sums a sample, quantized).
pub fn vector_checksum<C: ParCtx>(ctx: &C, v: MSeq) -> u64 {
    let mut acc = 0.0f64;
    let step = (v.len() / 256).max(1);
    let mut i = 0;
    while i < v.len() {
        acc += f64_from_bits(v.get(ctx, i));
        i += step;
    }
    (acc * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn dmm_matches_reference_multiply() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let n = 16;
            let a = Dense::generate(ctx, n, 64, 1);
            let b = Dense::generate(ctx, n, 64, 2);
            let c = dmm(ctx, &a, &b, 4);
            // Reference computation in plain Rust.
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += a.get(ctx, i, k) * b.get(ctx, k, j);
                    }
                    assert!((c.get(ctx, i, j) - acc).abs() < 1e-9);
                }
            }
        });
    }

    #[test]
    fn dmm_parallel_equals_sequential_and_does_not_promote() {
        let n = 24;
        let reference = {
            let rt = SeqRuntime::new();
            rt.run(|ctx| {
                let a = Dense::generate(ctx, n, 64, 1);
                let b = Dense::generate(ctx, n, 64, 2);
                let c = dmm(ctx, &a, &b, 2);
                vector_checksum(ctx, c.data())
            })
        };
        let rt = HhRuntime::with_workers(4);
        let got = rt.run(|ctx| {
            let a = Dense::generate(ctx, n, 64, 1);
            let b = Dense::generate(ctx, n, 64, 2);
            let c = dmm(ctx, &a, &b, 2);
            vector_checksum(ctx, c.data())
        });
        assert_eq!(reference, got);
        assert_eq!(rt.stats().promoted_objects, 0);
        assert_eq!(rt.check_disentangled(), 0);
    }

    #[test]
    fn smvm_matches_reference() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let n = 50;
            let m = Csr::generate(ctx, n, 8, 64, 3);
            let x = crate::seq::tabulate(ctx, n, 64, |i| f64_to_bits(i as f64 / 10.0));
            let y = smvm(ctx, &m, x, 8);
            // Reference for one row.
            let row = 17;
            let start = m.offsets.get(ctx, row) as usize;
            let end = m.offsets.get(ctx, row + 1) as usize;
            let mut acc = 0.0;
            for k in start..end {
                let j = m.cols.get(ctx, k) as usize;
                acc += f64_from_bits(m.vals.get(ctx, k)) * (j as f64 / 10.0);
            }
            assert!((f64_from_bits(y.get(ctx, row)) - acc).abs() < 1e-9);
            assert_eq!(y.len(), n);
        });
    }
}
