//! Immutable sequences of 64-bit elements, with the parallel bulk operations the paper's
//! benchmarks are built from (`Seq` in Figure 1).
//!
//! A sequence is a managed array of non-pointer words ([`ObjKind::ArrayData`]). The
//! sequences are *logically* immutable: they are filled in exactly once by the task tree
//! that builds them (distant non-pointer writes during construction) and only read
//! afterwards (`readImmutable`). Keeping the elements unboxed mirrors the paper's setup
//! — "the elements of the sequences are 64-bit numeric types generated randomly with a
//! hash function" — and is what makes the pure benchmarks promotion-free.

use hh_api::{ParCtx, Rng};
use hh_objmodel::{ObjKind, ObjPtr};

/// A handle to a managed sequence: the underlying array plus its length.
///
/// The handle itself is a plain Rust value (cheap to copy and send between tasks); all
/// element storage is in the managed heap.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MSeq {
    arr: ObjPtr,
    len: usize,
}

impl MSeq {
    /// Wraps an existing data array of length `len`.
    pub fn from_raw(arr: ObjPtr, len: usize) -> MSeq {
        MSeq { arr, len }
    }

    /// The underlying array object.
    pub fn raw(self) -> ObjPtr {
        self.arr
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.len
    }

    /// True if the sequence has no elements.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Reads element `i` (an immutable read).
    #[inline]
    pub fn get<C: ParCtx>(self, ctx: &C, i: usize) -> u64 {
        debug_assert!(i < self.len);
        ctx.read_imm(self.arr, i)
    }

    /// Writes element `i`. Only used while the sequence is being constructed (or by the
    /// imperative benchmarks, which treat the array as mutable).
    #[inline]
    pub fn set<C: ParCtx>(self, ctx: &C, i: usize, v: u64) {
        debug_assert!(i < self.len);
        ctx.write_nonptr(self.arr, i, v);
    }

    /// Reads element `i` through the mutable-read path (used by the imperative
    /// benchmarks on arrays they update in place).
    #[inline]
    pub fn get_mut<C: ParCtx>(self, ctx: &C, i: usize) -> u64 {
        debug_assert!(i < self.len);
        ctx.read_mut(self.arr, i)
    }

    /// Copies the sequence into a Rust vector (test / validation helper).
    pub fn to_vec<C: ParCtx>(self, ctx: &C) -> Vec<u64> {
        (0..self.len).map(|i| self.get(ctx, i)).collect()
    }

    /// Allocates an uninitialized (zero-filled) sequence of length `len`.
    pub fn alloc<C: ParCtx>(ctx: &C, len: usize) -> MSeq {
        MSeq {
            arr: ctx.alloc(0, len, ObjKind::ArrayData),
            len,
        }
    }
}

/// Default sequential grain for the divide-and-conquer operations.
pub const DEFAULT_GRAIN: usize = 2048;

/// Parallel `tabulate`: builds a sequence of length `n` with `f(i)` at index `i`.
///
/// The destination array is allocated by the calling task (hence in an ancestor heap of
/// every worker task); the worker tasks fill disjoint ranges with non-pointer writes.
pub fn tabulate<C, F>(ctx: &C, n: usize, grain: usize, f: F) -> MSeq
where
    C: ParCtx,
    F: Fn(usize) -> u64 + Sync + Copy + Send,
{
    let dest = MSeq::alloc(ctx, n);
    fill_range(ctx, dest, 0, n, grain, f);
    dest
}

fn fill_range<C, F>(ctx: &C, dest: MSeq, lo: usize, hi: usize, grain: usize, f: F)
where
    C: ParCtx,
    F: Fn(usize) -> u64 + Sync + Copy + Send,
{
    if hi - lo <= grain.max(1) {
        for i in lo..hi {
            dest.set(ctx, i, f(i));
        }
        ctx.maybe_collect();
    } else {
        let mid = lo + (hi - lo) / 2;
        ctx.join(
            |c| fill_range(c, dest, lo, mid, grain, f),
            |c| fill_range(c, dest, mid, hi, grain, f),
        );
    }
}

/// Parallel `map`: a new sequence with `f` applied to every element.
pub fn map<C, F>(ctx: &C, s: MSeq, grain: usize, f: F) -> MSeq
where
    C: ParCtx,
    F: Fn(u64) -> u64 + Sync + Copy + Send,
{
    let dest = MSeq::alloc(ctx, s.len());
    map_range(ctx, s, dest, 0, s.len(), grain, f);
    dest
}

fn map_range<C, F>(ctx: &C, src: MSeq, dest: MSeq, lo: usize, hi: usize, grain: usize, f: F)
where
    C: ParCtx,
    F: Fn(u64) -> u64 + Sync + Copy + Send,
{
    if hi - lo <= grain.max(1) {
        for i in lo..hi {
            dest.set(ctx, i, f(src.get(ctx, i)));
        }
        ctx.maybe_collect();
    } else {
        let mid = lo + (hi - lo) / 2;
        ctx.join(
            |c| map_range(c, src, dest, lo, mid, grain, f),
            |c| map_range(c, src, dest, mid, hi, grain, f),
        );
    }
}

/// Parallel `reduce` with a commutative, associative combiner.
pub fn reduce<C, F>(ctx: &C, s: MSeq, grain: usize, neutral: u64, op: F) -> u64
where
    C: ParCtx,
    F: Fn(u64, u64) -> u64 + Sync + Copy + Send,
{
    reduce_range(ctx, s, 0, s.len(), grain, neutral, op)
}

fn reduce_range<C, F>(
    ctx: &C,
    s: MSeq,
    lo: usize,
    hi: usize,
    grain: usize,
    neutral: u64,
    op: F,
) -> u64
where
    C: ParCtx,
    F: Fn(u64, u64) -> u64 + Sync + Copy + Send,
{
    if hi - lo <= grain.max(1) {
        let mut acc = neutral;
        for i in lo..hi {
            acc = op(acc, s.get(ctx, i));
        }
        acc
    } else {
        let mid = lo + (hi - lo) / 2;
        let (a, b) = ctx.join(
            |c| reduce_range(c, s, lo, mid, grain, neutral, op),
            |c| reduce_range(c, s, mid, hi, grain, neutral, op),
        );
        op(a, b)
    }
}

/// Parallel `filter`: the elements satisfying `pred`, in their original order.
///
/// Two phases over grain-sized blocks: count matches per block in parallel, compute
/// block offsets sequentially (there are only `n / grain` of them), then write the
/// surviving elements into the destination in parallel.
pub fn filter<C, F>(ctx: &C, s: MSeq, grain: usize, pred: F) -> MSeq
where
    C: ParCtx,
    F: Fn(u64) -> bool + Sync + Copy + Send,
{
    let n = s.len();
    let grain = grain.max(1);
    let n_blocks = n.div_ceil(grain).max(1);
    // Per-block match counts, written in parallel into a managed array.
    let counts = MSeq::alloc(ctx, n_blocks);
    count_blocks(ctx, s, counts, 0, n_blocks, grain, pred);
    // Exclusive prefix sum over the (few) block counts.
    let mut offsets = Vec::with_capacity(n_blocks + 1);
    let mut total = 0u64;
    for b in 0..n_blocks {
        offsets.push(total);
        total += counts.get(ctx, b);
    }
    offsets.push(total);
    let dest = MSeq::alloc(ctx, total as usize);
    write_blocks(ctx, s, dest, &offsets, 0, n_blocks, grain, pred);
    dest
}

fn count_blocks<C, F>(
    ctx: &C,
    s: MSeq,
    counts: MSeq,
    blo: usize,
    bhi: usize,
    grain: usize,
    pred: F,
) where
    C: ParCtx,
    F: Fn(u64) -> bool + Sync + Copy + Send,
{
    if bhi - blo <= 1 {
        if blo < bhi {
            let lo = blo * grain;
            let hi = ((blo + 1) * grain).min(s.len());
            let mut c = 0u64;
            for i in lo..hi {
                if pred(s.get(ctx, i)) {
                    c += 1;
                }
            }
            counts.set(ctx, blo, c);
        }
    } else {
        let mid = blo + (bhi - blo) / 2;
        ctx.join(
            |c| count_blocks(c, s, counts, blo, mid, grain, pred),
            |c| count_blocks(c, s, counts, mid, bhi, grain, pred),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn write_blocks<C, F>(
    ctx: &C,
    s: MSeq,
    dest: MSeq,
    offsets: &[u64],
    blo: usize,
    bhi: usize,
    grain: usize,
    pred: F,
) where
    C: ParCtx,
    F: Fn(u64) -> bool + Sync + Copy + Send,
{
    if bhi - blo <= 1 {
        if blo < bhi {
            let lo = blo * grain;
            let hi = ((blo + 1) * grain).min(s.len());
            let mut out = offsets[blo] as usize;
            for i in lo..hi {
                let v = s.get(ctx, i);
                if pred(v) {
                    dest.set(ctx, out, v);
                    out += 1;
                }
            }
        }
    } else {
        let mid = blo + (bhi - blo) / 2;
        ctx.join(
            |c| write_blocks(c, s, dest, offsets, blo, mid, grain, pred),
            |c| write_blocks(c, s, dest, offsets, mid, bhi, grain, pred),
        );
    }
}

/// Builds the standard random input sequence of the paper: element `i` is
/// `hash64(seed ^ i)`.
pub fn random_input<C: ParCtx>(ctx: &C, n: usize, grain: usize, seed: u64) -> MSeq {
    tabulate(ctx, n, grain, move |i| hh_api::hash64(seed ^ i as u64))
}

/// Builds a sequence from a Rust slice (test helper).
pub fn from_slice<C: ParCtx>(ctx: &C, xs: &[u64]) -> MSeq {
    let s = MSeq::alloc(ctx, xs.len());
    for (i, &x) in xs.iter().enumerate() {
        s.set(ctx, i, x);
    }
    s
}

/// A quick deterministic checksum of a sequence (used to validate benchmark runs).
pub fn checksum<C: ParCtx>(ctx: &C, s: MSeq) -> u64 {
    let mut acc = 0u64;
    let mut rng = Rng::new(s.len() as u64 + 1);
    let samples = s.len().min(256);
    for _ in 0..samples {
        let i = (rng.next_u64() % s.len().max(1) as u64) as usize;
        acc = acc
            .wrapping_mul(0x100000001B3)
            .wrapping_add(s.get(ctx, i).wrapping_add(i as u64));
    }
    acc.wrapping_add(s.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_baselines::SeqRuntime;
    use hh_api::Runtime as _;
    use hh_runtime::HhRuntime;
    use proptest::prelude::*;

    #[test]
    fn tabulate_map_reduce_filter_roundtrip_sequential() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let s = tabulate(ctx, 1000, 64, |i| i as u64);
            assert_eq!(s.len(), 1000);
            assert_eq!(s.get(ctx, 0), 0);
            assert_eq!(s.get(ctx, 999), 999);
            let doubled = map(ctx, s, 64, |x| x * 2);
            assert_eq!(doubled.get(ctx, 500), 1000);
            let sum = reduce(ctx, doubled, 64, 0, |a, b| a + b);
            assert_eq!(sum, (0..1000u64).map(|x| x * 2).sum());
            let evens = filter(ctx, s, 64, |x| x % 2 == 0);
            assert_eq!(evens.len(), 500);
            assert_eq!(evens.get(ctx, 1), 2);
            assert_eq!(evens.get(ctx, 499), 998);
        });
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let expected = {
            let rt = SeqRuntime::new();
            rt.run(|ctx| {
                let s = random_input(ctx, 5000, 128, 7);
                let m = map(ctx, s, 128, |x| x ^ (x >> 3));
                let f = filter(ctx, m, 128, |x| x % 3 == 0);
                (
                    reduce(ctx, m, 128, 0, u64::wrapping_add),
                    f.len(),
                    f.to_vec(ctx),
                )
            })
        };
        let rt = HhRuntime::with_workers(4);
        let got = rt.run(|ctx| {
            let s = random_input(ctx, 5000, 128, 7);
            let m = map(ctx, s, 128, |x| x ^ (x >> 3));
            let f = filter(ctx, m, 128, |x| x % 3 == 0);
            (
                reduce(ctx, m, 128, 0, u64::wrapping_add),
                f.len(),
                f.to_vec(ctx),
            )
        });
        assert_eq!(expected.0, got.0);
        assert_eq!(expected.1, got.1);
        assert_eq!(expected.2, got.2);
        assert_eq!(rt.check_disentangled(), 0);
        assert_eq!(rt.stats().promoted_objects, 0, "pure sequence ops must not promote");
    }

    #[test]
    fn empty_and_single_element_sequences() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let empty = tabulate(ctx, 0, 16, |i| i as u64);
            assert!(empty.is_empty());
            assert_eq!(reduce(ctx, empty, 16, 42, |a, b| a + b), 42);
            let one = tabulate(ctx, 1, 16, |_| 9);
            assert_eq!(one.to_vec(ctx), vec![9]);
            let none = filter(ctx, one, 16, |x| x > 100);
            assert!(none.is_empty());
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_filter_equals_std_filter(xs in proptest::collection::vec(any::<u64>(), 0..400), grain in 1usize..64) {
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| {
                let s = from_slice(ctx, &xs);
                filter(ctx, s, grain, |x| x % 5 < 2).to_vec(ctx)
            });
            let expected: Vec<u64> = xs.iter().copied().filter(|x| x % 5 < 2).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_reduce_equals_std_sum(xs in proptest::collection::vec(any::<u64>(), 0..400), grain in 1usize..64) {
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| {
                let s = from_slice(ctx, &xs);
                reduce(ctx, s, grain, 0, u64::wrapping_add)
            });
            let expected = xs.iter().copied().fold(0u64, u64::wrapping_add);
            prop_assert_eq!(got, expected);
        }
    }
}
