//! Immutable sequences of 64-bit elements, with the parallel bulk operations the paper's
//! benchmarks are built from (`Seq` in Figure 1).
//!
//! A sequence is a managed array of non-pointer words ([`ObjKind::ArrayData`]). The
//! sequences are *logically* immutable: they are filled in exactly once by the task tree
//! that builds them (distant non-pointer writes during construction) and only read
//! afterwards (`readImmutable`). Keeping the elements unboxed mirrors the paper's setup
//! — "the elements of the sequences are 64-bit numeric types generated randomly with a
//! hash function" — and is what makes the pure benchmarks promotion-free.

use hh_api::{ParCtx, Rng};
use hh_objmodel::{ObjKind, ObjPtr};

/// A handle to a managed sequence: the underlying array plus its length.
///
/// The handle itself is a plain Rust value (cheap to copy and send between tasks); all
/// element storage is in the managed heap.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MSeq {
    arr: ObjPtr,
    len: usize,
}

impl MSeq {
    /// Wraps an existing data array of length `len`.
    pub fn from_raw(arr: ObjPtr, len: usize) -> MSeq {
        MSeq { arr, len }
    }

    /// The underlying array object.
    pub fn raw(self) -> ObjPtr {
        self.arr
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.len
    }

    /// True if the sequence has no elements.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Reads element `i` (an immutable read).
    #[inline]
    pub fn get<C: ParCtx>(self, ctx: &C, i: usize) -> u64 {
        debug_assert!(i < self.len);
        ctx.read_imm(self.arr, i)
    }

    /// Writes element `i`. Only used while the sequence is being constructed (or by the
    /// imperative benchmarks, which treat the array as mutable).
    #[inline]
    pub fn set<C: ParCtx>(self, ctx: &C, i: usize, v: u64) {
        debug_assert!(i < self.len);
        ctx.write_nonptr(self.arr, i, v);
    }

    /// Reads element `i` through the mutable-read path (used by the imperative
    /// benchmarks on arrays they update in place).
    #[inline]
    pub fn get_mut<C: ParCtx>(self, ctx: &C, i: usize) -> u64 {
        debug_assert!(i < self.len);
        ctx.read_mut(self.arr, i)
    }

    /// Reads elements `start .. start + out.len()` in one bulk immutable read.
    #[inline]
    pub fn get_bulk<C: ParCtx>(self, ctx: &C, start: usize, out: &mut [u64]) {
        debug_assert!(start + out.len() <= self.len);
        ctx.read_imm_bulk(self.arr, start, out);
    }

    /// Reads elements `start .. start + out.len()` through the mutable-read path in one
    /// bulk operation (imperative benchmarks on arrays they update in place).
    #[inline]
    pub fn get_mut_bulk<C: ParCtx>(self, ctx: &C, start: usize, out: &mut [u64]) {
        debug_assert!(start + out.len() <= self.len);
        ctx.read_mut_bulk(self.arr, start, out);
    }

    /// Writes `vals` at `start .. start + vals.len()` in one bulk non-pointer write.
    #[inline]
    pub fn set_bulk<C: ParCtx>(self, ctx: &C, start: usize, vals: &[u64]) {
        debug_assert!(start + vals.len() <= self.len);
        ctx.write_nonptr_bulk(self.arr, start, vals);
    }

    /// Fills `start .. start + len` with `val` in one bulk operation.
    #[inline]
    pub fn fill<C: ParCtx>(self, ctx: &C, start: usize, len: usize, val: u64) {
        debug_assert!(start + len <= self.len);
        ctx.fill_nonptr(self.arr, start, len, val);
    }

    /// Copies `len` elements from `self[src_start..]` into `dest[dest_start..]` with a
    /// single object→object range copy.
    #[inline]
    pub fn copy_to<C: ParCtx>(
        self,
        ctx: &C,
        src_start: usize,
        dest: MSeq,
        dest_start: usize,
        len: usize,
    ) {
        debug_assert!(src_start + len <= self.len);
        debug_assert!(dest_start + len <= dest.len);
        ctx.copy_nonptr(self.arr, src_start, dest.arr, dest_start, len);
    }

    /// Copies the sequence into a Rust vector (test / validation helper).
    pub fn to_vec<C: ParCtx>(self, ctx: &C) -> Vec<u64> {
        let mut out = vec![0u64; self.len];
        self.get_bulk(ctx, 0, &mut out);
        out
    }

    /// Allocates an uninitialized (zero-filled) sequence of length `len`.
    pub fn alloc<C: ParCtx>(ctx: &C, len: usize) -> MSeq {
        MSeq {
            arr: ctx.alloc(0, len, ObjKind::ArrayData),
            len,
        }
    }
}

/// Default sequential grain for the divide-and-conquer operations.
pub const DEFAULT_GRAIN: usize = 2048;

/// Parallel `tabulate`: builds a sequence of length `n` with `f(i)` at index `i`.
///
/// The destination array is allocated by the calling task (hence in an ancestor heap of
/// every worker task); [`ParCtx::par_for`] hands each leaf task a disjoint subrange,
/// which it computes into a stack-side buffer and publishes with one bulk write.
pub fn tabulate<C, F>(ctx: &C, n: usize, grain: usize, f: F) -> MSeq
where
    C: ParCtx,
    F: Fn(usize) -> u64 + Sync + Copy + Send,
{
    let dest = MSeq::alloc(ctx, n);
    ctx.par_for(0..n, grain, move |c, r| {
        let lo = r.start;
        let buf: Vec<u64> = r.map(f).collect();
        dest.set_bulk(c, lo, &buf);
    });
    dest
}

/// Parallel `map`: a new sequence with `f` applied to every element.
///
/// Each leaf bulk-reads its subrange, applies `f` in a buffer, and bulk-writes the
/// result — two amortized operations per grain instead of two virtual calls per word.
pub fn map<C, F>(ctx: &C, s: MSeq, grain: usize, f: F) -> MSeq
where
    C: ParCtx,
    F: Fn(u64) -> u64 + Sync + Copy + Send,
{
    let dest = MSeq::alloc(ctx, s.len());
    ctx.par_for(0..s.len(), grain, move |c, r| {
        let (lo, hi) = (r.start, r.end);
        let mut buf = vec![0u64; hi - lo];
        s.get_bulk(c, lo, &mut buf);
        for x in buf.iter_mut() {
            *x = f(*x);
        }
        dest.set_bulk(c, lo, &buf);
    });
    dest
}

/// Parallel `reduce` with a commutative, associative combiner.
///
/// One [`ParCtx::par_map`] task per grain-sized block; each block bulk-reads its slice
/// and folds it locally, and the per-block partials are folded at the end.
pub fn reduce<C, F>(ctx: &C, s: MSeq, grain: usize, neutral: u64, op: F) -> u64
where
    C: ParCtx,
    F: Fn(u64, u64) -> u64 + Sync + Copy + Send,
{
    ctx.par_map(0..s.len(), grain, move |c, r| {
        let mut buf = vec![0u64; r.len()];
        s.get_bulk(c, r.start, &mut buf);
        buf.into_iter().fold(neutral, op)
    })
    .into_iter()
    .fold(neutral, op)
}

/// Parallel `filter`: the elements satisfying `pred`, in their original order.
///
/// Two phases over grain-sized blocks: count matches per block in parallel, compute
/// block offsets sequentially (there are only `n / grain` of them), then write the
/// surviving elements into the destination in parallel.
pub fn filter<C, F>(ctx: &C, s: MSeq, grain: usize, pred: F) -> MSeq
where
    C: ParCtx,
    F: Fn(u64) -> bool + Sync + Copy + Send,
{
    let n = s.len();
    let grain = grain.max(1);
    // Phase 1: per-block match counts ([`ParCtx::par_map`] owns the block arithmetic;
    // each block is one bulk read).
    let counts = ctx.par_map(0..n, grain, move |c, r| {
        let mut buf = vec![0u64; r.len()];
        s.get_bulk(c, r.start, &mut buf);
        buf.into_iter().filter(|&x| pred(x)).count() as u64
    });
    // Exclusive prefix sum over the (few) block counts.
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut total = 0u64;
    for &c in &counts {
        offsets.push(total);
        total += c;
    }
    offsets.push(total);
    // Phase 2: each block filters its slice in a buffer and publishes it at the
    // block's offset with one bulk write. `par_map` blocks are grain-aligned, so a
    // block's index is `r.start / grain`.
    let dest = MSeq::alloc(ctx, total as usize);
    let offsets = &offsets;
    ctx.par_map(0..n, grain, move |c, r| {
        let b = r.start / grain;
        let mut buf = vec![0u64; r.len()];
        s.get_bulk(c, r.start, &mut buf);
        buf.retain(|&x| pred(x));
        dest.set_bulk(c, offsets[b] as usize, &buf);
    });
    dest
}

/// Builds the standard random input sequence of the paper: element `i` is
/// `hash64(seed ^ i)`.
pub fn random_input<C: ParCtx>(ctx: &C, n: usize, grain: usize, seed: u64) -> MSeq {
    tabulate(ctx, n, grain, move |i| hh_api::hash64(seed ^ i as u64))
}

/// Builds a sequence from a Rust slice (test helper).
pub fn from_slice<C: ParCtx>(ctx: &C, xs: &[u64]) -> MSeq {
    let s = MSeq::alloc(ctx, xs.len());
    s.set_bulk(ctx, 0, xs);
    s
}

/// A quick deterministic checksum of a sequence (used to validate benchmark runs).
pub fn checksum<C: ParCtx>(ctx: &C, s: MSeq) -> u64 {
    let mut acc = 0u64;
    let mut rng = Rng::new(s.len() as u64 + 1);
    let samples = s.len().min(256);
    for _ in 0..samples {
        let i = (rng.next_u64() % s.len().max(1) as u64) as usize;
        acc = acc
            .wrapping_mul(0x100000001B3)
            .wrapping_add(s.get(ctx, i).wrapping_add(i as u64));
    }
    acc.wrapping_add(s.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn tabulate_map_reduce_filter_roundtrip_sequential() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let s = tabulate(ctx, 1000, 64, |i| i as u64);
            assert_eq!(s.len(), 1000);
            assert_eq!(s.get(ctx, 0), 0);
            assert_eq!(s.get(ctx, 999), 999);
            let doubled = map(ctx, s, 64, |x| x * 2);
            assert_eq!(doubled.get(ctx, 500), 1000);
            let sum = reduce(ctx, doubled, 64, 0, |a, b| a + b);
            assert_eq!(sum, (0..1000u64).map(|x| x * 2).sum());
            let evens = filter(ctx, s, 64, |x| x % 2 == 0);
            assert_eq!(evens.len(), 500);
            assert_eq!(evens.get(ctx, 1), 2);
            assert_eq!(evens.get(ctx, 499), 998);
        });
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let expected = {
            let rt = SeqRuntime::new();
            rt.run(|ctx| {
                let s = random_input(ctx, 5000, 128, 7);
                let m = map(ctx, s, 128, |x| x ^ (x >> 3));
                let f = filter(ctx, m, 128, |x| x % 3 == 0);
                (
                    reduce(ctx, m, 128, 0, u64::wrapping_add),
                    f.len(),
                    f.to_vec(ctx),
                )
            })
        };
        let rt = HhRuntime::with_workers(4);
        let got = rt.run(|ctx| {
            let s = random_input(ctx, 5000, 128, 7);
            let m = map(ctx, s, 128, |x| x ^ (x >> 3));
            let f = filter(ctx, m, 128, |x| x % 3 == 0);
            (
                reduce(ctx, m, 128, 0, u64::wrapping_add),
                f.len(),
                f.to_vec(ctx),
            )
        });
        assert_eq!(expected.0, got.0);
        assert_eq!(expected.1, got.1);
        assert_eq!(expected.2, got.2);
        assert_eq!(rt.check_disentangled(), 0);
        assert_eq!(
            rt.stats().promoted_objects,
            0,
            "pure sequence ops must not promote"
        );
    }

    #[test]
    fn empty_and_single_element_sequences() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let empty = tabulate(ctx, 0, 16, |i| i as u64);
            assert!(empty.is_empty());
            assert_eq!(reduce(ctx, empty, 16, 42, |a, b| a + b), 42);
            let one = tabulate(ctx, 1, 16, |_| 9);
            assert_eq!(one.to_vec(ctx), vec![9]);
            let none = filter(ctx, one, 16, |x| x > 100);
            assert!(none.is_empty());
        });
    }

    // Randomized (deterministic-seed) property checks over random lengths and grains.
    #[test]
    fn prop_filter_equals_std_filter() {
        let mut r = Rng::new(101);
        for _ in 0..16 {
            let len = (r.next_u64() % 400) as usize;
            let grain = 1 + (r.next_u64() % 63) as usize;
            let xs: Vec<u64> = (0..len).map(|_| r.next_u64()).collect();
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| {
                let s = from_slice(ctx, &xs);
                filter(ctx, s, grain, |x| x % 5 < 2).to_vec(ctx)
            });
            let expected: Vec<u64> = xs.iter().copied().filter(|x| x % 5 < 2).collect();
            assert_eq!(got, expected, "len={len} grain={grain}");
        }
    }

    #[test]
    fn prop_reduce_equals_std_sum() {
        let mut r = Rng::new(103);
        for _ in 0..16 {
            let len = (r.next_u64() % 400) as usize;
            let grain = 1 + (r.next_u64() % 63) as usize;
            let xs: Vec<u64> = (0..len).map(|_| r.next_u64()).collect();
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| {
                let s = from_slice(ctx, &xs);
                reduce(ctx, s, grain, 0, u64::wrapping_add)
            });
            let expected = xs.iter().copied().fold(0u64, u64::wrapping_add);
            assert_eq!(got, expected, "len={len} grain={grain}");
        }
    }
}
