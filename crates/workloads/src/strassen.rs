//! Strassen matrix multiplication over quadtree matrices (`strassen`, §4.1).
//!
//! Matrices are represented as quadtrees whose leaves are dense `LEAF × LEAF` blocks of
//! doubles held in managed data arrays, exactly as in the paper ("the matrices are
//! represented by quadtrees with leaves of vectors of elements"). Internal nodes are
//! immutable managed objects with four pointer fields. The recursion computes Strassen's
//! seven products, the top levels in parallel.

use hh_api::{f64_from_bits, f64_to_bits, hash64, ParCtx};
use hh_objmodel::{ObjKind, ObjPtr};

/// Side length of a leaf block.
pub const LEAF: usize = 16;

/// A quadtree matrix: either a `LEAF×LEAF` dense block or four quadrants
/// (NW, NE, SW, SE). The Rust-side handle records the side length; the managed objects
/// carry the data.
#[derive(Copy, Clone)]
pub struct QMat {
    node: ObjPtr,
    /// Side length of this (sub)matrix.
    pub n: usize,
}

impl QMat {
    /// The managed node backing this matrix.
    pub fn raw(self) -> ObjPtr {
        self.node
    }
}

fn leaf_alloc<C: ParCtx>(ctx: &C) -> ObjPtr {
    ctx.alloc(0, LEAF * LEAF, ObjKind::Leaf)
}

fn node_alloc<C: ParCtx>(ctx: &C, nw: ObjPtr, ne: ObjPtr, sw: ObjPtr, se: ObjPtr) -> ObjPtr {
    let n = ctx.alloc(4, 0, ObjKind::Node);
    ctx.write_ptr(n, 0, nw);
    ctx.write_ptr(n, 1, ne);
    ctx.write_ptr(n, 2, sw);
    ctx.write_ptr(n, 3, se);
    n
}

fn child<C: ParCtx>(ctx: &C, m: QMat, k: usize) -> QMat {
    QMat {
        node: ctx.read_imm_ptr(m.node, k),
        n: m.n / 2,
    }
}

/// Generates an `n × n` quadtree matrix (n must be a power of two ≥ [`LEAF`]) whose
/// element `(i, j)` is a hash of the seed and position.
pub fn generate<C: ParCtx>(ctx: &C, n: usize, seed: u64, grain: usize) -> QMat {
    assert!(
        n >= LEAF && n.is_power_of_two(),
        "n must be a power of two >= LEAF"
    );
    gen_rec(ctx, n, 0, 0, seed, grain)
}

fn gen_rec<C: ParCtx>(ctx: &C, n: usize, row: usize, col: usize, seed: u64, grain: usize) -> QMat {
    if n == LEAF {
        let leaf = leaf_alloc(ctx);
        // Build the whole block in a buffer and publish it with one bulk write.
        let mut buf = [0u64; LEAF * LEAF];
        for i in 0..LEAF {
            for j in 0..LEAF {
                let v = (hash64(seed ^ ((row + i) as u64) << 20 ^ (col + j) as u64) % 100) as f64
                    / 100.0;
                buf[i * LEAF + j] = f64_to_bits(v);
            }
        }
        ctx.write_nonptr_bulk(leaf, 0, &buf);
        ctx.maybe_collect();
        return QMat { node: leaf, n };
    }
    let h = n / 2;
    let build = |c: &C, which: usize| -> QMat {
        match which {
            0 => gen_rec(c, h, row, col, seed, grain),
            1 => gen_rec(c, h, row, col + h, seed, grain),
            2 => gen_rec(c, h, row + h, col, seed, grain),
            _ => gen_rec(c, h, row + h, col + h, seed, grain),
        }
    };
    let quads = if n > grain {
        // A 4-ary fork: one task per quadrant.
        ctx.join_many((0..4).map(|which| move |c: &C| build(c, which)).collect())
    } else {
        (0..4).map(|which| build(ctx, which)).collect()
    };
    QMat {
        node: node_alloc(
            ctx,
            quads[0].node,
            quads[1].node,
            quads[2].node,
            quads[3].node,
        ),
        n,
    }
}

/// Element-wise combination of two equally shaped quadtrees.
fn zip<C: ParCtx>(ctx: &C, a: QMat, b: QMat, sub: bool) -> QMat {
    debug_assert_eq!(a.n, b.n);
    if a.n == LEAF {
        let leaf = leaf_alloc(ctx);
        // Two bulk immutable reads, combine in a buffer, one bulk write.
        let mut xs = [0u64; LEAF * LEAF];
        let mut ys = [0u64; LEAF * LEAF];
        ctx.read_imm_bulk(a.node, 0, &mut xs);
        ctx.read_imm_bulk(b.node, 0, &mut ys);
        for (x, &y) in xs.iter_mut().zip(ys.iter()) {
            let (xf, yf) = (f64_from_bits(*x), f64_from_bits(y));
            *x = f64_to_bits(if sub { xf - yf } else { xf + yf });
        }
        ctx.write_nonptr_bulk(leaf, 0, &xs);
        return QMat {
            node: leaf,
            n: LEAF,
        };
    }
    let parts: Vec<ObjPtr> = (0..4)
        .map(|k| zip(ctx, child(ctx, a, k), child(ctx, b, k), sub).node)
        .collect();
    QMat {
        node: node_alloc(ctx, parts[0], parts[1], parts[2], parts[3]),
        n: a.n,
    }
}

fn add<C: ParCtx>(ctx: &C, a: QMat, b: QMat) -> QMat {
    zip(ctx, a, b, false)
}

fn sub<C: ParCtx>(ctx: &C, a: QMat, b: QMat) -> QMat {
    zip(ctx, a, b, true)
}

fn leaf_mul<C: ParCtx>(ctx: &C, a: QMat, b: QMat) -> QMat {
    let out = leaf_alloc(ctx);
    // Bulk-read both operand blocks once, multiply in registers/stack, publish with
    // one bulk write.
    let mut xs = [0u64; LEAF * LEAF];
    let mut ys = [0u64; LEAF * LEAF];
    ctx.read_imm_bulk(a.node, 0, &mut xs);
    ctx.read_imm_bulk(b.node, 0, &mut ys);
    let mut buf = [0u64; LEAF * LEAF];
    for i in 0..LEAF {
        for j in 0..LEAF {
            let mut acc = 0.0f64;
            for k in 0..LEAF {
                acc += f64_from_bits(xs[i * LEAF + k]) * f64_from_bits(ys[k * LEAF + j]);
            }
            buf[i * LEAF + j] = f64_to_bits(acc);
        }
    }
    ctx.write_nonptr_bulk(out, 0, &buf);
    QMat { node: out, n: LEAF }
}

/// Strassen multiplication. Recursion levels with `n > parallel_cutoff` evaluate their
/// seven products in parallel.
pub fn strassen<C: ParCtx>(ctx: &C, a: QMat, b: QMat, parallel_cutoff: usize) -> QMat {
    debug_assert_eq!(a.n, b.n);
    if a.n == LEAF {
        let r = leaf_mul(ctx, a, b);
        ctx.maybe_collect();
        return r;
    }
    let (a11, a12, a21, a22) = (
        child(ctx, a, 0),
        child(ctx, a, 1),
        child(ctx, a, 2),
        child(ctx, a, 3),
    );
    let (b11, b12, b21, b22) = (
        child(ctx, b, 0),
        child(ctx, b, 1),
        child(ctx, b, 2),
        child(ctx, b, 3),
    );

    let m = |c: &C, which: usize| -> QMat {
        match which {
            0 => {
                let x = add(c, a11, a22);
                let y = add(c, b11, b22);
                strassen(c, x, y, parallel_cutoff)
            }
            1 => {
                let x = add(c, a21, a22);
                strassen(c, x, b11, parallel_cutoff)
            }
            2 => {
                let y = sub(c, b12, b22);
                strassen(c, a11, y, parallel_cutoff)
            }
            3 => {
                let y = sub(c, b21, b11);
                strassen(c, a22, y, parallel_cutoff)
            }
            4 => {
                let x = add(c, a11, a12);
                strassen(c, x, b22, parallel_cutoff)
            }
            5 => {
                let x = sub(c, a21, a11);
                let y = add(c, b11, b12);
                strassen(c, x, y, parallel_cutoff)
            }
            _ => {
                let x = sub(c, a12, a22);
                let y = add(c, b21, b22);
                strassen(c, x, y, parallel_cutoff)
            }
        }
    };

    let ms: Vec<QMat> = if a.n > parallel_cutoff {
        // The seven Strassen products as one 7-ary fork.
        ctx.join_many((0..7).map(|which| move |c: &C| m(c, which)).collect())
    } else {
        (0..7).map(|which| m(ctx, which)).collect()
    };
    let [m1, m2, m3, m4, m5, m6, m7]: [QMat; 7] = ms
        .try_into()
        .unwrap_or_else(|_| unreachable!("exactly seven products"));

    let c11 = add(ctx, sub(ctx, add(ctx, m1, m4), m5), m7);
    let c12 = add(ctx, m3, m5);
    let c21 = add(ctx, m2, m4);
    let c22 = add(ctx, add(ctx, sub(ctx, m1, m2), m3), m6);
    QMat {
        node: node_alloc(ctx, c11.node, c12.node, c21.node, c22.node),
        n: a.n,
    }
}

/// Reads element `(i, j)` of a quadtree matrix (validation helper).
pub fn get<C: ParCtx>(ctx: &C, m: QMat, i: usize, j: usize) -> f64 {
    if m.n == LEAF {
        f64_from_bits(ctx.read_imm(m.node, i * LEAF + j))
    } else {
        let h = m.n / 2;
        let (qi, qj) = (i / h, j / h);
        let k = qi * 2 + qj;
        get(ctx, child(ctx, m, k), i % h, j % h)
    }
}

/// Deterministic checksum over a sample of entries.
pub fn checksum<C: ParCtx>(ctx: &C, m: QMat) -> u64 {
    let mut acc = 0.0;
    let step = (m.n / 16).max(1);
    let mut i = 0;
    while i < m.n {
        acc += get(ctx, m, i, (i * 7 + 3) % m.n);
        i += step;
    }
    (acc * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn strassen_matches_naive_multiplication() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let n = 2 * LEAF;
            let a = generate(ctx, n, 1, LEAF);
            let b = generate(ctx, n, 2, LEAF);
            let c = strassen(ctx, a, b, LEAF);
            // Naive reference on a few entries.
            for &(i, j) in &[(0usize, 0usize), (3, 17), (20, 5), (31, 31)] {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += get(ctx, a, i, k) * get(ctx, b, k, j);
                }
                assert!(
                    (get(ctx, c, i, j) - acc).abs() < 1e-6,
                    "mismatch at ({i},{j}): {} vs {}",
                    get(ctx, c, i, j),
                    acc
                );
            }
        });
    }

    #[test]
    fn parallel_strassen_matches_sequential_checksum() {
        let n = 4 * LEAF;
        let expected = {
            let rt = SeqRuntime::new();
            rt.run(|ctx| {
                let a = generate(ctx, n, 1, LEAF);
                let b = generate(ctx, n, 2, LEAF);
                checksum(ctx, strassen(ctx, a, b, LEAF))
            })
        };
        let rt = HhRuntime::with_workers(4);
        let got = rt.run(|ctx| {
            let a = generate(ctx, n, 1, LEAF);
            let b = generate(ctx, n, 2, LEAF);
            checksum(ctx, strassen(ctx, a, b, LEAF))
        });
        assert_eq!(expected, got);
        assert_eq!(rt.check_disentangled(), 0);
    }
}
