//! # hh-workloads — the benchmark suite and its substrates
//!
//! Every benchmark of the paper's evaluation (§4.1 pure, §4.2 imperative), implemented
//! once, generically, against the [`ParCtx`] interface so that the same
//! code runs on the hierarchical-heap runtime and on all three baselines:
//!
//! **Pure** (§4.1): `fib`, `tabulate`, `map`, `reduce`, `filter`, `msort-pure`, `dmm`,
//! `smvm`, `strassen`, `raytracer`.
//!
//! **Imperative** (§4.2): `msort`, `dedup`, `tourney`, `reachability`, `usp`,
//! `usp-tree`, `multi-usp-tree`.
//!
//! **Mutator-heavy** (promotion v2, beyond the paper): `union-find`, `bfs-frontier`,
//! `lru-churn` — see [`mutator`].
//!
//! **Adversarial** (scenario front, beyond the paper): `wavefront`, `entangle` —
//! see [`wavefront`] and [`adversary`].
//!
//! Substrate modules:
//! * [`seq`] — immutable sequences of 64-bit elements with parallel `tabulate` / `map` /
//!   `reduce` / `filter` / parallel merge (the paper's `Seq` module);
//! * [`sort`] — pure and imperative merge sorts, in-place quicksort, `dedup`;
//! * [`tourney`] — the tournament-tree benchmark;
//! * [`graph`] — adjacency-sequence graphs, a synthetic power-law generator standing in
//!   for the `orkut` graph, and the four BFS variants;
//! * [`matrix`] — dense matrix multiplication and sparse matrix–vector product;
//! * [`mutator`] — the mutator-heavy workloads: concurrent union-find with path
//!   halving, BFS over a growing graph, and LRU-cache churn;
//! * [`wavefront`] — irregular wavefront propagation: morphological reconstruction
//!   with hierarchical per-task tile queues published through promoting writes;
//! * [`adversary`] — the entanglement adversary: an actor-mailbox work log with a
//!   tunable fraction of cross-subtree (promoting) writes;
//! * [`serve_registry`] — the name-keyed registry of workloads the `serve`
//!   multi-tenant driver can dispatch;
//! * [`strassen`] — quadtree matrices and Strassen multiplication;
//! * [`ray`] — the sphere-scene raytracer;
//! * [`suite`] — a registry that prepares inputs and times each benchmark's kernel,
//!   used by the harness and by the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod graph;
pub mod matrix;
pub mod mutator;
pub mod ray;
pub mod seq;
pub mod serve_registry;
pub mod sort;
pub mod strassen;
pub mod suite;
pub mod tourney;
pub mod wavefront;

pub use serve_registry::ServeWorkloadId;
pub use suite::{BenchId, BenchOutcome, Params};

pub use hh_api::{ParCtx, Runtime};

/// Naive parallel Fibonacci with a sequential cutoff: the pure scheduler-overhead
/// benchmark (`fib` in Figure 10).
pub fn fib<C: ParCtx>(ctx: &C, n: u64, cutoff: u64) -> u64 {
    if n < 2 {
        n
    } else if n <= cutoff {
        fib_seq(n)
    } else {
        let (a, b) = ctx.join(|c| fib(c, n - 1, cutoff), |c| fib(c, n - 2, cutoff));
        a + b
    }
}

/// Sequential Fibonacci used below the cutoff.
pub fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn fib_matches_sequential_on_both_runtimes() {
        let expected = fib_seq(22);
        let seq = SeqRuntime::new();
        assert_eq!(seq.run(|ctx| fib(ctx, 22, 10)), expected);
        let hh = HhRuntime::with_workers(3);
        assert_eq!(hh.run(|ctx| fib(ctx, 22, 10)), expected);
    }
}
