//! Sorting benchmarks: pure mergesort, imperative mergesort, and deduplication
//! (`msort-pure`, `msort`, `dedup` in the paper's Figures 10–11).
//!
//! All three share the structure of the paper's Figure 1: divide-and-conquer mergesort
//! down to a sequential grain, below which
//!
//! * `msort-pure` uses a *purely functional* quicksort (allocating fresh sequences for
//!   the partitions — allocation-heavy, mutation-free);
//! * `msort` copies the block into a freshly allocated local array and sorts it with an
//!   *in-place* quicksort (the representative "local non-pointer writes" workload);
//! * `dedup` additionally removes duplicate keys, inserting the block into a local
//!   open-addressing hash set before sorting it in place.
//!
//! Above the grain the sorted halves are combined with a parallel merge.

use crate::seq::MSeq;
use hh_api::ParCtx;

/// Result of sorting: a new sequence (inputs are never modified).
pub struct Sorted(pub MSeq);

// ---------------------------------------------------------------------------
// Parallel merge.
// ---------------------------------------------------------------------------

/// Merges `a[alo..ahi]` and `b[blo..bhi]` (both sorted) into `dest[dlo..]`, in parallel.
#[allow(clippy::too_many_arguments)]
fn merge_into<C: ParCtx>(
    ctx: &C,
    a: MSeq,
    alo: usize,
    ahi: usize,
    b: MSeq,
    blo: usize,
    bhi: usize,
    dest: MSeq,
    dlo: usize,
    grain: usize,
) {
    let total = (ahi - alo) + (bhi - blo);
    if total <= grain.max(2) {
        // Bulk-read both sorted runs, merge in a stack-side buffer, publish with one
        // bulk write.
        let mut xs = vec![0u64; ahi - alo];
        let mut ys = vec![0u64; bhi - blo];
        a.get_bulk(ctx, alo, &mut xs);
        b.get_bulk(ctx, blo, &mut ys);
        let mut out = Vec::with_capacity(total);
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            if xs[i] <= ys[j] {
                out.push(xs[i]);
                i += 1;
            } else {
                out.push(ys[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&xs[i..]);
        out.extend_from_slice(&ys[j..]);
        dest.set_bulk(ctx, dlo, &out);
        return;
    }
    // Split the larger side at its midpoint and binary-search the split key in the
    // smaller side, then merge the two halves in parallel (a 2-ary fork).
    let (amid, bmid) = if ahi - alo >= bhi - blo {
        let amid = alo + (ahi - alo) / 2;
        let key = a.get(ctx, amid);
        (amid, lower_bound(ctx, b, blo, bhi, key))
    } else {
        let bmid = blo + (bhi - blo) / 2;
        let key = b.get(ctx, bmid);
        (lower_bound(ctx, a, alo, ahi, key), bmid)
    };
    let left_len = (amid - alo) + (bmid - blo);
    let halves = vec![
        (alo, amid, blo, bmid, dlo),
        (amid, ahi, bmid, bhi, dlo + left_len),
    ];
    ctx.join_many(
        halves
            .into_iter()
            .map(|(al, ah, bl, bh, d)| {
                move |c: &C| merge_into(c, a, al, ah, b, bl, bh, dest, d, grain)
            })
            .collect(),
    );
}

/// First index in `s[lo..hi]` whose value is `>= key`.
fn lower_bound<C: ParCtx>(ctx: &C, s: MSeq, mut lo: usize, mut hi: usize, key: u64) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if s.get(ctx, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// Sequential leaf sorts.
// ---------------------------------------------------------------------------

/// Purely functional quicksort of `src[lo..hi]` written into `dest[dlo..]`.
///
/// Each recursion level allocates fresh partition sequences, which is what makes
/// `msort-pure` allocation-bound.
fn pure_qsort_into<C: ParCtx>(ctx: &C, src: MSeq, lo: usize, hi: usize, dest: MSeq, dlo: usize) {
    let n = hi - lo;
    if n == 0 {
        return;
    }
    if n == 1 {
        dest.set(ctx, dlo, src.get(ctx, lo));
        return;
    }
    let pivot = src.get(ctx, lo + n / 2);
    // Allocate fresh partition sequences (pure style).
    let less = MSeq::alloc(ctx, n);
    let equal = MSeq::alloc(ctx, n);
    let greater = MSeq::alloc(ctx, n);
    let (mut nl, mut ne, mut ng) = (0usize, 0usize, 0usize);
    for i in lo..hi {
        let v = src.get(ctx, i);
        if v < pivot {
            less.set(ctx, nl, v);
            nl += 1;
        } else if v == pivot {
            equal.set(ctx, ne, v);
            ne += 1;
        } else {
            greater.set(ctx, ng, v);
            ng += 1;
        }
    }
    pure_qsort_into(ctx, less, 0, nl, dest, dlo);
    for k in 0..ne {
        dest.set(ctx, dlo + nl + k, equal.get(ctx, k));
    }
    pure_qsort_into(ctx, greater, 0, ng, dest, dlo + nl + ne);
    ctx.maybe_collect();
}

/// In-place quicksort of `arr[lo..hi)` using mutable reads and writes — the paper's
/// `inplaceQSort`.
pub fn inplace_qsort<C: ParCtx>(ctx: &C, arr: MSeq, lo: usize, hi: usize) {
    if hi - lo <= 1 {
        return;
    }
    if hi - lo <= 16 {
        // Insertion sort for tiny ranges.
        for i in lo + 1..hi {
            let v = arr.get_mut(ctx, i);
            let mut j = i;
            while j > lo && arr.get_mut(ctx, j - 1) > v {
                let prev = arr.get_mut(ctx, j - 1);
                arr.set(ctx, j, prev);
                j -= 1;
            }
            arr.set(ctx, j, v);
        }
        return;
    }
    // Median-of-three pivot.
    let mid = lo + (hi - lo) / 2;
    let (a, b, c) = (
        arr.get_mut(ctx, lo),
        arr.get_mut(ctx, mid),
        arr.get_mut(ctx, hi - 1),
    );
    let pivot = median3(a, b, c);
    let (mut i, mut j) = (lo, hi - 1);
    loop {
        while arr.get_mut(ctx, i) < pivot {
            i += 1;
        }
        while arr.get_mut(ctx, j) > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        let (x, y) = (arr.get_mut(ctx, i), arr.get_mut(ctx, j));
        arr.set(ctx, i, y);
        arr.set(ctx, j, x);
        i += 1;
        if j == 0 {
            break;
        }
        j -= 1;
    }
    inplace_qsort(ctx, arr, lo, j + 1);
    inplace_qsort(ctx, arr, j + 1, hi);
}

fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

// ---------------------------------------------------------------------------
// Top-level sorts.
// ---------------------------------------------------------------------------

/// `msort-pure`: parallel mergesort with a purely functional quicksort below `grain`.
pub fn msort_pure<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let dest = MSeq::alloc(ctx, s.len());
    msort_rec(ctx, s, 0, s.len(), dest, 0, grain, LeafSort::Pure);
    dest
}

/// `msort`: parallel mergesort with an imperative in-place quicksort below `grain`.
pub fn msort<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let dest = MSeq::alloc(ctx, s.len());
    msort_rec(ctx, s, 0, s.len(), dest, 0, grain, LeafSort::Imperative);
    dest
}

#[derive(Copy, Clone)]
enum LeafSort {
    Pure,
    Imperative,
}

#[allow(clippy::too_many_arguments)]
fn msort_rec<C: ParCtx>(
    ctx: &C,
    src: MSeq,
    lo: usize,
    hi: usize,
    dest: MSeq,
    dlo: usize,
    grain: usize,
    leaf: LeafSort,
) {
    let n = hi - lo;
    if n <= grain.max(2) {
        match leaf {
            LeafSort::Pure => pure_qsort_into(ctx, src, lo, hi, dest, dlo),
            LeafSort::Imperative => {
                // Copy the block to a local array (Seq.toArray), sort it in place, and
                // copy the result out (Seq.fromArray), as in Figure 1. Both copies are
                // single object→object range copies.
                let local = MSeq::alloc(ctx, n);
                src.copy_to(ctx, lo, local, 0, n);
                inplace_qsort(ctx, local, 0, n);
                local.copy_to(ctx, 0, dest, dlo, n);
                ctx.maybe_collect();
            }
        }
        return;
    }
    let mid = lo + n / 2;
    // Sort the two halves into scratch sequences, in parallel, then merge into dest.
    let left = MSeq::alloc(ctx, mid - lo);
    let right = MSeq::alloc(ctx, hi - mid);
    let halves = vec![(lo, mid, left), (mid, hi, right)];
    ctx.join_many(
        halves
            .into_iter()
            .map(|(l, h, d)| move |c: &C| msort_rec(c, src, l, h, d, 0, grain, leaf))
            .collect(),
    );
    merge_into(
        ctx,
        left,
        0,
        left.len(),
        right,
        0,
        right.len(),
        dest,
        dlo,
        grain,
    );
}

// ---------------------------------------------------------------------------
// dedup
// ---------------------------------------------------------------------------

/// `dedup`: sorts the sequence and removes duplicate keys. Below the grain the block is
/// first inserted into a freshly allocated local open-addressing hash set (imperative
/// insertions) and then sorted in place; across blocks, duplicates are removed by a
/// filter over the fully sorted sequence.
pub fn dedup<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let n = s.len();
    if n == 0 {
        return MSeq::alloc(ctx, 0);
    }
    // Phase 1: per-block local dedup via a hash set, writing the block's unique keys
    // into a scratch sequence (block-compacted msort would complicate the merge, so the
    // set is used for its mutation pattern and the block is sorted afterwards).
    let scratch = MSeq::alloc(ctx, n);
    dedup_blocks(ctx, s, scratch, grain);
    // Phase 2: full imperative sort of the scratch sequence.
    let sorted = msort(ctx, scratch, grain);
    // Phase 3: drop adjacent duplicates with a parallel pass keyed on the predecessor.
    let n_sorted = sorted.len();
    let keep = MSeq::alloc(ctx, n_sorted);
    mark_unique(ctx, sorted, keep, grain);
    let mut sorted_buf = vec![0u64; n_sorted];
    let mut keep_buf = vec![0u64; n_sorted];
    sorted.get_mut_bulk(ctx, 0, &mut sorted_buf);
    keep.get_mut_bulk(ctx, 0, &mut keep_buf);
    let out: Vec<u64> = sorted_buf
        .into_iter()
        .zip(keep_buf)
        .filter_map(|(v, k)| (k == 1).then_some(v))
        .collect();
    crate::seq::from_slice(ctx, &out)
}

fn mark_unique<C: ParCtx>(ctx: &C, sorted: MSeq, keep: MSeq, grain: usize) {
    let n = sorted.len();
    ctx.par_for(0..n, grain, move |c, r| {
        let (lo, hi) = (r.start, r.end);
        // Bulk-read the leaf's slice plus its left neighbour so every comparison is
        // buffer-local.
        let read_lo = lo.saturating_sub(1);
        let mut buf = vec![0u64; hi - read_lo];
        sorted.get_bulk(c, read_lo, &mut buf);
        let flags: Vec<u64> = (lo..hi)
            .map(|i| {
                let unique = i == 0 || buf[i - read_lo] != buf[i - read_lo - 1];
                unique as u64
            })
            .collect();
        keep.set_bulk(c, lo, &flags);
    });
}

fn dedup_blocks<C: ParCtx>(ctx: &C, s: MSeq, scratch: MSeq, grain: usize) {
    let n = s.len();
    ctx.par_for(0..n, grain, move |c, r| {
        let (lo, hi) = (r.start, r.end);
        // Local hash set with open addressing (size = 2 * block, power of two). The
        // table is zero-initialized by `fill_nonptr` with the sentinel in one bulk op.
        let block = hi - lo;
        let cap = (2 * block.max(1)).next_power_of_two();
        let table = MSeq::alloc(c, cap);
        let sentinel = u64::MAX;
        table.fill(c, 0, cap, sentinel);
        let mut buf = vec![0u64; block];
        s.get_bulk(c, lo, &mut buf);
        for v in buf.iter_mut() {
            // Keys are hashed values, so u64::MAX never occurs in practice; map it away
            // defensively anyway.
            *v = (*v).min(u64::MAX - 1);
            let mut slot = (hh_api::hash64(*v) as usize) & (cap - 1);
            loop {
                let cur = table.get_mut(c, slot);
                if cur == sentinel {
                    table.set(c, slot, *v);
                    break;
                }
                if cur == *v {
                    break;
                }
                slot = (slot + 1) & (cap - 1);
            }
        }
        // The scratch sequence keeps every element (cross-block duplicates are handled
        // by the global pass); the hash set exercises the local mutation.
        scratch.set_bulk(c, lo, &buf);
    });
}

/// True if `s` is sorted in non-decreasing order (validation helper).
pub fn is_sorted<C: ParCtx>(ctx: &C, s: MSeq) -> bool {
    (1..s.len()).all(|i| s.get(ctx, i - 1) <= s.get(ctx, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{from_slice, random_input};
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    fn check_sort<C: ParCtx>(ctx: &C, xs: &[u64], pure: bool, grain: usize) -> Vec<u64> {
        let s = from_slice(ctx, xs);
        let sorted = if pure {
            msort_pure(ctx, s, grain)
        } else {
            msort(ctx, s, grain)
        };
        sorted.to_vec(ctx)
    }

    #[test]
    fn both_sorts_match_std_sort_sequential() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let xs: Vec<u64> = (0..2000u64).map(hh_api::hash64).collect();
            let mut expected = xs.clone();
            expected.sort_unstable();
            assert_eq!(check_sort(ctx, &xs, true, 64), expected);
            assert_eq!(check_sort(ctx, &xs, false, 64), expected);
        });
    }

    #[test]
    fn parallel_msort_matches_and_stays_disentangled() {
        let rt = HhRuntime::with_workers(4);
        let (got_pure, got_imp) = rt.run(|ctx| {
            let s = random_input(ctx, 8000, 256, 3);
            let a = msort_pure(ctx, s, 256);
            let b = msort(ctx, s, 256);
            (a.to_vec(ctx), b.to_vec(ctx))
        });
        let mut expected: Vec<u64> = (0..8000u64).map(|i| hh_api::hash64(3 ^ i)).collect();
        expected.sort_unstable();
        assert_eq!(got_pure, expected);
        assert_eq!(got_imp, expected);
        assert_eq!(rt.check_disentangled(), 0);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            // Values drawn from a small range guarantee duplicates.
            let xs: Vec<u64> = (0..3000u64).map(|i| hh_api::hash64(i) % 500).collect();
            let s = from_slice(ctx, &xs);
            let d = dedup(ctx, s, 128);
            let got = d.to_vec(ctx);
            let mut expected: Vec<u64> = xs.clone();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn inplace_qsort_sorts_in_place() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let xs: Vec<u64> = (0..500u64).map(|i| hh_api::hash64(i * 7)).collect();
            let arr = from_slice(ctx, &xs);
            inplace_qsort(ctx, arr, 0, xs.len());
            assert!(is_sorted(ctx, arr));
            let mut expected = xs;
            expected.sort_unstable();
            assert_eq!(arr.to_vec(ctx), expected);
        });
    }

    // Randomized (deterministic-seed) property check over random inputs, grains, and
    // leaf-sort choices.
    #[test]
    fn prop_msort_sorts_any_input() {
        let mut r = hh_api::Rng::new(77);
        for _ in 0..12 {
            let len = (r.next_u64() % 600) as usize;
            let grain = 2 + (r.next_u64() % 126) as usize;
            let pure = r.next_u64().is_multiple_of(2);
            let xs: Vec<u64> = (0..len).map(|_| r.next_u64()).collect();
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| check_sort(ctx, &xs, pure, grain));
            let mut expected = xs.clone();
            expected.sort_unstable();
            assert_eq!(got, expected, "len={len} grain={grain} pure={pure}");
        }
    }
}
