//! Sorting benchmarks: pure mergesort, imperative mergesort, and deduplication
//! (`msort-pure`, `msort`, `dedup` in the paper's Figures 10–11).
//!
//! All three share the structure of the paper's Figure 1: divide-and-conquer mergesort
//! down to a sequential grain, below which
//!
//! * `msort-pure` uses a *purely functional* quicksort (allocating fresh sequences for
//!   the partitions — allocation-heavy, mutation-free);
//! * `msort` copies the block into a freshly allocated local array and sorts it with an
//!   *in-place* quicksort (the representative "local non-pointer writes" workload);
//! * `dedup` additionally removes duplicate keys, inserting the block into a local
//!   open-addressing hash set before sorting it in place.
//!
//! Above the grain the sorted halves are combined with a parallel merge.

use crate::seq::MSeq;
use hh_api::ParCtx;

/// Result of sorting: a new sequence (inputs are never modified).
pub struct Sorted(pub MSeq);

// ---------------------------------------------------------------------------
// Parallel merge.
// ---------------------------------------------------------------------------

/// Merges `a[alo..ahi]` and `b[blo..bhi]` (both sorted) into `dest[dlo..]`, in parallel.
#[allow(clippy::too_many_arguments)]
fn merge_into<C: ParCtx>(
    ctx: &C,
    a: MSeq,
    alo: usize,
    ahi: usize,
    b: MSeq,
    blo: usize,
    bhi: usize,
    dest: MSeq,
    dlo: usize,
    grain: usize,
) {
    let total = (ahi - alo) + (bhi - blo);
    if total <= grain.max(2) {
        let (mut i, mut j, mut k) = (alo, blo, dlo);
        while i < ahi && j < bhi {
            let x = a.get(ctx, i);
            let y = b.get(ctx, j);
            if x <= y {
                dest.set(ctx, k, x);
                i += 1;
            } else {
                dest.set(ctx, k, y);
                j += 1;
            }
            k += 1;
        }
        while i < ahi {
            dest.set(ctx, k, a.get(ctx, i));
            i += 1;
            k += 1;
        }
        while j < bhi {
            dest.set(ctx, k, b.get(ctx, j));
            j += 1;
            k += 1;
        }
        return;
    }
    // Split the larger side at its midpoint and binary-search the split key in the
    // smaller side, then merge the two halves in parallel.
    if ahi - alo >= bhi - blo {
        let amid = alo + (ahi - alo) / 2;
        let key = a.get(ctx, amid);
        let bmid = lower_bound(ctx, b, blo, bhi, key);
        let left_len = (amid - alo) + (bmid - blo);
        ctx.join(
            |c| merge_into(c, a, alo, amid, b, blo, bmid, dest, dlo, grain),
            |c| merge_into(c, a, amid, ahi, b, bmid, bhi, dest, dlo + left_len, grain),
        );
    } else {
        let bmid = blo + (bhi - blo) / 2;
        let key = b.get(ctx, bmid);
        let amid = lower_bound(ctx, a, alo, ahi, key);
        let left_len = (amid - alo) + (bmid - blo);
        ctx.join(
            |c| merge_into(c, a, alo, amid, b, blo, bmid, dest, dlo, grain),
            |c| merge_into(c, a, amid, ahi, b, bmid, bhi, dest, dlo + left_len, grain),
        );
    }
}

/// First index in `s[lo..hi]` whose value is `>= key`.
fn lower_bound<C: ParCtx>(ctx: &C, s: MSeq, mut lo: usize, mut hi: usize, key: u64) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if s.get(ctx, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// Sequential leaf sorts.
// ---------------------------------------------------------------------------

/// Purely functional quicksort of `src[lo..hi]` written into `dest[dlo..]`.
///
/// Each recursion level allocates fresh partition sequences, which is what makes
/// `msort-pure` allocation-bound.
fn pure_qsort_into<C: ParCtx>(ctx: &C, src: MSeq, lo: usize, hi: usize, dest: MSeq, dlo: usize) {
    let n = hi - lo;
    if n == 0 {
        return;
    }
    if n == 1 {
        dest.set(ctx, dlo, src.get(ctx, lo));
        return;
    }
    let pivot = src.get(ctx, lo + n / 2);
    // Allocate fresh partition sequences (pure style).
    let less = MSeq::alloc(ctx, n);
    let equal = MSeq::alloc(ctx, n);
    let greater = MSeq::alloc(ctx, n);
    let (mut nl, mut ne, mut ng) = (0usize, 0usize, 0usize);
    for i in lo..hi {
        let v = src.get(ctx, i);
        if v < pivot {
            less.set(ctx, nl, v);
            nl += 1;
        } else if v == pivot {
            equal.set(ctx, ne, v);
            ne += 1;
        } else {
            greater.set(ctx, ng, v);
            ng += 1;
        }
    }
    pure_qsort_into(ctx, less, 0, nl, dest, dlo);
    for k in 0..ne {
        dest.set(ctx, dlo + nl + k, equal.get(ctx, k));
    }
    pure_qsort_into(ctx, greater, 0, ng, dest, dlo + nl + ne);
    ctx.maybe_collect();
}

/// In-place quicksort of `arr[lo..hi)` using mutable reads and writes — the paper's
/// `inplaceQSort`.
pub fn inplace_qsort<C: ParCtx>(ctx: &C, arr: MSeq, lo: usize, hi: usize) {
    if hi - lo <= 1 {
        return;
    }
    if hi - lo <= 16 {
        // Insertion sort for tiny ranges.
        for i in lo + 1..hi {
            let v = arr.get_mut(ctx, i);
            let mut j = i;
            while j > lo && arr.get_mut(ctx, j - 1) > v {
                let prev = arr.get_mut(ctx, j - 1);
                arr.set(ctx, j, prev);
                j -= 1;
            }
            arr.set(ctx, j, v);
        }
        return;
    }
    // Median-of-three pivot.
    let mid = lo + (hi - lo) / 2;
    let (a, b, c) = (arr.get_mut(ctx, lo), arr.get_mut(ctx, mid), arr.get_mut(ctx, hi - 1));
    let pivot = median3(a, b, c);
    let (mut i, mut j) = (lo, hi - 1);
    loop {
        while arr.get_mut(ctx, i) < pivot {
            i += 1;
        }
        while arr.get_mut(ctx, j) > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        let (x, y) = (arr.get_mut(ctx, i), arr.get_mut(ctx, j));
        arr.set(ctx, i, y);
        arr.set(ctx, j, x);
        i += 1;
        if j == 0 {
            break;
        }
        j -= 1;
    }
    inplace_qsort(ctx, arr, lo, j + 1);
    inplace_qsort(ctx, arr, j + 1, hi);
}

fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

// ---------------------------------------------------------------------------
// Top-level sorts.
// ---------------------------------------------------------------------------

/// `msort-pure`: parallel mergesort with a purely functional quicksort below `grain`.
pub fn msort_pure<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let dest = MSeq::alloc(ctx, s.len());
    msort_rec(ctx, s, 0, s.len(), dest, 0, grain, LeafSort::Pure);
    dest
}

/// `msort`: parallel mergesort with an imperative in-place quicksort below `grain`.
pub fn msort<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let dest = MSeq::alloc(ctx, s.len());
    msort_rec(ctx, s, 0, s.len(), dest, 0, grain, LeafSort::Imperative);
    dest
}

#[derive(Copy, Clone)]
enum LeafSort {
    Pure,
    Imperative,
}

#[allow(clippy::too_many_arguments)]
fn msort_rec<C: ParCtx>(
    ctx: &C,
    src: MSeq,
    lo: usize,
    hi: usize,
    dest: MSeq,
    dlo: usize,
    grain: usize,
    leaf: LeafSort,
) {
    let n = hi - lo;
    if n <= grain.max(2) {
        match leaf {
            LeafSort::Pure => pure_qsort_into(ctx, src, lo, hi, dest, dlo),
            LeafSort::Imperative => {
                // Copy the block to a local array (Seq.toArray), sort it in place, and
                // copy the result out (Seq.fromArray), as in Figure 1.
                let local = MSeq::alloc(ctx, n);
                for k in 0..n {
                    local.set(ctx, k, src.get(ctx, lo + k));
                }
                inplace_qsort(ctx, local, 0, n);
                for k in 0..n {
                    dest.set(ctx, dlo + k, local.get_mut(ctx, k));
                }
                ctx.maybe_collect();
            }
        }
        return;
    }
    let mid = lo + n / 2;
    // Sort the two halves into scratch sequences, in parallel, then merge into dest.
    let left = MSeq::alloc(ctx, mid - lo);
    let right = MSeq::alloc(ctx, hi - mid);
    ctx.join(
        |c| msort_rec(c, src, lo, mid, left, 0, grain, leaf),
        |c| msort_rec(c, src, mid, hi, right, 0, grain, leaf),
    );
    merge_into(
        ctx,
        left,
        0,
        left.len(),
        right,
        0,
        right.len(),
        dest,
        dlo,
        grain,
    );
}

// ---------------------------------------------------------------------------
// dedup
// ---------------------------------------------------------------------------

/// `dedup`: sorts the sequence and removes duplicate keys. Below the grain the block is
/// first inserted into a freshly allocated local open-addressing hash set (imperative
/// insertions) and then sorted in place; across blocks, duplicates are removed by a
/// filter over the fully sorted sequence.
pub fn dedup<C: ParCtx>(ctx: &C, s: MSeq, grain: usize) -> MSeq {
    let n = s.len();
    if n == 0 {
        return MSeq::alloc(ctx, 0);
    }
    // Phase 1: per-block local dedup via a hash set, writing the block's unique keys
    // into a scratch sequence (block-compacted msort would complicate the merge, so the
    // set is used for its mutation pattern and the block is sorted afterwards).
    let scratch = MSeq::alloc(ctx, n);
    dedup_blocks(ctx, s, scratch, 0, n, grain);
    // Phase 2: full imperative sort of the scratch sequence.
    let sorted = msort(ctx, scratch, grain);
    // Phase 3: drop adjacent duplicates with a parallel filter keyed on the predecessor.
    let n_sorted = sorted.len();
    let keep = crate::seq::tabulate(ctx, n_sorted, grain, {
        move |_i| 0 // placeholder, replaced below via explicit pass
    });
    // A tabulate cannot look at `sorted` through the closure without capturing ctx, so
    // mark keepers with an explicit parallel pass instead.
    mark_unique(ctx, sorted, keep, 0, n_sorted, grain);
    let mut out = Vec::new();
    for i in 0..n_sorted {
        if keep.get(ctx, i) == 1 {
            out.push(sorted.get(ctx, i));
        }
    }
    crate::seq::from_slice(ctx, &out)
}

fn mark_unique<C: ParCtx>(ctx: &C, sorted: MSeq, keep: MSeq, lo: usize, hi: usize, grain: usize) {
    if hi - lo <= grain.max(1) {
        for i in lo..hi {
            let unique = i == 0 || sorted.get(ctx, i) != sorted.get(ctx, i - 1);
            keep.set(ctx, i, unique as u64);
        }
    } else {
        let mid = lo + (hi - lo) / 2;
        ctx.join(
            |c| mark_unique(c, sorted, keep, lo, mid, grain),
            |c| mark_unique(c, sorted, keep, mid, hi, grain),
        );
    }
}

fn dedup_blocks<C: ParCtx>(ctx: &C, s: MSeq, scratch: MSeq, lo: usize, hi: usize, grain: usize) {
    if hi - lo <= grain.max(1) {
        // Local hash set with open addressing (size = 2 * block, power of two).
        let block = hi - lo;
        let cap = (2 * block.max(1)).next_power_of_two();
        let table = MSeq::alloc(ctx, cap);
        let sentinel = u64::MAX;
        for k in 0..cap {
            table.set(ctx, k, sentinel);
        }
        for i in lo..hi {
            // Keys are hashed values, so u64::MAX never occurs in practice; map it away
            // defensively anyway.
            let v = s.get(ctx, i).min(u64::MAX - 1);
            let mut slot = (hh_api::hash64(v) as usize) & (cap - 1);
            loop {
                let cur = table.get_mut(ctx, slot);
                if cur == sentinel {
                    table.set(ctx, slot, v);
                    break;
                }
                if cur == v {
                    break;
                }
                slot = (slot + 1) & (cap - 1);
            }
            // The scratch sequence keeps every element (cross-block duplicates are
            // handled by the global pass); the hash set exercises the local mutation.
            scratch.set(ctx, i, v);
        }
        ctx.maybe_collect();
    } else {
        let mid = lo + (hi - lo) / 2;
        ctx.join(
            |c| dedup_blocks(c, s, scratch, lo, mid, grain),
            |c| dedup_blocks(c, s, scratch, mid, hi, grain),
        );
    }
}

/// True if `s` is sorted in non-decreasing order (validation helper).
pub fn is_sorted<C: ParCtx>(ctx: &C, s: MSeq) -> bool {
    (1..s.len()).all(|i| s.get(ctx, i - 1) <= s.get(ctx, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{from_slice, random_input};
    use hh_baselines::SeqRuntime;
    use hh_api::Runtime as _;
    use hh_runtime::HhRuntime;
    use proptest::prelude::*;

    fn check_sort<C: ParCtx>(ctx: &C, xs: &[u64], pure: bool, grain: usize) -> Vec<u64> {
        let s = from_slice(ctx, xs);
        let sorted = if pure {
            msort_pure(ctx, s, grain)
        } else {
            msort(ctx, s, grain)
        };
        sorted.to_vec(ctx)
    }

    #[test]
    fn both_sorts_match_std_sort_sequential() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let xs: Vec<u64> = (0..2000u64).map(hh_api::hash64).collect();
            let mut expected = xs.clone();
            expected.sort_unstable();
            assert_eq!(check_sort(ctx, &xs, true, 64), expected);
            assert_eq!(check_sort(ctx, &xs, false, 64), expected);
        });
    }

    #[test]
    fn parallel_msort_matches_and_stays_disentangled() {
        let rt = HhRuntime::with_workers(4);
        let (got_pure, got_imp) = rt.run(|ctx| {
            let s = random_input(ctx, 8000, 256, 3);
            let a = msort_pure(ctx, s, 256);
            let b = msort(ctx, s, 256);
            (a.to_vec(ctx), b.to_vec(ctx))
        });
        let mut expected: Vec<u64> = (0..8000u64).map(|i| hh_api::hash64(3 ^ i)).collect();
        expected.sort_unstable();
        assert_eq!(got_pure, expected);
        assert_eq!(got_imp, expected);
        assert_eq!(rt.check_disentangled(), 0);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            // Values drawn from a small range guarantee duplicates.
            let xs: Vec<u64> = (0..3000u64).map(|i| hh_api::hash64(i) % 500).collect();
            let s = from_slice(ctx, &xs);
            let d = dedup(ctx, s, 128);
            let got = d.to_vec(ctx);
            let mut expected: Vec<u64> = xs.clone();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn inplace_qsort_sorts_in_place() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let xs: Vec<u64> = (0..500u64).map(|i| hh_api::hash64(i * 7)).collect();
            let arr = from_slice(ctx, &xs);
            inplace_qsort(ctx, arr, 0, xs.len());
            assert!(is_sorted(ctx, arr));
            let mut expected = xs;
            expected.sort_unstable();
            assert_eq!(arr.to_vec(ctx), expected);
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_msort_sorts_any_input(xs in proptest::collection::vec(any::<u64>(), 0..600), grain in 2usize..128, pure in any::<bool>()) {
            let rt = SeqRuntime::new();
            let got = rt.run(|ctx| check_sort(ctx, &xs, pure, grain));
            let mut expected = xs.clone();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
