//! The benchmark registry: one entry per benchmark of the paper's evaluation, with
//! input preparation separated from the timed kernel (the paper excludes initialization
//! from its timings).

use crate::adversary::entangle;
use crate::graph::{bfs, generate as gen_graph, multi_usp_tree, BfsState, BfsVariant};
use crate::matrix::{dmm, smvm, vector_checksum, Csr, Dense};
use crate::mutator::{frontier_bfs, lru_churn, union_find};
use crate::ray::{image_checksum, render};
use crate::seq::{checksum, filter, map, random_input, reduce, tabulate};
use crate::sort::{dedup, msort, msort_pure};
use crate::strassen;
use crate::tourney::tourney;
use crate::wavefront::wavefront;
use crate::{fib, fib_seq};
use hh_api::ParCtx;
use std::time::{Duration, Instant};

/// Identifiers of the benchmarks: the paper's 17 (Figures 10 and 11 order) plus the
/// three mutator-heavy workloads of promotion v2 and the two adversarial workloads
/// of the scenario front.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchId {
    Fib,
    Tabulate,
    Map,
    Reduce,
    Filter,
    MsortPure,
    Dmm,
    Smvm,
    Strassen,
    Raytracer,
    Msort,
    Dedup,
    Tourney,
    Reachability,
    Usp,
    UspTree,
    MultiUspTree,
    UnionFind,
    BfsFrontier,
    LruChurn,
    Wavefront,
    Entangle,
}

impl BenchId {
    /// All benchmarks: pure first (Figure 10 order), then imperative (Figure 11
    /// order), then the mutator-heavy workloads, then the adversarial workloads.
    pub const ALL: [BenchId; 22] = [
        BenchId::Fib,
        BenchId::Tabulate,
        BenchId::Map,
        BenchId::Reduce,
        BenchId::Filter,
        BenchId::MsortPure,
        BenchId::Dmm,
        BenchId::Smvm,
        BenchId::Strassen,
        BenchId::Raytracer,
        BenchId::Msort,
        BenchId::Dedup,
        BenchId::Tourney,
        BenchId::Reachability,
        BenchId::Usp,
        BenchId::UspTree,
        BenchId::MultiUspTree,
        BenchId::UnionFind,
        BenchId::BfsFrontier,
        BenchId::LruChurn,
        BenchId::Wavefront,
        BenchId::Entangle,
    ];

    /// The pure benchmarks (Figure 10).
    pub const PURE: [BenchId; 10] = [
        BenchId::Fib,
        BenchId::Tabulate,
        BenchId::Map,
        BenchId::Reduce,
        BenchId::Filter,
        BenchId::MsortPure,
        BenchId::Dmm,
        BenchId::Smvm,
        BenchId::Strassen,
        BenchId::Raytracer,
    ];

    /// The imperative benchmarks (Figure 11).
    pub const IMPERATIVE: [BenchId; 7] = [
        BenchId::Msort,
        BenchId::Dedup,
        BenchId::Tourney,
        BenchId::Reachability,
        BenchId::Usp,
        BenchId::UspTree,
        BenchId::MultiUspTree,
    ];

    /// The mutator-heavy workloads (promotion v2; not part of the paper's suite).
    pub const MUTATOR: [BenchId; 3] = [BenchId::UnionFind, BenchId::BfsFrontier, BenchId::LruChurn];

    /// The adversarial workloads (scenario front; not part of the paper's suite):
    /// irregular wavefront propagation and the entanglement adversary.
    pub const ADVERSARIAL: [BenchId; 2] = [BenchId::Wavefront, BenchId::Entangle];

    /// The benchmark's name as it appears in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BenchId::Fib => "fib",
            BenchId::Tabulate => "tabulate",
            BenchId::Map => "map",
            BenchId::Reduce => "reduce",
            BenchId::Filter => "filter",
            BenchId::MsortPure => "msort-pure",
            BenchId::Dmm => "dmm",
            BenchId::Smvm => "smvm",
            BenchId::Strassen => "strassen",
            BenchId::Raytracer => "raytracer",
            BenchId::Msort => "msort",
            BenchId::Dedup => "dedup",
            BenchId::Tourney => "tourney",
            BenchId::Reachability => "reachability",
            BenchId::Usp => "usp",
            BenchId::UspTree => "usp-tree",
            BenchId::MultiUspTree => "multi-usp-tree",
            BenchId::UnionFind => "union-find",
            BenchId::BfsFrontier => "bfs-frontier",
            BenchId::LruChurn => "lru-churn",
            BenchId::Wavefront => "wavefront",
            BenchId::Entangle => "entangle",
        }
    }

    /// Looks a benchmark up by its table name.
    pub fn from_name(name: &str) -> Option<BenchId> {
        BenchId::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// True for the purely functional benchmarks of §4.1.
    pub fn is_pure(self) -> bool {
        BenchId::PURE.contains(&self)
    }

    /// The benchmark's representative memory operation (the paper's Figure 9).
    pub fn representative_operation(self) -> &'static str {
        match self {
            b if b.is_pure() => "immutable reads",
            BenchId::Msort | BenchId::Dedup => "local non-pointer writes",
            BenchId::Tourney => "local non-promoting writes",
            BenchId::Reachability | BenchId::Usp => "distant non-pointer writes",
            BenchId::UspTree | BenchId::MultiUspTree => "distant promoting writes",
            BenchId::UnionFind => "distant CAS + promoting log writes",
            BenchId::BfsFrontier => "promoting writes on a growing frontier",
            BenchId::LruChurn => "allocation churn + batched publish promotion",
            BenchId::Wavefront => "CAS-max raises + promoting tile-queue publishes",
            BenchId::Entangle => "cross-subtree mailbox sends (tunable promote rate)",
            _ => unreachable!(),
        }
    }
}

/// Problem-size parameters, expressed as a fraction of the paper's sizes.
///
/// The paper's inputs (10⁷–10⁸ elements, a 117 M-edge graph) target a 72-core, 1 TB
/// machine; `scale` shrinks every size by the same factor so the whole suite runs on a
/// laptop-class machine while preserving each benchmark's shape.
#[derive(Copy, Clone, Debug)]
pub struct Params {
    /// Global scale factor relative to the paper's input sizes (1.0 = paper sizes).
    pub scale: f64,
    /// Sequential grain for divide-and-conquer (the paper uses 10⁴ for sequences).
    pub grain: usize,
}

impl Params {
    /// A quick configuration for tests and smoke runs.
    pub fn tiny() -> Params {
        Params {
            scale: 0.0002,
            grain: 512,
        }
    }

    /// The default harness configuration (about 1/100th of the paper's sizes).
    pub fn default_scaled() -> Params {
        Params {
            scale: 0.01,
            grain: 4096,
        }
    }

    fn scaled(self, paper_size: usize, min: usize) -> usize {
        ((paper_size as f64 * self.scale) as usize).max(min)
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::default_scaled()
    }
}

/// Outcome of one timed benchmark run.
#[derive(Clone, Debug)]
pub struct BenchOutcome {
    /// Wall-clock time of the kernel (input preparation excluded).
    pub elapsed: Duration,
    /// A deterministic checksum of the result, used to confirm all runtimes agree.
    pub checksum: u64,
}

/// Prepares the benchmark's input (untimed), runs its kernel (timed), and returns the
/// elapsed time plus a result checksum.
pub fn run_timed<C: ParCtx>(ctx: &C, id: BenchId, p: Params) -> BenchOutcome {
    match id {
        BenchId::Fib => {
            // Paper: fib(42), sequential threshold 25. Scale by shrinking the argument.
            let n = if p.scale >= 0.5 {
                42
            } else if p.scale >= 0.005 {
                33
            } else {
                27
            };
            let cutoff = 20;
            timed(|| fib(ctx, n, cutoff))
        }
        BenchId::Tabulate => {
            let n = p.scaled(100_000_000, 20_000);
            timed(|| {
                let s = tabulate(ctx, n, p.grain, |i| hh_api::hash64(i as u64));
                checksum(ctx, s)
            })
        }
        BenchId::Map => {
            let n = p.scaled(100_000_000, 20_000);
            let input = random_input(ctx, n, p.grain, 1);
            timed(|| {
                let out = map(ctx, input, p.grain, |x| {
                    x ^ (x >> 7).wrapping_mul(0x9E3779B9)
                });
                checksum(ctx, out)
            })
        }
        BenchId::Reduce => {
            let n = p.scaled(100_000_000, 20_000);
            let input = random_input(ctx, n, p.grain, 2);
            timed(|| reduce(ctx, input, p.grain, 0, u64::wrapping_add))
        }
        BenchId::Filter => {
            let n = p.scaled(100_000_000, 20_000);
            let input = random_input(ctx, n, p.grain, 3);
            timed(|| {
                let out = filter(ctx, input, p.grain, |x| x % 3 == 0);
                checksum(ctx, out)
            })
        }
        BenchId::MsortPure => {
            let n = p.scaled(10_000_000, 5_000);
            let input = random_input(ctx, n, p.grain, 4);
            timed(|| {
                let out = msort_pure(ctx, input, p.grain);
                checksum(ctx, out)
            })
        }
        BenchId::Msort => {
            let n = p.scaled(10_000_000, 5_000);
            let input = random_input(ctx, n, p.grain, 5);
            timed(|| {
                let out = msort(ctx, input, p.grain);
                checksum(ctx, out)
            })
        }
        BenchId::Dedup => {
            let n = p.scaled(10_000_000, 5_000);
            // Roughly 10% unique keys, as in the paper (10⁷ elements, ~10⁶ unique).
            let keys = (n / 10).max(16) as u64;
            let input = tabulate(ctx, n, p.grain, move |i| hh_api::hash64(i as u64) % keys);
            timed(|| {
                let out = dedup(ctx, input, p.grain);
                checksum(ctx, out)
            })
        }
        BenchId::Dmm => {
            // Paper: n = 600. Scale the side so the O(n³) work scales linearly.
            let n = ((600.0 * p.scale.cbrt()) as usize).clamp(32, 600);
            let a = Dense::generate(ctx, n, p.grain, 6);
            let b = Dense::generate(ctx, n, p.grain, 7);
            let rows_grain = 4.max(n / 64);
            timed(|| {
                let c = dmm(ctx, &a, &b, rows_grain);
                vector_checksum(ctx, c.data())
            })
        }
        BenchId::Smvm => {
            // Paper: n = 20 000 rows, ~2 000 non-zeros per row. Scale both.
            let n = p.scaled(20_000, 200);
            let nnz = p.scaled(2_000, 20);
            let m = Csr::generate(ctx, n, nnz, p.grain, 8);
            let x = tabulate(ctx, n, p.grain, |i| {
                hh_api::f64_to_bits((i % 100) as f64 / 100.0)
            });
            let rows_grain = 1.max(n / 256);
            timed(|| {
                let y = smvm(ctx, &m, x, rows_grain);
                vector_checksum(ctx, y)
            })
        }
        BenchId::Strassen => {
            // Paper: n = 1024 with 64×64 leaves. Scale the side length (power of two).
            let target = (1024.0 * p.scale.cbrt()) as usize;
            let n = target.next_power_of_two().clamp(2 * strassen::LEAF, 1024);
            let a = strassen::generate(ctx, n, 9, strassen::LEAF * 2);
            let b = strassen::generate(ctx, n, 10, strassen::LEAF * 2);
            timed(|| {
                let c = strassen::strassen(ctx, a, b, strassen::LEAF);
                strassen::checksum(ctx, c)
            })
        }
        BenchId::Raytracer => {
            // Paper: 600 × 600 pixels, 300-pixel grain.
            let side = ((600.0 * p.scale.sqrt()) as usize).clamp(64, 600);
            timed(|| {
                let img = render(ctx, side, side, 300.min(side));
                image_checksum(ctx, img)
            })
        }
        BenchId::Tourney => {
            let n = p.scaled(100_000_000, 20_000);
            let fitness = random_input(ctx, n, p.grain, 11);
            timed(|| {
                let t = tourney(ctx, fitness, p.grain);
                t.winner_fitness
            })
        }
        BenchId::Reachability | BenchId::Usp | BenchId::UspTree => {
            let (g, grain) = prepare_graph(ctx, p);
            let variant = match id {
                BenchId::Reachability => BfsVariant::Reachability,
                BenchId::Usp => BfsVariant::Usp,
                _ => BfsVariant::UspTree,
            };
            let state = BfsState::new(ctx, g.n, variant);
            timed(|| bfs(ctx, &g, &state, 0, grain) as u64)
        }
        BenchId::UnionFind => {
            // Shared parent array hammered by distant CAS traffic; one promoting
            // log write per edge. Average degree 2 keeps components non-trivial.
            let n = p.scaled(2_000_000, 4_000);
            timed(|| union_find(ctx, n, n, p.grain, 0xC0DE_0001))
        }
        BenchId::BfsFrontier => {
            // The growing-graph BFS: adjacency is allocated during traversal and
            // published with promoting pointer writes.
            let n = p.scaled(1_000_000, 2_000);
            let grain = (p.grain / 16).max(8);
            timed(|| frontier_bfs(ctx, n, 8, grain, 0xC0DE_0002))
        }
        BenchId::LruChurn => {
            // 16 independent caches over one backing store; each publish is a
            // batched transitive promotion of the whole cache closure.
            let tasks = 16;
            let ops = p.scaled(4_000_000, 16_000) / tasks;
            timed(|| lru_churn(ctx, tasks, ops, 32, 1024, 0xC0DE_0003))
        }
        BenchId::Wavefront => {
            // Irregular wavefront propagation: data-dependent task spawning with
            // per-task tile queues published through promoting writes. Side scales
            // so the cell count scales linearly with `p.scale`.
            let side = ((2048.0 * p.scale.sqrt()) as usize).clamp(64, 2048);
            let seeds = (side * side / 256).max(8);
            let grain = (p.grain / 16).max(8);
            timed(|| wavefront(ctx, side, side, seeds, grain, 0xC0DE_0004))
        }
        BenchId::Entangle => {
            // The entanglement adversary at the sweep's mid-point (half of all
            // ops cross subtrees and promote); `repro promote` sweeps the rate.
            let actors = 16;
            let ops = p.scaled(2_000_000, 8_000) / actors;
            timed(|| entangle(ctx, actors, ops, 500, 0xC0DE_0005))
        }
        BenchId::MultiUspTree => {
            let (g, grain) = prepare_graph(ctx, p);
            // Paper: 36 copies (half the 72-core machine). Keep the copy count fixed so
            // results are comparable across runtimes and worker counts; 8 copies keeps
            // the scaled-down runs reasonable while still exposing copy-level parallelism.
            let copies = 8;
            timed(|| multi_usp_tree(ctx, &g, copies, 0, grain) as u64)
        }
    }
}

fn prepare_graph<C: ParCtx>(ctx: &C, p: Params) -> (crate::graph::Graph, usize) {
    // Paper: orkut, ~3 M vertices, ~117 M edges (average degree ≈ 39).
    let n = p.scaled(3_000_000, 2_000);
    let avg_degree = if p.scale >= 0.01 { 20 } else { 8 };
    let g = gen_graph(ctx, n, avg_degree, p.grain, 12);
    let grain = (p.grain / 16).max(8);
    (g, grain)
}

fn timed<R: Into<u64>>(f: impl FnOnce() -> R) -> BenchOutcome {
    let start = Instant::now();
    let checksum = f().into();
    BenchOutcome {
        elapsed: start.elapsed(),
        checksum,
    }
}

/// Sequential reference value for `fib` inputs used by tests.
pub fn fib_reference(n: u64) -> u64 {
    fib_seq(n)
}

/// A convenient total ordering on benchmark outcomes for assertions in tests: two
/// outcomes "agree" if their checksums match.
pub fn outcomes_agree(a: &BenchOutcome, b: &BenchOutcome) -> bool {
    a.checksum == b.checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime;
    use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
    use hh_runtime::HhRuntime;

    #[test]
    fn names_round_trip() {
        for b in BenchId::ALL {
            assert_eq!(BenchId::from_name(b.name()), Some(b));
            assert!(!b.representative_operation().is_empty());
        }
        assert_eq!(BenchId::from_name("no-such-bench"), None);
        assert_eq!(
            BenchId::PURE.len()
                + BenchId::IMPERATIVE.len()
                + BenchId::MUTATOR.len()
                + BenchId::ADVERSARIAL.len(),
            BenchId::ALL.len()
        );
    }

    /// Every benchmark produces the same checksum on the sequential baseline and on the
    /// hierarchical runtime (tiny sizes).
    #[test]
    fn all_benchmarks_agree_between_seq_and_parmem() {
        let p = Params::tiny();
        for id in BenchId::ALL {
            if id == BenchId::Reachability {
                // The benign race makes visit counts nondeterministic by design; skip
                // the checksum comparison (covered by graph::tests instead).
                continue;
            }
            let seq = SeqRuntime::new();
            let expected = seq.run(|ctx| run_timed(ctx, id, p));
            let hh = HhRuntime::with_workers(3);
            let got = hh.run(|ctx| run_timed(ctx, id, p));
            assert!(
                outcomes_agree(&expected, &got),
                "{}: seq={:#x} parmem={:#x}",
                id.name(),
                expected.checksum,
                got.checksum
            );
            assert_eq!(
                hh.check_disentangled(),
                0,
                "{} left entanglement",
                id.name()
            );
        }
    }

    /// The pure benchmarks never promote on the hierarchical runtime (the §4.4
    /// observation that parmem performs no promotions on `map`).
    #[test]
    fn pure_benchmarks_do_not_promote() {
        let p = Params::tiny();
        for id in BenchId::PURE {
            let hh = HhRuntime::with_workers(4);
            let _ = hh.run(|ctx| run_timed(ctx, id, p));
            assert_eq!(
                hh.stats().promoted_objects,
                0,
                "{} performed promotions on the hierarchical runtime",
                id.name()
            );
        }
    }

    /// The stop-the-world and DLG baselines also compute correct results (spot check on
    /// a representative subset to keep test time reasonable).
    #[test]
    fn baselines_agree_on_representative_benchmarks() {
        let p = Params::tiny();
        for id in [BenchId::Map, BenchId::Msort, BenchId::Usp, BenchId::Tourney] {
            let seq = SeqRuntime::new();
            let expected = seq.run(|ctx| run_timed(ctx, id, p));
            let stw = StwRuntime::with_workers(3);
            let got_stw = stw.run(|ctx| run_timed(ctx, id, p));
            assert!(
                outcomes_agree(&expected, &got_stw),
                "{} disagrees on stw",
                id.name()
            );
            let dlg = DlgRuntime::with_workers(3);
            let got_dlg = dlg.run(|ctx| run_timed(ctx, id, p));
            assert!(
                outcomes_agree(&expected, &got_dlg),
                "{} disagrees on dlg",
                id.name()
            );
        }
    }
}
