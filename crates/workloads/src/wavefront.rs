//! Irregular wavefront propagation (IWPP): morphological-reconstruction-style
//! flood-fill over a 2D grid with hierarchical per-task tile queues.
//!
//! The pattern follows Gomes & Teodoro's irregular wavefront propagation papers
//! (PAPERS.md — the same line of work that motivated GC v2's scan-block stealing,
//! here used as an end-to-end *workload* instead of a collector design): a marker
//! image is repeatedly dilated under a mask image, and only the cells whose value
//! actually changed propagate further. Work is therefore data-dependent — a flat
//! `par_for` over the grid would waste almost every probe — so each round forks
//! over the current frontier, and every leaf task accumulates the cells it raised
//! into a freshly allocated *tile* in its own heap, then publishes the tile into a
//! shared tile-queue array with a pointer write. On the hierarchical runtime a
//! stolen leaf's publish is exactly the adversarial event this workload exists to
//! produce: a promoting write of a task-local structure that the *parent* (and the
//! next round's tasks) immediately re-reads through the forwarding chain to
//! re-expand.
//!
//! Determinism: the update `marker[n] ← max(marker[n], min(mask[n], marker[c]))`
//! is monotone (marker values only grow, bounded by the mask), and every
//! successful raise re-enqueues the raised cell. This is chaotic iteration of a
//! monotone operator on a finite lattice: it converges to the *unique* least
//! fixpoint above the seeds regardless of which CAS wins, how tasks are stolen, or
//! how duplicate frontier entries interleave. The checksum folds only the final
//! marker image, so it is schedule-independent even though tile contents and
//! round counts are not. DESIGN.md §12 spells out the argument.

use hh_api::{hash64, ParCtx};
use hh_objmodel::ObjPtr;

/// CAS-max: raises `marker[cell]` to `cand` if `cand` is strictly larger, retrying
/// against concurrent raises. Returns whether this call performed a raise (and the
/// cell therefore needs re-expansion).
fn raise<C: ParCtx>(c: &C, marker: ObjPtr, cell: usize, cand: u64) -> bool {
    let mut cur = c.read_mut(marker, cell);
    while cand > cur {
        match c.cas_nonptr(marker, cell, cur, cand) {
            Ok(_) => return true,
            // Lost the race: someone else raised the cell. Retry against the value
            // they installed — it may still be below `cand`.
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Morphological reconstruction by dilation over a `width × height` grid
/// (4-neighborhood), seeded at `seeds` hash-chosen cells, with per-task tile
/// queues published through promoting pointer writes.
///
/// Returns a deterministic checksum of the fixpoint marker image (see the module
/// docs for why chaotic iteration makes it schedule-independent).
pub fn wavefront<C: ParCtx>(
    ctx: &C,
    width: usize,
    height: usize,
    seeds: usize,
    grain: usize,
    seed: u64,
) -> u64 {
    assert!(width > 1 && height > 1 && seeds > 0);
    let n = width * height;
    let mask = ctx.alloc_data_array(n);
    let marker = ctx.alloc_data_array(n);
    ctx.pin(mask);
    ctx.pin(marker);

    // Mask values in 1..=255 (hash-derived "image"); marker starts all-zero.
    let init_grain = grain.max(256);
    ctx.par_for(0..n, init_grain, move |c, r| {
        let vals: Vec<u64> = r
            .clone()
            .map(|i| 1 + hash64(seed ^ i as u64) % 255)
            .collect();
        c.write_nonptr_bulk(mask, r.start, &vals);
    });

    // Seed the reconstruction: marker = mask at the seed cells.
    let mut frontier: Vec<u64> = Vec::new();
    for s in 0..seeds {
        let cell = (hash64(seed ^ 0x5EED ^ s as u64) % n as u64) as usize;
        let v = ctx.read_mut(mask, cell);
        if raise(ctx, marker, cell, v) {
            frontier.push(cell as u64);
        }
    }

    // Propagate until the wavefront dies out. Each round forks over the frontier;
    // a leaf's raised cells form its tile `[len, cell, cell, ...]`, built in the
    // leaf's heap and published into the shared queue (the promoting write).
    while !frontier.is_empty() {
        let cur: &[u64] = &frontier;
        let tiles = ctx.alloc_ptr_array(cur.len());
        ctx.pin(tiles);
        ctx.par_for(0..cur.len(), grain, move |c, r| {
            let mut out: Vec<u64> = Vec::new();
            for &cell64 in &cur[r.clone()] {
                let cell = cell64 as usize;
                let v = c.read_mut(marker, cell);
                let (x, y) = (cell % width, cell / width);
                let mut probe = |nb: usize| {
                    let cand = v.min(c.read_mut(mask, nb));
                    if raise(c, marker, nb, cand) {
                        out.push(nb as u64);
                    }
                };
                if x > 0 {
                    probe(cell - 1);
                }
                if x + 1 < width {
                    probe(cell + 1);
                }
                if y > 0 {
                    probe(cell - width);
                }
                if y + 1 < height {
                    probe(cell + width);
                }
            }
            let tile = c.alloc_data_array(out.len() + 1);
            c.write_nonptr(tile, 0, out.len() as u64);
            c.write_nonptr_bulk(tile, 1, &out);
            // Blocks partition the frontier, so `r.start` indexes a slot no other
            // task writes: a single-writer publish, promoting when the leaf ran
            // stolen (or always, under eager heaps).
            c.write_ptr(tiles, r.start, tile);
        });
        // Drain the tile queue through the promoted masters to build the next
        // frontier — re-expansion reads exactly the structures the leaves
        // published.
        let mut next: Vec<u64> = Vec::new();
        for i in 0..cur.len() {
            let tile = ctx.read_mut_ptr(tiles, i);
            if tile.is_null() {
                continue;
            }
            let len = ctx.read_mut(tile, 0) as usize;
            let mut cells = vec![0u64; len];
            ctx.read_mut_bulk(tile, 1, &mut cells);
            next.extend(cells);
        }
        ctx.unpin(tiles);
        ctx.maybe_collect();
        frontier = next;
    }

    // Checksum the fixpoint image only (tile contents are schedule-dependent; the
    // fixpoint is not).
    let sums = ctx.par_map(0..n, init_grain, move |c, r| {
        let mut acc = 0u64;
        for i in r {
            acc = acc.wrapping_add(c.read_mut(marker, i).wrapping_mul(i as u64 | 1));
        }
        acc
    });
    ctx.unpin(marker);
    ctx.unpin(mask);
    sums.into_iter().fold(0u64, u64::wrapping_add)
}

/// Sequential reference reconstruction (worklist algorithm) returning the same
/// checksum; used by tests and the stress lanes as an independent oracle.
pub fn wavefront_reference(width: usize, height: usize, seeds: usize, seed: u64) -> u64 {
    let n = width * height;
    let mask: Vec<u64> = (0..n).map(|i| 1 + hash64(seed ^ i as u64) % 255).collect();
    let mut marker = vec![0u64; n];
    let mut work: Vec<usize> = Vec::new();
    for s in 0..seeds {
        let cell = (hash64(seed ^ 0x5EED ^ s as u64) % n as u64) as usize;
        if mask[cell] > marker[cell] {
            marker[cell] = mask[cell];
            work.push(cell);
        }
    }
    while let Some(cell) = work.pop() {
        let v = marker[cell];
        let (x, y) = (cell % width, cell / width);
        let probe = |nb: usize, marker: &mut Vec<u64>, work: &mut Vec<usize>| {
            let cand = v.min(mask[nb]);
            if cand > marker[nb] {
                marker[nb] = cand;
                work.push(nb);
            }
        };
        if x > 0 {
            probe(cell - 1, &mut marker, &mut work);
        }
        if x + 1 < width {
            probe(cell + 1, &mut marker, &mut work);
        }
        if y > 0 {
            probe(cell - width, &mut marker, &mut work);
        }
        if y + 1 < height {
            probe(cell + width, &mut marker, &mut work);
        }
    }
    marker.iter().enumerate().fold(0u64, |acc, (i, &m)| {
        acc.wrapping_add(m.wrapping_mul(i as u64 | 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime;
    use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
    use hh_runtime::{HhConfig, HhRuntime};

    const W: usize = 48;
    const H: usize = 48;
    const SEEDS: usize = 24;
    const SEED: u64 = 0x57AE_F207;

    #[test]
    fn wavefront_matches_sequential_reference() {
        let expected = wavefront_reference(W, H, SEEDS, 0xF00D);
        let got = SeqRuntime::new().run(|c| wavefront(c, W, H, SEEDS, 8, 0xF00D));
        assert_eq!(got, expected);
    }

    #[test]
    fn wavefront_agrees_across_runtimes() {
        let workers = hh_api::env_workers(3);
        let expected = wavefront_reference(W, H, SEEDS, SEED);
        assert_eq!(
            SeqRuntime::new().run(|c| wavefront(c, W, H, SEEDS, 8, SEED)),
            expected,
            "seq"
        );
        assert_eq!(
            StwRuntime::with_workers(workers).run(|c| wavefront(c, W, H, SEEDS, 8, SEED)),
            expected,
            "stw"
        );
        assert_eq!(
            DlgRuntime::with_workers(workers).run(|c| wavefront(c, W, H, SEEDS, 8, SEED)),
            expected,
            "dlg"
        );
        let hh = HhRuntime::with_workers(workers);
        assert_eq!(
            hh.run(|c| wavefront(c, W, H, SEEDS, 8, SEED)),
            expected,
            "parmem"
        );
        assert_eq!(hh.check_disentangled(), 0);
        // Eager heaps force every tile publish to promote, deterministically.
        let eager = HhRuntime::new(HhConfig::eager_heaps(2));
        assert_eq!(
            eager.run(|c| wavefront(c, W, H, SEEDS, 8, SEED)),
            expected,
            "parmem-eager"
        );
        let s = eager.stats();
        assert!(
            s.promotions > 0,
            "tile publishes must promote under eager heaps"
        );
        assert!(s.promoted_objects >= s.promotions);
    }
}
