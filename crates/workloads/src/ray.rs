//! A small sphere-scene raytracer (`raytracer`, §4.1), adapted in spirit from the
//! Manticore/Id benchmark the paper uses: a fixed scene of spheres lit by a point light,
//! rendered in parallel by tabulating a sequence of pixels with a row-sized grain.
//!
//! All scene data is immutable and lives in Rust constants; the output image is a
//! managed sequence of packed RGB pixels, so the workload is dominated by floating-point
//! computation plus distant non-pointer writes into the image — a pure benchmark.

use crate::seq::MSeq;
use hh_api::ParCtx;

#[derive(Copy, Clone, Debug)]
struct V3 {
    x: f64,
    y: f64,
    z: f64,
}

impl V3 {
    fn new(x: f64, y: f64, z: f64) -> V3 {
        V3 { x, y, z }
    }
    fn add(self, o: V3) -> V3 {
        V3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
    fn sub(self, o: V3) -> V3 {
        V3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
    fn scale(self, k: f64) -> V3 {
        V3::new(self.x * k, self.y * k, self.z * k)
    }
    fn dot(self, o: V3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }
    fn norm(self) -> V3 {
        let len = self.dot(self).sqrt();
        if len == 0.0 {
            self
        } else {
            self.scale(1.0 / len)
        }
    }
}

#[derive(Copy, Clone)]
struct Sphere {
    center: V3,
    radius: f64,
    color: V3,
}

const NUM_SPHERES: usize = 5;

fn scene() -> [Sphere; NUM_SPHERES] {
    [
        Sphere {
            center: V3::new(0.0, -0.6, 3.0),
            radius: 1.0,
            color: V3::new(0.9, 0.2, 0.2),
        },
        Sphere {
            center: V3::new(1.6, 0.0, 4.0),
            radius: 1.0,
            color: V3::new(0.2, 0.9, 0.2),
        },
        Sphere {
            center: V3::new(-1.6, 0.0, 4.0),
            radius: 1.0,
            color: V3::new(0.2, 0.2, 0.9),
        },
        Sphere {
            center: V3::new(0.0, 1.8, 5.0),
            radius: 1.2,
            color: V3::new(0.9, 0.9, 0.2),
        },
        Sphere {
            center: V3::new(0.0, -101.0, 5.0),
            radius: 100.0,
            color: V3::new(0.6, 0.6, 0.6),
        },
    ]
}

fn intersect(origin: V3, dir: V3, s: &Sphere) -> Option<f64> {
    let oc = origin.sub(s.center);
    let b = 2.0 * oc.dot(dir);
    let c = oc.dot(oc) - s.radius * s.radius;
    let disc = b * b - 4.0 * c;
    if disc < 0.0 {
        return None;
    }
    let t = (-b - disc.sqrt()) / 2.0;
    if t > 1e-4 {
        Some(t)
    } else {
        None
    }
}

/// Traces one primary ray and returns a packed 0x00RRGGBB pixel.
fn trace_pixel(px: usize, py: usize, width: usize, height: usize) -> u64 {
    let spheres = scene();
    let origin = V3::new(0.0, 0.0, -1.0);
    let u = (px as f64 + 0.5) / width as f64 * 2.0 - 1.0;
    let v = 1.0 - (py as f64 + 0.5) / height as f64 * 2.0;
    let dir = V3::new(u, v, 1.5).norm();
    let light = V3::new(-3.0, 4.0, -2.0);

    let mut best: Option<(f64, &Sphere)> = None;
    for s in &spheres {
        if let Some(t) = intersect(origin, dir, s) {
            if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                best = Some((t, s));
            }
        }
    }
    let color = match best {
        None => V3::new(0.05, 0.05, 0.1),
        Some((t, s)) => {
            let hit = origin.add(dir.scale(t));
            let normal = hit.sub(s.center).norm();
            let to_light = light.sub(hit).norm();
            // Shadow test.
            let mut lit = true;
            for other in &spheres {
                if intersect(hit.add(normal.scale(1e-3)), to_light, other).is_some() {
                    lit = false;
                    break;
                }
            }
            let diffuse = if lit {
                normal.dot(to_light).max(0.0)
            } else {
                0.0
            };
            s.color.scale(0.2 + 0.8 * diffuse)
        }
    };
    let to_byte = |c: f64| -> u64 { (c.clamp(0.0, 1.0) * 255.0) as u64 };
    (to_byte(color.x) << 16) | (to_byte(color.y) << 8) | to_byte(color.z)
}

/// Renders a `width × height` image in parallel, `grain` pixels per sequential block.
pub fn render<C: ParCtx>(ctx: &C, width: usize, height: usize, grain: usize) -> MSeq {
    crate::seq::tabulate(ctx, width * height, grain, move |i| {
        trace_pixel(i % width, i / width, width, height)
    })
}

/// Deterministic checksum of an image.
pub fn image_checksum<C: ParCtx>(ctx: &C, img: MSeq) -> u64 {
    crate::seq::checksum(ctx, img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_api::Runtime as _;
    use hh_baselines::SeqRuntime;
    use hh_runtime::HhRuntime;

    #[test]
    fn image_has_lit_spheres_and_background() {
        let rt = SeqRuntime::new();
        rt.run(|ctx| {
            let img = render(ctx, 64, 64, 64);
            assert_eq!(img.len(), 64 * 64);
            let pixels = img.to_vec(ctx);
            // The centre of the image hits the red sphere; the corners are background.
            let centre = pixels[32 * 64 + 32];
            assert!(
                (centre >> 16) & 0xFF > 60,
                "centre pixel should be reddish: {centre:#x}"
            );
            let corner = pixels[0];
            assert!(
                corner & 0xFF <= 0x20,
                "corner should be dark background: {corner:#x}"
            );
            // Every pixel is a valid packed RGB value.
            assert!(pixels.iter().all(|p| *p <= 0x00FF_FFFF));
        });
    }

    #[test]
    fn parallel_render_is_deterministic() {
        let expected = {
            let rt = SeqRuntime::new();
            rt.run(|ctx| render(ctx, 48, 48, 48).to_vec(ctx))
        };
        let rt = HhRuntime::with_workers(4);
        let got = rt.run(|ctx| render(ctx, 48, 48, 48).to_vec(ctx));
        assert_eq!(expected, got);
        assert_eq!(rt.stats().promoted_objects, 0);
    }
}
