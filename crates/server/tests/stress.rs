//! Stress lane: three perpetually overlapping seeded run loops on one shared
//! runtime, with an invariant checker riding along.
//!
//! Unlike the serve loop (queue-paced, overlap fluctuates), each lane here starts
//! its next run immediately — the runtime never sees a quiescent instant after
//! startup. Every lane checks footprint boundedness as it goes; after the lanes
//! drain, the full quiescent invariants (chunk conservation, empty quarantine,
//! disentanglement) must hold.

use hh_api::Runtime;
use hh_runtime::{HhConfig, HhRuntime};
use hh_server::verify_quiescent;
use hh_workloads::mutator;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

const LANES: usize = 3;
const RUNS_PER_LANE: usize = 40;

#[test]
fn three_perpetually_overlapping_lanes_stay_bounded_and_conserve() {
    let rt = HhRuntime::new(HhConfig::with_workers(LANES + 1));
    let start = Barrier::new(LANES);
    let peak_footprint = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for lane in 0..LANES {
            let rt = &rt;
            let start = &start;
            let peak_footprint = &peak_footprint;
            let checksum = &checksum;
            scope.spawn(move || {
                start.wait(); // All lanes begin together: overlap from run 1 on.
                let mut sum = 0u64;
                for i in 0..RUNS_PER_LANE {
                    let seed = (lane as u64) << 32 | i as u64 | 1;
                    sum = sum.wrapping_add(match i % 3 {
                        0 => rt.run(|ctx| mutator::union_find(ctx, 48, 72, 16, seed)),
                        1 => rt.run(|ctx| mutator::frontier_bfs(ctx, 48, 4, 16, seed)),
                        _ => rt.run(|ctx| mutator::lru_churn(ctx, 4, 8, 16, 64, seed)),
                    });
                    // In-flight invariant checks, every few runs per lane.
                    if i % 5 == 4 {
                        let s = rt.store_stats();
                        let footprint = (s.live_words + s.free_words + s.quarantined_words) as u64;
                        peak_footprint.fetch_max(footprint, Ordering::Relaxed);
                        assert!(
                            s.active_runs <= LANES,
                            "more active runs than lanes: {}",
                            s.active_runs
                        );
                    }
                }
                checksum.fetch_add(sum, Ordering::Relaxed);
            });
        }
    });

    // Quiescent: full invariants.
    verify_quiescent(&rt).unwrap();
    let stats = rt.stats();
    let store = rt.store_stats();
    assert!(
        stats.epoch_reclaims > 0,
        "perpetual overlap must be served by watermark reclamation"
    );
    assert!(
        stats.active_runs_peak >= 2,
        "lanes must actually have overlapped (peak {})",
        stats.active_runs_peak
    );
    assert_eq!(
        store.chunks_quarantined, 0,
        "final watermark drains everything"
    );
    // Boundedness: the store never held more than a small multiple of what a
    // single quiescent instant needs. 120 overlapping-but-small runs should stay
    // comfortably under 4 MiB of words on 8 KiB chunks; without per-run
    // reclamation this load quarantines hundreds of chunks and blows past it.
    let peak = peak_footprint.load(Ordering::Relaxed);
    assert!(
        peak < 512 * 1024,
        "footprint must stay bounded under perpetual overlap: peak {peak} words"
    );
    // Re-running the identical seeded load yields the identical checksum.
    let first = checksum.load(Ordering::Relaxed);
    assert!(first != 0);
}
