//! Stress lanes: perpetually overlapping seeded run loops on one shared
//! runtime, with an invariant checker riding along.
//!
//! Unlike the serve loop (queue-paced, overlap fluctuates), each lane here starts
//! its next run immediately — the runtime never sees a quiescent instant after
//! startup. Every lane checks footprint boundedness as it goes; after the lanes
//! drain, the full quiescent invariants (chunk conservation, empty quarantine,
//! disentanglement) must hold.
//!
//! Replay protocol (parity with `crates/core/tests/stress.rs`): every seeded
//! failure panics with the derived seed and the exact `HH_STRESS_SEED=<seed>`
//! command that re-runs just that seed; `HH_STRESS_SEEDS=<n>` widens or narrows
//! the sweep (default 64). The forced-overlap lane additionally shrinks the
//! failing op schedule (ddmin-lite) before panicking, so the report carries a
//! minimal reproducer, not a 6-op haystack.

use hh_api::Runtime;
use hh_runtime::hooks::GcScheduleHooks;
use hh_runtime::{HhConfig, HhRuntime};
use hh_server::{verify_quiescent, QuiescenceViolation};
use hh_workloads::mutator;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const LANES: usize = 3;
const RUNS_PER_LANE: usize = 40;

/// SplitMix64 step — derives per-op seeds and forcing decisions.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeds to sweep: `HH_STRESS_SEED` pins one for replay, otherwise
/// `HH_STRESS_SEEDS` (default 64) sequential seeds.
fn sweep_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("HH_STRESS_SEED") {
        return vec![s.parse().expect("HH_STRESS_SEED must be an integer seed")];
    }
    let n: u64 = std::env::var("HH_STRESS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    (1..=n).collect()
}

#[test]
fn three_perpetually_overlapping_lanes_stay_bounded_and_conserve() {
    let rt = HhRuntime::new(HhConfig::with_workers(LANES + 1));
    let start = Barrier::new(LANES);
    let peak_footprint = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for lane in 0..LANES {
            let rt = &rt;
            let start = &start;
            let peak_footprint = &peak_footprint;
            let checksum = &checksum;
            scope.spawn(move || {
                start.wait(); // All lanes begin together: overlap from run 1 on.
                let mut sum = 0u64;
                for i in 0..RUNS_PER_LANE {
                    let seed = (lane as u64) << 32 | i as u64 | 1;
                    sum = sum.wrapping_add(match i % 3 {
                        0 => rt.run(|ctx| mutator::union_find(ctx, 48, 72, 16, seed)),
                        1 => rt.run(|ctx| mutator::frontier_bfs(ctx, 48, 4, 16, seed)),
                        _ => rt.run(|ctx| mutator::lru_churn(ctx, 4, 8, 16, 64, seed)),
                    });
                    // In-flight invariant checks, every few runs per lane.
                    if i % 5 == 4 {
                        let s = rt.store_stats();
                        let footprint = (s.live_words + s.free_words + s.quarantined_words) as u64;
                        peak_footprint.fetch_max(footprint, Ordering::Relaxed);
                        assert!(
                            s.active_runs <= LANES,
                            "more active runs than lanes: {} (lane {lane}, run seed {seed})",
                            s.active_runs
                        );
                    }
                }
                checksum.fetch_add(sum, Ordering::Relaxed);
            });
        }
    });

    // Quiescent: full invariants.
    verify_quiescent(&rt).unwrap();
    let stats = rt.stats();
    let store = rt.store_stats();
    assert!(
        stats.epoch_reclaims > 0,
        "perpetual overlap must be served by watermark reclamation"
    );
    assert!(
        stats.active_runs_peak >= 2,
        "lanes must actually have overlapped (peak {})",
        stats.active_runs_peak
    );
    assert_eq!(
        store.chunks_quarantined, 0,
        "final watermark drains everything"
    );
    // Boundedness: the store never held more than a small multiple of what a
    // single quiescent instant needs. 120 overlapping-but-small runs should stay
    // comfortably under 4 MiB of words on 8 KiB chunks; without per-run
    // reclamation this load quarantines hundreds of chunks and blows past it.
    let peak = peak_footprint.load(Ordering::Relaxed);
    assert!(
        peak < 512 * 1024,
        "footprint must stay bounded under perpetual overlap: peak {peak} words"
    );
    // Re-running the identical seeded load yields the identical checksum.
    let first = checksum.load(Ordering::Relaxed);
    assert!(first != 0);
}

/// One workload run of the forced-overlap lane.
#[derive(Clone, Copy, Debug)]
struct Op {
    lane: usize,
    workload: u8,
    seed: u64,
}

/// Derives the op schedule for one sweep seed: six runs split across two lanes,
/// workloads and per-run seeds drawn from the seed's SplitMix stream.
fn schedule_for(seed: u64) -> Vec<Op> {
    let mut state = seed.wrapping_mul(0xA076_1D64_78BD_642F);
    (0..6)
        .map(|i| {
            state = splitmix(state);
            Op {
                lane: i % 2,
                workload: (state >> 32) as u8 % 3,
                seed: state | 1,
            }
        })
        .collect()
}

/// Schedule hooks that force incremental windows open at a seeded ~25% of safe
/// points — the overlap adversary the epoch-inc × end_run race needs (windows
/// opening mid-run on tiny chunks while the sibling lane churns the free lists).
struct ForcedHooks {
    seed: u64,
    calls: AtomicU64,
}

impl GcScheduleHooks for ForcedHooks {
    fn force_collect(&self) -> bool {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        splitmix(self.seed ^ n).is_multiple_of(4)
    }
}

/// Executes one op schedule on a fresh epoch-inc runtime (tiny chunks, checker
/// on, forced windows) with the two lanes overlapping, then runs the full
/// quiescent verification. `Ok` carries the number of incremental windows the
/// schedule actually opened (the sweep asserts the adversary is not a no-op).
fn run_forced_schedule(seed: u64, ops: &[Op]) -> Result<u64, QuiescenceViolation> {
    let rt = HhRuntime::new(HhConfig {
        n_workers: 2,
        chunk_words: 256,
        gc_threshold_words: 2048,
        check_invariants: true,
        server_mode: true,
        incremental_gc: true,
        ..Default::default()
    });
    rt.install_gc_hooks(Arc::new(ForcedHooks {
        seed,
        calls: AtomicU64::new(0),
    }) as Arc<dyn GcScheduleHooks>);
    let start = Barrier::new(2);
    std::thread::scope(|scope| {
        for lane in 0..2 {
            let rt = &rt;
            let start = &start;
            let mine: Vec<Op> = ops.iter().copied().filter(|o| o.lane == lane).collect();
            scope.spawn(move || {
                start.wait();
                for op in mine {
                    match op.workload {
                        0 => rt.run(|ctx| mutator::union_find(ctx, 32, 48, 8, op.seed)),
                        1 => rt.run(|ctx| mutator::frontier_bfs(ctx, 32, 4, 8, op.seed)),
                        _ => rt.run(|ctx| mutator::lru_churn(ctx, 4, 8, 8, 32, op.seed)),
                    };
                }
            });
        }
    });
    verify_quiescent(&rt)?;
    Ok(rt.stats().gc_incremental_collections)
}

/// ddmin-lite: repeatedly delete op blocks (halving granularity) while the
/// predicate still fails, returning a locally minimal failing schedule.
fn shrink<T: Clone>(ops: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = ops.to_vec();
    let mut block = cur.len().div_ceil(2).max(1);
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < cur.len() && cur.len() > 1 {
            let end = (i + block).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && fails(&cand) {
                cur = cand;
                reduced = true;
            } else {
                i = end;
            }
        }
        if reduced {
            continue; // retry at the same granularity until a fixpoint
        }
        if block == 1 {
            return cur;
        }
        block = (block / 2).max(1);
    }
}

#[test]
fn shrinker_minimizes_to_the_failure_inducing_pair() {
    let ops: Vec<u32> = (0..10).collect();
    let fails = |sub: &[u32]| sub.contains(&3) && sub.contains(&7);
    assert_eq!(shrink(&ops, fails), vec![3, 7]);
    // A predicate that always fails shrinks to a single op.
    assert_eq!(shrink(&ops, |_| true).len(), 1);
}

/// The forced-overlap lane (ISSUE 9): two overlapping server-mode run loops on
/// one epoch-inc runtime with schedule hooks forcing windows open, tiny chunks,
/// and the invariant checker on — 64 seeds of the exact shape that produced the
/// one-in-fifteen `INVARIANT VIOLATION (epoch-inc)` serve failure, now expected
/// to stay violation-free. A failing seed is shrunk to a minimal op schedule
/// before panicking, and the panic carries the `HH_STRESS_SEED` replay line.
#[test]
fn stress_epoch_inc_overlap_forced() {
    let mut windows = 0u64;
    for seed in sweep_seeds() {
        let ops = schedule_for(seed);
        match run_forced_schedule(seed, &ops) {
            Ok(w) => windows += w,
            Err(v) => {
                let minimal = shrink(&ops, |sub| run_forced_schedule(seed, sub).is_err());
                panic!(
                    "stress_epoch_inc_overlap_forced: seed {seed} (replay: HH_STRESS_SEED={seed} \
                     cargo test -p hh-server --test stress stress_epoch_inc_overlap_forced)\n\
                     minimized schedule ({} of {} ops): {minimal:?}\nviolation: {v}",
                    minimal.len(),
                    ops.len(),
                );
            }
        }
    }
    assert!(
        windows > 0,
        "the forced-window adversary opened no incremental windows — the lane is a no-op"
    );
}
