//! Chaos lanes: seeded fault-injection sweeps plus deterministic overlap-abort
//! scenarios on the shared multi-tenant runtime.
//!
//! The sweep lane drives 64 chaos seeds (each a full serve experiment under an
//! armed [`FaultPlan`]) and asserts every seed ends with at least one genuinely
//! aborted attempt, quiescent invariants, zero leaked run epochs, and
//! checksum-correct survivors. Replay protocol (parity with the stress lanes):
//! `HH_CHAOS_SEED=<i>` reruns just sweep index `i`; `HH_CHAOS_SEEDS=<n>` widens
//! or narrows the sweep (default 64); `HH_WORKERS` sizes the pools (the CI
//! chaos job runs the sweep at 1 and 8).
//!
//! The two overlap-abort tests are the deterministic core of the failure model:
//! three overlapping server-mode runs, one killed mid-promotion (between two
//! publishing writes inside a fork) or mid-incremental-window (a certain fault
//! at the window-start hook), after which the store must conserve, the
//! reclamation watermark must advance past the dead run's epoch, and the two
//! survivors must produce exactly the results a fault-free runtime produces.

use hh_api::{silence_expected_aborts, InjectedFault, ParCtx, RunCtl, RunError, Runtime};
use hh_runtime::{FaultPlan, FaultSite, GcScheduleHooks, HhConfig, HhCtx, HhRuntime};
use hh_server::{chaos_one, verify_quiescent, ChaosConfig};
use std::sync::{Arc, Barrier};

/// Sweep indices: `HH_CHAOS_SEED` pins one for replay, otherwise
/// `HH_CHAOS_SEEDS` (default 64) sequential indices.
fn sweep_indices() -> Vec<u64> {
    if let Ok(s) = std::env::var("HH_CHAOS_SEED") {
        return vec![s.parse().expect("HH_CHAOS_SEED must be a sweep index")];
    }
    let n: u64 = std::env::var("HH_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    (0..n).collect()
}

#[test]
fn chaos_sweep_every_seed_aborts_and_holds_invariants() {
    let cfg = ChaosConfig::default();
    for i in sweep_indices() {
        let seed = cfg.base_seed + i;
        let out = chaos_one(&cfg, seed);
        // `chaos_one` escalates the fault rate until the seed aborts, so this
        // is an assertion about the lane's own honesty: a sweep where nothing
        // ever died would vacuously "pass" every invariant below.
        assert!(
            out.report.aborted >= 1,
            "seed {seed:#x} never aborted a run"
        );
        assert!(
            out.injected >= 1,
            "seed {seed:#x} aborted without injecting"
        );
        assert!(
            out.clean(),
            "HH_CHAOS_SEED={i} replays this failure — seed {seed:#x} at {} ppm: \
             violation={:?}, active_runs={}, checksum_ok={}, report={}",
            out.rate_ppm,
            out.violation.as_ref().map(|v| v.reason.clone()),
            out.active_runs,
            out.checksum_ok,
            out.report.to_json(),
        );
    }
}

/// Fixed survivor workload: its result is a pure function of nothing but the
/// ops below, so a fault-free runtime recomputes the expected value exactly.
fn survivor_work(ctx: &HhCtx) -> u64 {
    let mut objs = Vec::new();
    for i in 0..200u64 {
        objs.push(ctx.alloc_ref_data(i * 3 + 1));
    }
    let mut sum = 0u64;
    for o in &objs {
        sum = sum.wrapping_add(ctx.read_mut(*o, 0));
    }
    sum
}

/// Runs the victim closure and two survivors as three overlapping runs (a
/// barrier inside the run bodies guarantees all three are simultaneously
/// active), then asserts the post-abort invariants: the victim died of its
/// injected fault, both survivors are checksum-correct, the teardown guard ran
/// (`aborted_runs`), no run epoch leaked, the reclamation watermark advanced
/// past the dead run's epoch, and the store conserves.
fn overlap_abort_case<V>(rt: &HhRuntime, victim: V, expected_site: &'static str)
where
    V: FnOnce(&HhCtx, &Barrier) -> u64 + Send,
{
    let watermark_before = rt.min_active_epoch();
    let start = Barrier::new(3);
    let (victim_res, s1, s2) = std::thread::scope(|scope| {
        let start = &start;
        let v = scope.spawn(move || {
            let ctl = RunCtl::new();
            rt.try_run(&ctl, |ctx| victim(ctx, start))
        });
        let mut survivors = Vec::new();
        for _ in 0..2 {
            survivors.push(scope.spawn(move || {
                let ctl = RunCtl::new();
                rt.try_run(&ctl, |ctx| {
                    start.wait();
                    survivor_work(ctx)
                })
            }));
        }
        let s2 = survivors.pop().unwrap().join().unwrap();
        let s1 = survivors.pop().unwrap().join().unwrap();
        (v.join().unwrap(), s1, s2)
    });
    assert_eq!(victim_res, Err(RunError::InjectedFault(expected_site)));
    let expected = HhRuntime::new(HhConfig::with_workers(2)).run(survivor_work);
    assert_eq!(s1, Ok(expected), "survivor 1 corrupted by the abort");
    assert_eq!(s2, Ok(expected), "survivor 2 corrupted by the abort");
    assert!(rt.aborted_runs() >= 1, "teardown guard never ran");
    assert_eq!(rt.active_runs(), 0, "the aborted run leaked its epoch");
    assert!(
        rt.min_active_epoch() > watermark_before,
        "the aborted run pinned the reclamation watermark"
    );
    verify_quiescent(rt).unwrap();
}

#[test]
fn abort_mid_promotion_amid_three_overlapping_runs() {
    silence_expected_aborts();
    let mut cfg = HhConfig::with_workers(hh_api::env_workers(4).max(3));
    // Eager child heaps: every fork allocates in its own heap, so publishing a
    // child object into the parent's array is guaranteed to promote.
    cfg.lazy_child_heaps = false;
    cfg.server_mode = true;
    let rt = HhRuntime::new(cfg);
    overlap_abort_case(
        &rt,
        |ctx, start| {
            let cell = ctx.alloc_ptr_array(8);
            start.wait();
            let ((), ()) = ctx.join(
                |c| {
                    for _ in 0..64 {
                        std::hint::black_box(c.alloc_ref_data(1));
                    }
                },
                |c| {
                    // Publish child allocations into the parent's array — each
                    // write promotes the child object upward — then die between
                    // two promoting writes: the abort unwinds across the fork
                    // with promotion state in flight.
                    for i in 0..4usize {
                        let x = c.alloc_ref_data(i as u64);
                        c.write_ptr(cell, i, x);
                    }
                    std::panic::panic_any(InjectedFault { site: "alloc" });
                },
            );
            0
        },
        "alloc",
    );
}

#[test]
fn abort_mid_incremental_window_amid_three_overlapping_runs() {
    silence_expected_aborts();
    let mut cfg = HhConfig::incremental(hh_api::env_workers(4).max(3));
    cfg.server_mode = true;
    // Low threshold so the victim's allocations actually open a window.
    cfg.gc_threshold_words = 20_000;
    let rt = HhRuntime::new(cfg);
    // Certain fault at window-start only: the victim dies the moment it opens
    // its incremental window, leaving the window for the abort teardown's
    // forced finalize. The survivors never call `maybe_collect`, so they can
    // not trip the site themselves.
    let plan = Arc::new(FaultPlan::uniform(0xB00, 0).with_rate(FaultSite::WindowStart, 1_000_000));
    rt.install_gc_hooks(Arc::clone(&plan) as Arc<dyn GcScheduleHooks>);
    overlap_abort_case(
        &rt,
        |ctx, start| {
            start.wait();
            for _ in 0..200 {
                std::hint::black_box(ctx.alloc_data_array(256));
                ctx.maybe_collect();
            }
            0
        },
        "window-start",
    );
    assert!(
        plan.injected_at(FaultSite::WindowStart) >= 1,
        "the window-start fault never fired"
    );
}
