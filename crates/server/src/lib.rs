//! hh-server — a multi-tenant driver for the hierarchical-heap runtime.
//!
//! The paper's evaluation runs one benchmark at a time to completion; a server
//! setting instead keeps **thousands of independent runs perpetually in flight**
//! on one shared runtime. This crate provides that harness: client threads
//! generate requests, a bounded queue applies back-pressure, and executor threads
//! drive overlapping [`hh_api::Runtime::run`] calls, measuring throughput,
//! enqueue-to-completion latency percentiles (p50/p99/p999), and the store's
//! footprint over time.
//!
//! The experiment exists to demonstrate the epoch-based reclamation of DESIGN.md
//! §5: under perpetual overlap the hierarchical runtime keeps recycling chunks
//! (`chunks_recycled` ≈ 100% of handouts, footprint bounded), while the A5
//! global-horizon ablation — which reclaims only when *no* run is active — lets
//! its quarantine grow with the request count.
//!
//! Entry points: [`serve()`] (the loop), [`ServeConfig`], [`ServeReport`] (with
//! machine-readable [`ServeReport::to_json`]), and [`verify_quiescent`] (post-run
//! invariant check). The `serve` binary wraps these for the command line and CI.

pub mod chaos;
pub mod queue;
pub mod serve;

pub use chaos::{chaos_one, chaos_sweep, ChaosConfig, ChaosOutcome};
pub use hh_api::{LatencyRecorder, LatencySummary};
pub use queue::{BoundedQueue, TryPushError};
pub use serve::{serve, verify_quiescent, QuiescenceViolation, ServeConfig, ServeReport};
