//! A bounded MPMC queue: the admission control between client threads and the
//! executor threads that drive runs on the shared runtime.
//!
//! Blocking semantics on both ends — a full queue blocks producers (back-pressure
//! instead of unbounded request buildup), an empty one blocks consumers — built on
//! the vendored `parking_lot` `Mutex` + `Condvar` (the build environment has no
//! crates.io access, so no channel crate). Closing the queue wakes everyone:
//! producers give up, consumers drain what is left and then see `None`.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was at capacity; the item is handed back. Admission control
    /// turns this into a typed *rejection* instead of blocking the client.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// A bounded blocking MPMC queue. `push` blocks while full, `pop` blocks while
/// empty; `close` unblocks both sides permanently.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` queued items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `Err(item)` if
    /// the queue was closed before space appeared.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut st);
        }
    }

    /// Non-blocking enqueue: fails immediately with [`TryPushError::Full`] when
    /// the queue is at capacity instead of waiting for space. This is the
    /// admission-control entry point — under overload the server *sheds* the
    /// request (typed rejection the client can count) rather than stacking up
    /// blocked producer threads.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(TryPushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Returns a guard that [`close`](BoundedQueue::close)s the queue when
    /// dropped — **including on unwind**. Executors hold one while draining the
    /// queue: if the last executor dies of a panic (an injected fault that
    /// escaped a run), producers blocked in [`push`](BoundedQueue::push) get
    /// `Err` back instead of deadlocking on a condvar nobody will ever signal
    /// again.
    pub fn close_on_drop(self: &std::sync::Arc<Self>) -> CloseGuard<T> {
        CloseGuard {
            queue: std::sync::Arc::clone(self),
        }
    }

    /// Dequeues an item, blocking while the queue is empty. Returns `None` once the
    /// queue is closed **and** drained — remaining items are always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Closes the queue: pending and future `push`es fail, `pop` drains and then
    /// returns `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Number of currently queued items (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True when no item is queued (diagnostic; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Guard from [`BoundedQueue::close_on_drop`]: closes the queue when dropped.
pub struct CloseGuard<T> {
    queue: std::sync::Arc<BoundedQueue<T>>,
}

impl<T> Drop for CloseGuard<T> {
    fn drop(&mut self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn producers_block_on_full_queue_until_consumed() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0usize).unwrap();
        let pushed = Arc::new(AtomicUsize::new(0));
        let producer = {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                for i in 1..=100 {
                    q.push(i).unwrap();
                    pushed.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let mut got = Vec::new();
        for _ in 0..=100 {
            got.push(q.pop().unwrap());
            // Back-pressure invariant: the producer can never be more than
            // `capacity` items ahead of what has been consumed.
            assert!(pushed.load(Ordering::Relaxed) <= got.len() + 1);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..=100).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_sheds_on_full_and_closed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(TryPushError::Closed(5)));
        // Shedding never loses queued items: the accepted ones still drain.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn panicking_consumer_unblocks_producers_via_close_guard() {
        // Regression for the executor-death deadlock: a producer blocked on a
        // full queue whose only consumer dies would wait forever on `not_full`.
        // The consumer's `close_on_drop` guard must close the queue on unwind so
        // the producer's `push` returns `Err` instead.
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0usize).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _close = q.close_on_drop();
                let _ = q.pop();
                panic!("executor killed by an injected fault");
            })
        };
        assert!(consumer.join().is_err());
        // Without the guard this join would hang forever.
        let refused = producer.join().unwrap();
        // The pop may or may not have freed a slot before the panic; either the
        // push squeaked in or it was refused — but it must have *returned*.
        if let Err(item) = refused {
            assert_eq!(item, 1);
        }
        assert!(q.pop().is_none() || q.pop().is_none(), "drains then ends");
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let total = 400usize;
        let consumed = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Some(v) = q.pop() {
                        sum += v;
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 2 {
                        q.push(p * (total / 2) + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let sum: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed.load(Ordering::Relaxed), total);
        assert_eq!(sum, (0..total).sum::<usize>());
    }
}
