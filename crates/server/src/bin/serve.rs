//! `serve` — drive overlapping independent runs against one shared runtime and
//! report throughput, latency percentiles, and memory-reclamation behavior.
//!
//! ```text
//! serve [--runs N] [--clients C] [--executors E] [--workers W] [--queue-cap Q]
//!       [--seed S] [--scale K] [--gc-threshold WORDS]
//!       [--mode epoch|epoch-inc|global|both|all]
//!       [--runtime parmem|seq|stw|dlg] [--workload NAME] [--json PATH]
//!       [--faults PPM] [--deadline-ms MS] [--max-attempts N] [--backoff-us US]
//!       [--shed-inflight N]
//! ```
//!
//! `--mode both` (the default for parmem) runs the epoch-reclamation runtime and
//! the A5 global-horizon ablation back to back under the identical load, printing
//! the contrast the PR-6 tentpole claims: epoch mode keeps recycling under
//! perpetual overlap, the global horizon does not. `epoch-inc` is the epoch
//! runtime with incremental collection (GC v3) enabled — one tenant's collection
//! no longer pauses for its whole live set, which shows up in the tail of every
//! other tenant's latency; `all` runs all three parmem shapes. `--json PATH`
//! appends one JSON object per mode (machine-readable, for CI artifacts).
//! `--gc-threshold` lowers the per-heap collection threshold (parmem only) so a
//! large-live-set tenant mix actually collects mid-run — the configuration the
//! epoch vs epoch-inc p999 contrast is measured under. `--workload NAME` pins
//! every request to one registry workload (e.g. `wavefront`, `entangle`) instead
//! of the default mutator mix; unknown names are rejected with the list of valid
//! ids.
//!
//! The failure-model flags (DESIGN.md §13): `--faults PPM` installs a seeded
//! fault plan on the parmem runtime (per-hook-site panic probability in parts
//! per million) — runs it kills are retried up to `--max-attempts` times with
//! `--backoff-us`-jittered backoff, and the report's `requested` vs `runs`
//! (completed) gap plus the abort/retry/failed counters become the partial
//! result. `--deadline-ms` gives every run a cooperative deadline polled at
//! safe points; `--shed-inflight N` turns on admission control (clients shed
//! new requests while ≥ N runs are in flight, counted as `rejected`).

use hh_baselines::{DlgRuntime, SeqRuntime, StwRuntime};
use hh_runtime::{FaultPlan, GcScheduleHooks, HhConfig, HhRuntime};
use hh_server::{serve, verify_quiescent, ServeConfig, ServeReport};
use hh_workloads::ServeWorkloadId;
use std::io::Write;
use std::sync::Arc;

fn usage() -> ! {
    let names: Vec<&str> = ServeWorkloadId::ALL.iter().map(|w| w.name()).collect();
    eprintln!(
        "usage: serve [--runs N] [--clients C] [--executors E] [--workers W] \
         [--queue-cap Q] [--seed S] [--scale K] [--gc-threshold WORDS] \
         [--mode epoch|epoch-inc|global|both|all] \
         [--runtime parmem|seq|stw|dlg] [--workload {}] [--json PATH] \
         [--faults PPM] [--deadline-ms MS] [--max-attempts N] [--backoff-us US] \
         [--shed-inflight N]",
        names.join("|")
    );
    std::process::exit(2);
}

fn print_report(r: &ServeReport) {
    let us = |ns: u64| ns as f64 / 1e3;
    println!(
        "{:<8} {:<8} {:>6} runs  {:>9.1} runs/s  p50 {:>8.1}us  p99 {:>8.1}us  \
         p999 {:>8.1}us  max {:>8.1}us",
        r.runtime,
        r.mode,
        r.runs,
        r.throughput_rps,
        us(r.latency.p50_ns),
        us(r.latency.p99_ns),
        us(r.latency.p999_ns),
        us(r.latency.max_ns),
    );
    if r.requested != r.runs || r.aborted > 0 || r.rejected > 0 {
        println!(
            "{:<17} requested {:>6}  completed {:>6}  aborted {:>4}  retried {:>4}  \
             rejected {:>4}  deadline {:>4}  failed {:>4}",
            "", r.requested, r.runs, r.aborted, r.retried, r.rejected, r.deadline_hits, r.failed,
        );
    }
    println!(
        "{:<17} recycle {:>5.1}%  created {:>6}  recycled {:>8}  epoch-reclaims {:>8}  \
         overlap-peak {:>3}  quarantine {:>9} w  peak-footprint {:>10} w",
        "",
        100.0 * r.recycle_rate(),
        r.stats.chunks_created,
        r.stats.chunks_recycled,
        r.stats.epoch_reclaims,
        r.stats.active_runs_peak,
        r.stats.quarantine_lag_words,
        r.peak_footprint_words,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut workers = 2usize;
    let mut mode = String::from("both");
    let mut runtime = String::from("parmem");
    let mut json_path: Option<String> = None;
    let mut gc_threshold: Option<usize> = None;
    let mut faults_ppm: u32 = 0;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        let num = |i: usize| val(i).parse::<usize>().unwrap_or_else(|_| usage());
        match args[i].as_str() {
            "--runs" => cfg.runs = num(i),
            "--clients" => cfg.clients = num(i),
            "--executors" => cfg.executors = num(i),
            "--workers" => workers = num(i),
            "--queue-cap" => cfg.queue_cap = num(i),
            "--seed" => cfg.seed = val(i).parse().unwrap_or_else(|_| usage()),
            "--scale" => cfg.scale = num(i),
            "--gc-threshold" => gc_threshold = Some(num(i)),
            "--mode" => mode = val(i),
            "--runtime" => runtime = val(i),
            "--workload" => {
                let name = val(i);
                cfg.workload = Some(ServeWorkloadId::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown workload {name:?}");
                    usage()
                }));
            }
            "--json" => json_path = Some(val(i)),
            "--faults" => faults_ppm = val(i).parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => cfg.deadline_ms = Some(num(i) as u64),
            "--max-attempts" => cfg.max_attempts = val(i).parse().unwrap_or_else(|_| usage()),
            "--backoff-us" => cfg.backoff_us = num(i) as u64,
            "--shed-inflight" => cfg.shed_inflight = Some(num(i)),
            _ => usage(),
        }
        i += 2;
    }

    if faults_ppm > 0 && runtime != "parmem" {
        eprintln!(
            "note: --faults installs hooks on the parmem runtime only; ignored for {runtime}"
        );
    }

    println!(
        "# serve — {} runs, {} clients -> queue({}) -> {} executors on {} pool workers, \
         scale {}, seed {}\n",
        cfg.runs, cfg.clients, cfg.queue_cap, cfg.executors, workers, cfg.scale, cfg.seed
    );

    let mut reports: Vec<ServeReport> = Vec::new();
    match runtime.as_str() {
        "parmem" => {
            if !matches!(
                mode.as_str(),
                "epoch" | "epoch-inc" | "global" | "both" | "all"
            ) {
                usage();
            }
            type ConfigCtor = fn(usize) -> HhConfig;
            let shapes: [(&str, ConfigCtor); 3] = [
                ("epoch", HhConfig::with_workers),
                ("epoch-inc", HhConfig::incremental),
                ("global", HhConfig::global_horizon),
            ];
            for (label, config) in shapes {
                let selected = match mode.as_str() {
                    "both" => label != "epoch-inc",
                    "all" => true,
                    m => m == label,
                };
                if !selected {
                    continue;
                }
                let mut hh_cfg = config(workers);
                if let Some(t) = gc_threshold {
                    hh_cfg.gc_threshold_words = t;
                }
                let rt = HhRuntime::new(hh_cfg);
                let plan = (faults_ppm > 0).then(|| {
                    hh_api::silence_expected_aborts();
                    let p = Arc::new(FaultPlan::uniform(cfg.seed ^ 0xFA17_5EED, faults_ppm));
                    rt.install_gc_hooks(Arc::clone(&p) as Arc<dyn GcScheduleHooks>);
                    p
                });
                let report = serve(&rt, &cfg, label);
                if let Some(p) = &plan {
                    p.set_armed(false);
                    println!(
                        "{:<17} faults {faults_ppm} ppm: injected {}  run-aborts {}  \
                         finalize-rescues {}",
                        "",
                        p.injected_total(),
                        rt.aborted_runs(),
                        rt.finalize_rescues(),
                    );
                }
                if let Err(e) = verify_quiescent(&rt) {
                    // Human-readable forensics on stderr, one machine-readable
                    // JSON line on stdout (and into `$HH_VIOLATION_JSON` /
                    // `--json` when set) so CI can archive the failure with the
                    // replay seed even when the log scrolls away.
                    eprintln!("INVARIANT VIOLATION ({label}): {e}");
                    let line = e.to_json(&cfg, label);
                    println!("{line}");
                    let mut sinks: Vec<String> = json_path.iter().cloned().collect();
                    if let Ok(p) = std::env::var("HH_VIOLATION_JSON") {
                        if !p.is_empty() && !sinks.contains(&p) {
                            sinks.push(p);
                        }
                    }
                    for path in sinks {
                        match std::fs::OpenOptions::new()
                            .create(true)
                            .append(true)
                            .open(&path)
                        {
                            Ok(mut out) => {
                                let _ = writeln!(out, "{line}");
                            }
                            Err(err) => eprintln!("cannot open {path}: {err}"),
                        }
                    }
                    std::process::exit(1);
                }
                print_report(&report);
                reports.push(report);
            }
        }
        // The baselines have no per-run heap trees; they dispose at global
        // quiescence by construction, so there is exactly one mode.
        "seq" => {
            let rt = SeqRuntime::new();
            let report = serve(&rt, &cfg, "quiescent");
            print_report(&report);
            reports.push(report);
        }
        "stw" => {
            let rt = StwRuntime::with_workers(workers);
            let report = serve(&rt, &cfg, "quiescent");
            print_report(&report);
            reports.push(report);
        }
        "dlg" => {
            let rt = DlgRuntime::with_workers(workers);
            let report = serve(&rt, &cfg, "quiescent");
            print_report(&report);
            reports.push(report);
        }
        _ => usage(),
    }

    if let Some(path) = json_path {
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
        for r in &reports {
            writeln!(out, "{}", r.to_json()).expect("writing JSON report");
        }
        println!("\nwrote {} JSON record(s) to {path}", reports.len());
    }
}
