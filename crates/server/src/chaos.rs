//! Seeded chaos lane: serve sweeps with the fault-injection layer armed.
//!
//! Each chaos *seed* builds a fresh hierarchical runtime, installs a seeded
//! [`FaultPlan`] (panics and allocation failures at hook
//! sites, per-site probability derived from the seed), and drives a small
//! multi-tenant [`serve`] sweep against it. Afterwards the lane checks what the
//! failure model promises (DESIGN.md §13):
//!
//! * the serve accounting conserves requests (asserted inside [`serve`]);
//! * at least one run was actually aborted — a chaos seed that never fired
//!   proves nothing, so the per-seed fault rate escalates until one does;
//! * the runtime is quiescent: chunk conservation, zero registered runs
//!   (no leaked epochs pinning the reclamation watermark), disentangled heaps;
//! * every *surviving* run's result is checksum-correct — each result is a pure
//!   function of `(workload, seed, scale)`, so the lane recomputes the
//!   survivors' contributions on a fresh fault-free runtime and compares.
//!
//! The sweep is fully deterministic in its inputs (chaos seed → fault plan,
//! request seeds, backoff jitter); outcomes still vary with scheduling, which
//! is the point — every seed explores a different interleaving of faults
//! against the same invariants.

use crate::serve::{serve, verify_quiescent, QuiescenceViolation, ServeConfig, ServeReport};
use hh_runtime::{FaultPlan, HhConfig, HhRuntime, Runtime};
use hh_workloads::ServeWorkloadId;
use std::sync::Arc;

/// Configuration of one chaos sweep (shared by the test lane and `repro chaos`).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Number of chaos seeds to sweep.
    pub seeds: u64,
    /// First chaos seed; seed `i` of the sweep is `base_seed + i`.
    pub base_seed: u64,
    /// Requests per seed's serve sweep.
    pub runs: usize,
    /// Client threads per sweep.
    pub clients: usize,
    /// Executor threads per sweep (the run-overlap degree faults land in).
    pub executors: usize,
    /// Pool workers of each runtime.
    pub workers: usize,
    /// Initial uniform per-site fault rate, parts per million. Escalates
    /// (×8, capped at certainty) until the seed produces at least one abort.
    pub rate_ppm: u32,
    /// Optional per-run deadline for the swept runs.
    pub deadline_ms: Option<u64>,
    /// Attempts per request (retry budget for fault-killed runs).
    pub max_attempts: u32,
    /// Workload scale of the swept runs.
    pub scale: usize,
    /// Sweep the incremental-GC runtime shape (windows give the fault plan its
    /// finalize sites); `false` sweeps the monolithic-collection shape.
    pub incremental: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: 64,
            base_seed: 0xC4A0_5EED,
            runs: 10,
            clients: 2,
            executors: 3,
            workers: hh_api::env_workers(2),
            rate_ppm: 60,
            deadline_ms: None,
            max_attempts: 2,
            scale: 1,
            incremental: true,
        }
    }
}

/// What one chaos seed did and left behind.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// The fault rate (ppm) the seed ended up running at (after escalation).
    pub rate_ppm: u32,
    /// Faults the plan injected across the sweep.
    pub injected: u64,
    /// Runs whose teardown ran under an unwind (the runtime's abort counter).
    pub aborted_runs: u64,
    /// Incremental-finalize rescues the runtime performed (hook panic mid-
    /// finalize, window completed by the unwind guard).
    pub finalize_rescues: u64,
    /// Runs still registered active after the sweep (must be 0 — a leaked
    /// run epoch would pin the reclamation watermark forever).
    pub active_runs: u64,
    /// First violated quiescence invariant, if any (must be `None`).
    pub violation: Option<QuiescenceViolation>,
    /// True when the survivors' recomputed checksum matches the report.
    pub checksum_ok: bool,
    /// The serve report of the (final, post-escalation) sweep.
    pub report: ServeReport,
}

impl ChaosOutcome {
    /// True when the seed upheld every invariant the lane checks.
    pub fn clean(&self) -> bool {
        self.report.aborted > 0
            && self.active_runs == 0
            && self.violation.is_none()
            && self.checksum_ok
    }
}

/// Recomputes the survivors' checksum on a fresh fault-free runtime. Every
/// request result is a pure function of `(workload, seed, scale)`, so a
/// mismatch means an abort corrupted a *surviving* run's heap.
fn audit_survivors(cfg: &ChaosConfig, report: &ServeReport) -> bool {
    let rt = HhRuntime::new(HhConfig::with_workers(cfg.workers));
    let mut sum = 0u64;
    for &seed in &report.completed_seeds {
        let w = ServeWorkloadId::from_mix_seed(seed);
        sum = sum.wrapping_add(rt.run(|ctx| w.run(ctx, seed, cfg.scale)));
    }
    sum == report.checksum
}

/// Runs one chaos seed: serve under an armed fault plan, then check the
/// post-mortem invariants. Escalates the fault rate until the seed actually
/// aborts at least one attempt (a quiet seed would vacuously "pass"); at the
/// certainty cap the very first allocation of every run faults, so the loop
/// always terminates.
pub fn chaos_one(cfg: &ChaosConfig, seed: u64) -> ChaosOutcome {
    hh_api::silence_expected_aborts();
    let mut rate = cfg.rate_ppm.max(1);
    loop {
        let shape = if cfg.incremental {
            HhConfig::incremental(cfg.workers)
        } else {
            HhConfig::with_workers(cfg.workers)
        };
        let rt = HhRuntime::new(shape);
        let plan = Arc::new(FaultPlan::uniform(seed, rate));
        rt.install_gc_hooks(Arc::clone(&plan) as Arc<dyn hh_runtime::GcScheduleHooks>);
        plan.set_armed(true);
        let serve_cfg = ServeConfig {
            runs: cfg.runs,
            clients: cfg.clients,
            executors: cfg.executors,
            queue_cap: 8,
            seed: seed ^ 0x5EED_C4A0_57AB_1E00,
            scale: cfg.scale,
            sample_every: 4,
            workload: None,
            deadline_ms: cfg.deadline_ms,
            max_attempts: cfg.max_attempts,
            backoff_us: 50,
            shed_inflight: None,
        };
        let report = serve(&rt, &serve_cfg, "chaos");
        plan.set_armed(false);
        if report.aborted == 0 {
            rate = rate.saturating_mul(8).min(1_000_000);
            continue;
        }
        let checksum_ok = audit_survivors(cfg, &report);
        return ChaosOutcome {
            seed,
            rate_ppm: rate,
            injected: plan.injected_total(),
            aborted_runs: rt.aborted_runs(),
            finalize_rescues: rt.finalize_rescues(),
            active_runs: rt.active_runs() as u64,
            violation: verify_quiescent(&rt).err(),
            checksum_ok,
            report,
        };
    }
}

/// Sweeps `cfg.seeds` chaos seeds and returns every outcome (callers assert
/// [`ChaosOutcome::clean`] per seed to keep the failing seed in the message).
pub fn chaos_sweep(cfg: &ChaosConfig) -> Vec<ChaosOutcome> {
    (0..cfg.seeds)
        .map(|i| chaos_one(cfg, cfg.base_seed + i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_chaos_seed_aborts_and_stays_quiescent() {
        let cfg = ChaosConfig {
            seeds: 1,
            runs: 6,
            ..ChaosConfig::default()
        };
        let out = chaos_one(&cfg, cfg.base_seed);
        assert!(out.report.aborted > 0, "escalation must force an abort");
        assert!(
            out.clean(),
            "seed {:#x} (rate {} ppm): violation={:?} active={} checksum_ok={}",
            out.seed,
            out.rate_ppm,
            out.violation.as_ref().map(|v| v.reason.clone()),
            out.active_runs,
            out.checksum_ok
        );
    }
}
