//! The serve loop: N client threads push run requests through a bounded queue to M
//! executor threads, each of which drives an independent `Runtime::run` on the
//! *shared* runtime — so at any instant up to M runs overlap on one chunk store.
//!
//! This is the experiment the epoch watermark exists for (DESIGN.md §5): under
//! perpetual overlap the old global reuse horizon ("reclaim when no run is active")
//! never passes, so quarantined chunks pile up and every run pays fresh minting.
//! With per-run epochs each completed run's chunks recycle as soon as every run
//! alive at their retirement has ended — the quarantine stays bounded by the
//! in-flight working set and `chunks_recycled` approaches 100% of handouts.

use crate::queue::BoundedQueue;
use hh_api::{LatencyRecorder, LatencySummary};
use hh_api::{RunCtl, RunError, RunStats, Runtime};
use hh_workloads::ServeWorkloadId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one serve experiment.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Total number of independent runs to execute.
    pub runs: usize,
    /// Client (producer) threads generating requests.
    pub clients: usize,
    /// Executor (consumer) threads driving runs on the shared runtime — the degree
    /// of run overlap the server sustains.
    pub executors: usize,
    /// Bounded queue capacity (admission control / back-pressure).
    pub queue_cap: usize,
    /// Base seed; every request derives its own seed and workload from it.
    pub seed: u64,
    /// Workload size multiplier (1 = smoke-test sized requests).
    pub scale: usize,
    /// Executors sample the store footprint every this many completed runs.
    pub sample_every: usize,
    /// Pin every request to one registry workload (`serve --workload`); `None`
    /// dispatches the default mutator mix off each request's seed.
    pub workload: Option<ServeWorkloadId>,
    /// Per-run wall-clock budget. Executors attach a deadline token to every
    /// attempt; the runtime polls it cooperatively at safe points and the run
    /// unwinds with a typed abort when it expires. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Maximum attempts per request (≥ 1). Attempts beyond the first happen
    /// only for *retryable* failures — runs killed by an injected fault — never
    /// for deadlines, cancellations, or genuine workload panics.
    pub max_attempts: u32,
    /// Base backoff between retry attempts, microseconds; each wait is jittered
    /// to 50–150 % of this (seeded, so a chaos sweep stays reproducible).
    pub backoff_us: u64,
    /// Admission control: when the number of requests currently *executing*
    /// reaches this watermark, clients stop blocking on a full queue and shed
    /// instead — `try_push`, with queue-full becoming a typed rejection the
    /// report counts. `None` = always apply back-pressure, never shed.
    pub shed_inflight: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            runs: 1000,
            clients: 2,
            executors: 4,
            queue_cap: 64,
            seed: 0x5eed_0001,
            scale: 1,
            sample_every: 16,
            workload: None,
            deadline_ms: None,
            max_attempts: 1,
            backoff_us: 200,
            shed_inflight: None,
        }
    }
}

/// One queued run request.
struct Job {
    seed: u64,
    enqueued: Instant,
}

/// Outcome of one serve experiment.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Runtime name (`"parmem"`, `"seq"`, ...).
    pub runtime: &'static str,
    /// Reclamation mode label (`"epoch"` or `"global"`).
    pub mode: &'static str,
    /// Workload label: a registry suite id when the config pinned one, `"mix"`
    /// for the default mutator mix (keeps artifact lines from different
    /// workloads distinct in the bench gate).
    pub workload: &'static str,
    /// Runs completed. Equals the configured total on a clean pass; under fault
    /// injection, deadlines, or load shedding it is the *partial* result count
    /// (see the abort counters below — the report always accounts for every
    /// configured request: `runs + rejected + deadline_hits + failed ==
    /// requested`).
    pub runs: u64,
    /// Requests the experiment was configured to serve.
    pub requested: u64,
    /// Attempts that ended in any abort (injected fault, deadline, panic) —
    /// retried attempts included, so this can exceed the per-request failure
    /// counters.
    pub aborted: u64,
    /// Retry attempts performed after fault-killed attempts.
    pub retried: u64,
    /// Requests shed by admission control (queue full past the in-flight
    /// watermark) or refused because the queue closed (an executor died).
    pub rejected: u64,
    /// Requests whose final attempt exceeded its deadline (cooperative abort).
    pub deadline_hits: u64,
    /// Requests whose final attempt failed non-retryably or exhausted
    /// `max_attempts`.
    pub failed: u64,
    /// Seeds of the requests that completed, in no particular order. Each run's
    /// result is a pure function of (workload, seed, scale), so a chaos harness
    /// can recompute every survivor's contribution and audit `checksum`.
    pub completed_seeds: Vec<u64>,
    /// Workload size multiplier the experiment ran at (carried into the JSON
    /// report so artifact lines from different tenant mixes stay distinct).
    pub scale: usize,
    /// Wall-clock duration of the whole experiment.
    pub elapsed_s: f64,
    /// Completed runs per second.
    pub throughput_rps: f64,
    /// Enqueue-to-completion latency percentiles.
    pub latency: LatencySummary,
    /// Commutative checksum over all run results (deterministic for a given
    /// config/seed regardless of interleaving — a correctness canary).
    pub checksum: u64,
    /// Largest store footprint observed at any sample point: live + free +
    /// quarantined words. Boundedness of this under perpetual overlap is the
    /// tentpole claim.
    pub peak_footprint_words: u64,
    /// Store footprint after the last run completed.
    pub final_footprint_words: u64,
    /// Runtime statistics accumulated over the experiment.
    pub stats: RunStats,
}

impl ServeReport {
    /// Fraction of chunk handouts served by recycling.
    pub fn recycle_rate(&self) -> f64 {
        self.stats.recycle_rate()
    }

    /// Renders the report as one JSON object (hand-rolled — the environment has no
    /// serde; all fields are numbers or plain ASCII strings, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let l = &self.latency;
        let s = &self.stats;
        format!(
            concat!(
                "{{\"experiment\":\"serve\",\"runtime\":\"{}\",\"mode\":\"{}\",\"workload\":\"{}\",",
                "\"runs\":{},\"requested\":{},\"aborted\":{},\"retried\":{},\"rejected\":{},",
                "\"deadline_hits\":{},\"failed\":{},",
                "\"scale\":{},\"elapsed_s\":{:.6},\"throughput_rps\":{:.2},",
                "\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"max_us\":{:.1},\"mean_us\":{:.1},",
                "\"checksum\":{},\"recycle_rate\":{:.6},\"chunks_created\":{},\"chunks_recycled\":{},",
                "\"epoch_reclaims\":{},\"active_runs_peak\":{},\"quarantine_lag_words\":{},",
                "\"peak_footprint_words\":{},\"final_footprint_words\":{},\"peak_live_words\":{},",
                "\"gc_count\":{},\"gc_max_pause_ns\":{},\"gc_pause_p999_ns\":{}}}"
            ),
            self.runtime,
            self.mode,
            self.workload,
            self.runs,
            self.requested,
            self.aborted,
            self.retried,
            self.rejected,
            self.deadline_hits,
            self.failed,
            self.scale,
            self.elapsed_s,
            self.throughput_rps,
            l.p50_ns as f64 / 1e3,
            l.p99_ns as f64 / 1e3,
            l.p999_ns as f64 / 1e3,
            l.max_ns as f64 / 1e3,
            l.mean_ns as f64 / 1e3,
            self.checksum,
            self.recycle_rate(),
            s.chunks_created,
            s.chunks_recycled,
            s.epoch_reclaims,
            s.active_runs_peak,
            s.quarantine_lag_words,
            self.peak_footprint_words,
            self.final_footprint_words,
            s.peak_live_words,
            s.gc_count,
            s.gc_max_pause_ns,
            s.gc_pause_p999_ns,
        )
    }
}

/// SplitMix64 — derives per-request seeds from the base seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes one request attempt through the workload registry: a pinned
/// workload when the config names one, otherwise the default mutator mix
/// selected off the seed's high bits (the low bits of simple generators are the
/// weak ones). Every registry workload allocates, forks, promotes, and retires
/// enough chunks per run to exercise the whole reclamation path. The attempt
/// runs under `ctl` (cancellation + deadline) and any abort — cooperative,
/// injected, or a genuine panic — comes back as a typed [`RunError`] instead of
/// unwinding into the executor thread.
fn try_run_one<R: Runtime>(
    rt: &R,
    workload: Option<ServeWorkloadId>,
    ctl: &Arc<RunCtl>,
    seed: u64,
    scale: usize,
) -> Result<u64, RunError> {
    let w = workload.unwrap_or_else(|| ServeWorkloadId::from_mix_seed(seed));
    rt.try_run(ctl, |ctx| w.run(ctx, seed, scale))
}

/// Per-executor outcome tally, merged into the report after the scope joins.
#[derive(Default)]
struct ExecTally {
    rec: LatencyRecorder,
    completed_seeds: Vec<u64>,
    aborted: u64,
    retried: u64,
    deadline_hits: u64,
    failed: u64,
}

/// Runs the serve experiment on `rt`: `cfg.clients` producers feed `cfg.runs`
/// requests through a bounded queue to `cfg.executors` consumers, each driving
/// overlapping `Runtime::run` calls on the shared runtime. `mode` is a label
/// carried into the report (the runtime's reclamation mode is fixed at its
/// construction).
pub fn serve<R: Runtime>(rt: &R, cfg: &ServeConfig, mode: &'static str) -> ServeReport {
    assert!(cfg.runs > 0 && cfg.clients > 0 && cfg.executors > 0);
    rt.reset_stats();
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(cfg.queue_cap));
    let checksum = AtomicU64::new(0);
    let peak_footprint = AtomicU64::new(0);
    // Active-run gauge for admission control: requests currently executing.
    let inflight = AtomicU64::new(0);
    let sample_every = cfg.sample_every.max(1);
    let max_attempts = cfg.max_attempts.max(1);
    let start = Instant::now();

    let mut tallies: Vec<ExecTally> = Vec::new();
    let mut rejected = 0u64;
    std::thread::scope(|scope| {
        // Clients: split the request count evenly, remainder to the first.
        let mut handles = Vec::new();
        let per_client = cfg.runs / cfg.clients;
        for c in 0..cfg.clients {
            let mine = per_client + usize::from(c == 0) * (cfg.runs % cfg.clients);
            let queue = Arc::clone(&queue);
            let inflight = &inflight;
            let mut rng = cfg.seed ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            handles.push(scope.spawn(move || {
                let mut shed = 0u64;
                for _ in 0..mine {
                    let seed = splitmix(&mut rng);
                    let job = Job {
                        seed,
                        enqueued: Instant::now(),
                    };
                    // Admission control: past the in-flight watermark the
                    // server stops applying back-pressure and sheds — a full
                    // queue is a typed rejection, not a blocked client. A
                    // closed queue (the executors died) also rejects rather
                    // than silently dropping the rest of the request count.
                    let over = cfg
                        .shed_inflight
                        .is_some_and(|w| inflight.load(Ordering::Relaxed) >= w as u64);
                    let refused = if over {
                        queue.try_push(job).is_err()
                    } else {
                        queue.push(job).is_err()
                    };
                    if refused {
                        shed += 1;
                    }
                }
                shed
            }));
        }
        // Executors: drain until the closed queue is empty.
        let executors: Vec<_> = (0..cfg.executors)
            .map(|e| {
                let queue = Arc::clone(&queue);
                let checksum = &checksum;
                let peak_footprint = &peak_footprint;
                let inflight = &inflight;
                let mut backoff_rng = cfg.seed
                    ^ 0xD6E8_FEB8_6659_FD93
                    ^ (e as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                scope.spawn(move || {
                    // If this executor dies of an unexpected panic, close the
                    // queue on the way out: blocked producers get a rejection
                    // back instead of deadlocking on a condvar nobody signals.
                    let close_guard = queue.close_on_drop();
                    let mut t = ExecTally {
                        rec: LatencyRecorder::with_capacity(cfg.runs / cfg.executors + 1),
                        ..ExecTally::default()
                    };
                    let mut done = 0usize;
                    while let Some(job) = queue.pop() {
                        let mut attempt = 0u32;
                        loop {
                            attempt += 1;
                            // A fresh token per attempt: fired tokens are
                            // permanent, and the deadline budget is per-run.
                            let ctl = match cfg.deadline_ms {
                                Some(ms) => RunCtl::with_deadline(Duration::from_millis(ms)),
                                None => RunCtl::new(),
                            };
                            inflight.fetch_add(1, Ordering::Relaxed);
                            let r = try_run_one(rt, cfg.workload, &ctl, job.seed, cfg.scale);
                            inflight.fetch_sub(1, Ordering::Relaxed);
                            match r {
                                Ok(v) => {
                                    t.rec.record(job.enqueued.elapsed());
                                    checksum.fetch_add(v, Ordering::Relaxed);
                                    t.completed_seeds.push(job.seed);
                                    done += 1;
                                    if done.is_multiple_of(sample_every) {
                                        let s = rt.stats();
                                        let footprint =
                                            s.live_words + s.free_words + s.quarantine_lag_words;
                                        peak_footprint.fetch_max(footprint, Ordering::Relaxed);
                                    }
                                    break;
                                }
                                Err(err) => {
                                    t.aborted += 1;
                                    if err.is_retryable() && attempt < max_attempts {
                                        t.retried += 1;
                                        if cfg.backoff_us > 0 {
                                            // Jittered 50–150 % of the base, seeded:
                                            // retries decorrelate without making the
                                            // sweep irreproducible.
                                            let jitter =
                                                splitmix(&mut backoff_rng) % cfg.backoff_us;
                                            std::thread::sleep(Duration::from_micros(
                                                cfg.backoff_us / 2 + jitter,
                                            ));
                                        }
                                        continue;
                                    }
                                    match err {
                                        // Serve never cancels explicitly, and a
                                        // deadline expiry latches the shared
                                        // cancelled flag — sibling tasks of a
                                        // deadlined run may abort as Cancelled,
                                        // and either payload can win the race to
                                        // the run boundary. Both mean "deadline".
                                        RunError::Cancelled | RunError::DeadlineExceeded => {
                                            t.deadline_hits += 1
                                        }
                                        RunError::InjectedFault(_) | RunError::Panic(_) => {
                                            t.failed += 1
                                        }
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    drop(close_guard);
                    t
                })
            })
            .collect();
        for h in handles {
            rejected += h.join().expect("client thread panicked");
        }
        queue.close();
        for e in executors {
            tallies.push(e.join().expect("executor thread panicked"));
        }
    });

    let elapsed = start.elapsed();
    let mut all = LatencyRecorder::default();
    let mut completed_seeds = Vec::new();
    let (mut aborted, mut retried, mut deadline_hits, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for t in tallies {
        all.merge(t.rec);
        completed_seeds.extend(t.completed_seeds);
        aborted += t.aborted;
        retried += t.retried;
        deadline_hits += t.deadline_hits;
        failed += t.failed;
    }
    let completed = all.len() as u64;
    // Every configured request ends in exactly one bucket. On a clean pass
    // (no faults armed, no deadline, no shedding) this degenerates to the old
    // "every request must complete" assertion.
    assert_eq!(
        completed + rejected + deadline_hits + failed,
        cfg.runs as u64,
        "every request must be accounted for (completed {completed}, rejected {rejected}, \
         deadline {deadline_hits}, failed {failed})"
    );
    let stats = rt.stats();
    let final_footprint = stats.live_words + stats.free_words + stats.quarantine_lag_words;
    ServeReport {
        runtime: rt.name(),
        mode,
        workload: cfg.workload.map_or("mix", ServeWorkloadId::name),
        runs: completed,
        requested: cfg.runs as u64,
        aborted,
        retried,
        rejected,
        deadline_hits,
        failed,
        completed_seeds,
        scale: cfg.scale,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: all.summarize(),
        checksum: checksum.load(Ordering::Relaxed),
        peak_footprint_words: peak_footprint.load(Ordering::Relaxed).max(final_footprint),
        final_footprint_words: final_footprint,
        stats,
    }
}

/// A failed post-serve quiescence check: the one-line `reason` plus, for
/// disentanglement failures, the full per-violation forensics report
/// (offending slots, chunk `run_tag`/`gc_state`, heap depths, window state).
#[derive(Clone, Debug)]
pub struct QuiescenceViolation {
    /// One-line description of the first violated invariant.
    pub reason: String,
    /// Per-violation forensics when the disentanglement walk failed.
    pub disentanglement: Option<hh_runtime::DisentanglementReport>,
}

impl std::fmt::Display for QuiescenceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)?;
        if let Some(report) = &self.disentanglement {
            write!(f, "\n{report}")?;
        }
        Ok(())
    }
}

/// How many individual violations a JSON line carries before truncating (a mass
/// violation lists hundreds of identical-shaped entries; the first few plus the
/// count carry all the signal).
const VIOLATION_JSON_CAP: usize = 32;

impl QuiescenceViolation {
    /// Renders the violation as one machine-readable JSON line carrying enough
    /// context to replay (seed/mode/workload/scale) and diagnose (window state,
    /// per-violation chunk forensics). Hand-rolled like [`ServeReport::to_json`];
    /// the only free-form text is `reason`, which is escaped.
    pub fn to_json(&self, cfg: &ServeConfig, mode: &str) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            concat!(
                "{{\"experiment\":\"serve-violation\",\"mode\":\"{}\",\"workload\":\"{}\",",
                "\"seed\":{},\"scale\":{},\"runs\":{},\"reason\":\"{}\""
            ),
            escape(mode),
            cfg.workload.map_or("mix", ServeWorkloadId::name),
            cfg.seed,
            cfg.scale,
            cfg.runs,
            escape(&self.reason),
        );
        if let Some(report) = &self.disentanglement {
            out.push_str(&format!(
                ",\"window_open\":{},\"window_finalizing\":{},\"window_epoch\":{},\
                 \"violation_count\":{},\"violations\":[",
                report.window_open,
                report.window_finalizing,
                report.window_epoch,
                report.violations.len(),
            ));
            for (i, v) in report
                .violations
                .iter()
                .take(VIOLATION_JSON_CAP)
                .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                let chunk_json = |c: &hh_objmodel::ChunkForensics| {
                    format!(
                        "{{\"chunk\":{},\"owner\":{},\"run_tag\":{},\"generation\":{},\
                         \"retired\":{},\"gc_epoch\":{},\"gc_slot\":{},\"gc_from\":{},\
                         \"gc_to\":{}}}",
                        c.chunk.0,
                        c.owner,
                        c.run_tag,
                        c.generation,
                        c.retired,
                        c.gc_epoch,
                        c.gc_slot,
                        c.gc_from,
                        c.gc_to,
                    )
                };
                out.push_str(&format!(
                    "{{\"holder\":\"{:?}\",\"field\":{},\"holder_heap\":{},\
                     \"holder_depth\":{},\"holder_chunk\":{},\"target\":\"{:?}\",\
                     \"target_heap\":{},\"target_depth\":{},\"target_chunk\":{}}}",
                    v.holder,
                    v.field,
                    v.holder_heap.raw(),
                    v.holder_depth,
                    chunk_json(&v.holder_chunk),
                    v.target,
                    v.target_heap.raw(),
                    v.target_depth,
                    chunk_json(&v.target_chunk),
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Post-serve invariant check for the hierarchical runtime: with the server
/// quiescent, the chunk lifecycle must conserve
/// (`created == active + quarantined + free + released`) and every live heap must
/// be disentangled. Returns the first violation with full forensics.
pub fn verify_quiescent(rt: &hh_runtime::HhRuntime) -> Result<(), QuiescenceViolation> {
    let plain = |reason: String| QuiescenceViolation {
        reason,
        disentanglement: None,
    };
    let s = rt.store_stats();
    let accounted = s.chunks_active + s.chunks_quarantined + s.chunks_free + s.chunks_released;
    if s.chunks_created != accounted {
        return Err(plain(format!(
            "chunk conservation violated: created {} != active {} + quarantined {} + free {} + released {}",
            s.chunks_created, s.chunks_active, s.chunks_quarantined, s.chunks_free, s.chunks_released
        )));
    }
    if s.active_runs != 0 {
        return Err(plain(format!(
            "{} runs still registered active",
            s.active_runs
        )));
    }
    let report = rt.check_disentangled_report();
    if !report.is_clean() {
        return Err(QuiescenceViolation {
            reason: format!("{} disentanglement violations", report.violations.len()),
            disentanglement: Some(report),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_runtime::{HhConfig, HhRuntime};

    fn small_cfg(runs: usize) -> ServeConfig {
        ServeConfig {
            runs,
            clients: 2,
            executors: 3,
            queue_cap: 8,
            seed: 7,
            scale: 1,
            sample_every: 4,
            workload: None,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_completes_all_runs_and_conserves_chunks() {
        let rt = HhRuntime::new(HhConfig::with_workers(2));
        let report = serve(&rt, &small_cfg(48), "epoch");
        assert_eq!(report.runs, 48);
        assert_eq!(report.latency.count, 48);
        assert!(report.throughput_rps > 0.0);
        assert!(report.peak_footprint_words >= report.final_footprint_words);
        assert!(
            report.stats.active_runs_peak >= 2,
            "executors must actually overlap runs (peak {})",
            report.stats.active_runs_peak
        );
        verify_quiescent(&rt).unwrap();
    }

    #[test]
    fn serve_checksum_is_deterministic_across_interleavings() {
        let a = serve(
            &HhRuntime::new(HhConfig::with_workers(2)),
            &small_cfg(32),
            "epoch",
        );
        let b = serve(
            &HhRuntime::new(HhConfig::with_workers(2)),
            &small_cfg(32),
            "epoch",
        );
        assert_eq!(
            a.checksum, b.checksum,
            "run results must not depend on scheduling"
        );
    }

    #[test]
    fn epoch_mode_recycles_under_overlap_where_global_horizon_cannot() {
        // Same load on both reclamation modes. The epoch runtime reclaims per run
        // (watermark advances as runs end), so it recycles and drains its
        // quarantine; the global-horizon runtime (A5) only reclaims at a run start
        // observing zero active runs, which under continuous overlap essentially
        // never happens — its quarantine at the end still holds the backlog.
        let cfg = small_cfg(48);
        let epoch_rt = HhRuntime::new(HhConfig::with_workers(2));
        let epoch = serve(&epoch_rt, &cfg, "epoch");
        let global_rt = HhRuntime::new(HhConfig::global_horizon(2));
        let global = serve(&global_rt, &cfg, "global");
        assert_eq!(
            epoch.checksum, global.checksum,
            "mode must not change results"
        );
        assert!(
            epoch.stats.epoch_reclaims > 0,
            "watermark reclamation must fire under overlap"
        );
        assert_eq!(
            global.stats.epoch_reclaims, 0,
            "A5 never reclaims via the watermark"
        );
        assert!(
            epoch.stats.quarantine_lag_words <= global.stats.quarantine_lag_words,
            "epoch quarantine ({} words) must not exceed the A5 backlog ({} words)",
            epoch.stats.quarantine_lag_words,
            global.stats.quarantine_lag_words
        );
        verify_quiescent(&epoch_rt).unwrap();
        verify_quiescent(&global_rt).unwrap();
    }

    /// Pinned registry workloads (the `--workload` path) complete, stay
    /// deterministic across interleavings, and leave the runtime quiescent —
    /// including the two adversarial suite ids.
    #[test]
    fn pinned_workloads_serve_deterministically() {
        for w in [ServeWorkloadId::Wavefront, ServeWorkloadId::Entangle] {
            let cfg = ServeConfig {
                workload: Some(w),
                ..small_cfg(24)
            };
            let rt_a = HhRuntime::new(HhConfig::with_workers(2));
            let a = serve(&rt_a, &cfg, "epoch");
            assert_eq!(a.runs, 24, "{}", w.name());
            assert_eq!(a.workload, w.name());
            assert!(a
                .to_json()
                .contains(&format!("\"workload\":\"{}\"", w.name())));
            verify_quiescent(&rt_a).unwrap();
            let b = serve(&HhRuntime::new(HhConfig::with_workers(2)), &cfg, "epoch");
            assert_eq!(a.checksum, b.checksum, "{} nondeterministic", w.name());
        }
    }

    #[test]
    fn violation_json_is_well_formed_and_carries_forensics() {
        use hh_objmodel::{ChunkForensics, ChunkId, ObjPtr};
        use hh_runtime::{DisentanglementReport, EntanglementViolation, HeapId};
        let chunk = |id: u32, owner: u32| ChunkForensics {
            chunk: ChunkId(id),
            owner,
            run_tag: 7,
            generation: 1,
            retired: owner == 1,
            gc_epoch: 3,
            gc_slot: 0,
            gc_from: false,
            gc_to: owner == 0,
        };
        let v = QuiescenceViolation {
            reason: "1 disentanglement \"violations\"".into(),
            disentanglement: Some(DisentanglementReport {
                violations: vec![EntanglementViolation {
                    holder: ObjPtr::new(ChunkId(2), 0),
                    field: 5,
                    holder_heap: HeapId(0),
                    holder_depth: 0,
                    holder_chunk: chunk(2, 0),
                    target: ObjPtr::new(ChunkId(4), 242),
                    target_heap: HeapId(1),
                    target_depth: 0,
                    target_chunk: chunk(4, 1),
                }],
                window_open: true,
                window_finalizing: false,
                window_epoch: 3,
            }),
        };
        let json = v.to_json(&small_cfg(8), "epoch-inc");
        for key in [
            "\"experiment\":\"serve-violation\"",
            "\"mode\":\"epoch-inc\"",
            "\"workload\":\"mix\"",
            "\"seed\":7",
            "\"reason\":\"1 disentanglement \\\"violations\\\"\"",
            "\"window_open\":true",
            "\"window_epoch\":3",
            "\"violation_count\":1",
            "\"field\":5",
            "\"run_tag\":7",
            "\"retired\":true",
            "\"gc_to\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The Display form shows the reason plus one line per violation.
        let text = format!("{v}");
        assert!(text.contains("field 5"));
        assert!(text.contains("run_tag 7"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let rt = HhRuntime::new(HhConfig::with_workers(1));
        let report = serve(
            &rt,
            &ServeConfig {
                runs: 6,
                clients: 1,
                executors: 2,
                ..small_cfg(6)
            },
            "epoch",
        );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"experiment\":\"serve\"",
            "\"runtime\":\"parmem\"",
            "\"mode\":\"epoch\"",
            "\"workload\":\"mix\"",
            "\"runs\":6",
            "\"scale\":1",
            "\"p999_us\":",
            "\"gc_max_pause_ns\":",
            "\"recycle_rate\":",
            "\"epoch_reclaims\":",
            "\"active_runs_peak\":",
            "\"peak_footprint_words\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced quotes and braces — cheap structural sanity without a parser.
        assert_eq!(json.matches('"').count() % 2, 0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
