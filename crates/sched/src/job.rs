//! Jobs: heap-allocated, execute-once closures with a completion latch.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A boxed closure to be executed exactly once by some worker.
pub type BoxedJobFn = Box<dyn FnOnce() + Send + 'static>;

/// An execute-once job with a completion latch.
///
/// A job is created by [`Worker::join`](crate::pool::Worker::join) (for the right branch
/// of a fork) or by [`Pool::run`](crate::pool::Pool::run) (for a root task). Whoever
/// removes it from a queue calls [`JobCell::execute`]; the creator waits on
/// [`JobCell::is_done`] / [`JobCell::wait_blocking`].
pub struct JobCell {
    func: Mutex<Option<BoxedJobFn>>,
    done: AtomicBool,
    done_mutex: Mutex<bool>,
    done_cv: Condvar,
}

impl JobCell {
    /// Wraps a closure into a job.
    pub fn new(f: BoxedJobFn) -> Arc<JobCell> {
        Arc::new(JobCell {
            func: Mutex::new(Some(f)),
            done: AtomicBool::new(false),
            done_mutex: Mutex::new(false),
            done_cv: Condvar::new(),
        })
    }

    /// Runs the closure (if it has not run yet) and flips the latch.
    ///
    /// Safe to call more than once; only the first call executes the closure, but every
    /// call observes the latch set on return only if the closure has finished. Panics in
    /// the closure are *not* caught here — callers wrap the closure with `catch_unwind`
    /// when they need to transport panics.
    pub fn execute(&self) {
        let f = self.func.lock().take();
        if let Some(f) = f {
            f();
            self.done.store(true, Ordering::Release);
            let mut guard = self.done_mutex.lock();
            *guard = true;
            self.done_cv.notify_all();
        }
    }

    /// True once the closure has finished executing.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks the calling thread until the job completes. Used by external (non-worker)
    /// threads waiting for a root task; workers never block here — they help instead.
    pub fn wait_blocking(&self) {
        if self.is_done() {
            return;
        }
        let mut guard = self.done_mutex.lock();
        while !*guard {
            self.done_cv.wait(&mut guard);
        }
    }
}

impl std::fmt::Debug for JobCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCell")
            .field("done", &self.is_done())
            .finish()
    }
}

/// Lifetime-erases a boxed closure so it can be stored in a [`JobCell`].
///
/// # Safety
///
/// The caller must guarantee that the closure has finished executing (or provably will
/// never execute) before any borrow captured by the closure expires. `Worker::join`
/// guarantees this by not returning — even on panic of the inline branch — until the
/// pushed job's latch is set or the job has been reclaimed un-run from the local queue.
pub(crate) unsafe fn erase_lifetime<'a>(
    f: Box<dyn FnOnce() + Send + 'a>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn execute_runs_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let job = JobCell::new(Box::new(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(!job.is_done());
        job.execute();
        job.execute();
        assert!(job.is_done());
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_blocking_returns_after_completion() {
        let job = JobCell::new(Box::new(|| {}));
        let j2 = Arc::clone(&job);
        let waiter = std::thread::spawn(move || {
            j2.wait_blocking();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        job.execute();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_blocking_on_already_done_job_is_immediate() {
        let job = JobCell::new(Box::new(|| {}));
        job.execute();
        job.wait_blocking();
        assert!(job.is_done());
    }

    #[test]
    fn concurrent_execute_runs_closure_exactly_once() {
        for _ in 0..50 {
            let count = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&count);
            let job = JobCell::new(Box::new(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            }));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let j = Arc::clone(&job);
                handles.push(std::thread::spawn(move || j.execute()));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(count.load(Ordering::SeqCst), 1);
        }
    }
}
