//! Jobs: execute-once closures exposed to the scheduler through one-word handles.
//!
//! The v2 scheduler has two job representations, chosen by allocation cost:
//!
//! * [`StackJob`] — the right branch of a `join`. It lives in the **stack frame of the
//!   forking `join` call**, so the common (unstolen) fast path allocates nothing on the
//!   heap: pushing a fork costs one deque publication of a [`JobRef`] plus one atomic
//!   store. The frame is kept alive until the branch has finished (stolen or not), so
//!   the pointer inside the `JobRef` never dangles.
//! * [`HeapJob`] — a root task injected by `Pool::run` from an external thread. These
//!   are rare (one per `run`), so they are boxed and carry a blocking latch the
//!   external thread can sleep on.
//!
//! A [`JobRef`] is the single word the deques move around: a pointer to a [`JobHeader`]
//! whose first field is the job's execute function. Executing a `JobRef` consumes it;
//! the deque protocol guarantees each pushed `JobRef` is removed (and therefore
//! executed) exactly once.

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

/// The type-erased prefix every job representation starts with.
///
/// `execute` receives the header pointer plus the *steal flag*: `true` when the job
/// was taken by a thief (a worker other than the one that pushed it), `false` when the
/// pushing worker reclaimed it from its own deque. Upper layers use the flag to do
/// expensive bookkeeping — like creating a child heap — only when a steal actually
/// happened.
#[repr(C)]
pub struct JobHeader {
    execute: unsafe fn(*const JobHeader, bool),
}

/// A one-word, type-erased handle to a job, as stored in the work-stealing deques.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct JobRef {
    ptr: *const JobHeader,
}

// SAFETY: a JobRef is a plain pointer moved between threads by the deque; the pointee
// is either a StackJob whose closure is `Send` (enforced by `StackJob::as_job_ref`) or
// a HeapJob whose boxed closure is `Send` (enforced by `HeapJob::new`).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. `stolen` reports whether the caller obtained the job by stealing
    /// it from another worker's deque (see [`JobHeader`]).
    ///
    /// # Safety
    ///
    /// The `JobRef` must have been produced by [`StackJob::as_job_ref`] or
    /// [`HeapJob::as_job_ref`], must be executed at most once, and the underlying job
    /// must still be alive (for stack jobs: the forking frame has not returned).
    #[inline]
    pub unsafe fn execute(self, stolen: bool) {
        ((*self.ptr).execute)(self.ptr, stolen)
    }

    /// True if this handle points at `header` (used by the owner to recognize its own
    /// reclaimed right branch).
    #[inline]
    pub(crate) fn points_to(self, header: *const JobHeader) -> bool {
        std::ptr::eq(self.ptr, header)
    }

    /// The raw header pointer (for deque slot storage).
    #[inline]
    pub(crate) fn raw(self) -> *const JobHeader {
        self.ptr
    }

    /// Rebuilds a handle from a raw header pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`JobRef::raw`] on a live handle.
    #[inline]
    pub(crate) unsafe fn from_raw(ptr: *const JobHeader) -> JobRef {
        JobRef { ptr }
    }
}

const PENDING: u32 = 0;
const DONE: u32 = 2;

/// A stack-resident right branch of a fork: the closure, a result slot, and a
/// completion latch, all living in the forking `join`'s frame.
///
/// The closure receives the steal flag described on [`JobHeader`].
pub struct StackJob<'a, F, R>
where
    F: FnOnce(bool) -> R + Send,
    R: Send,
{
    header: JobHeader,
    state: AtomicU32,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    _frame: PhantomData<&'a ()>,
}

// SAFETY: the thief thread accesses `func` (to take and run it) and `result` (to store
// the outcome); both transfers are one-way and ordered by the deque removal and the
// Release store of `state`. `F: Send` and `R: Send` make those transfers sound.
unsafe impl<F, R> Sync for StackJob<'_, F, R>
where
    F: FnOnce(bool) -> R + Send,
    R: Send,
{
}

impl<'a, F, R> StackJob<'a, F, R>
where
    F: FnOnce(bool) -> R + Send,
    R: Send,
{
    /// Wraps `f` into a stack job. Nothing is heap-allocated.
    pub fn new(f: F) -> Self {
        StackJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            state: AtomicU32::new(PENDING),
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            _frame: PhantomData,
        }
    }

    /// The header address, for [`JobRef::points_to`].
    #[inline]
    pub(crate) fn header_ptr(&self) -> *const JobHeader {
        &self.header
    }

    /// Produces the deque handle for this job.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the job outlives every execution of the handle: the
    /// forking frame must not return until [`StackJob::is_done`] holds or the handle
    /// has been reclaimed un-executed from the local deque and run via
    /// [`StackJob::run_inline`]. `Worker::join` upholds this by never returning — even
    /// when the inline branch panics — before the right branch has finished.
    #[inline]
    pub unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            ptr: self.header_ptr(),
        }
    }

    unsafe fn execute_erased(ptr: *const JobHeader, stolen: bool) {
        let job = &*(ptr as *const Self);
        job.run(stolen);
    }

    /// Runs the closure after the owner reclaimed the handle from its own deque.
    ///
    /// # Safety
    ///
    /// The caller must hold the (unique) reclaimed `JobRef` for this job, so nobody
    /// else can execute it concurrently.
    #[inline]
    pub unsafe fn run_inline(&self, stolen: bool) {
        self.run(stolen);
    }

    /// SAFETY (internal): called exactly once, by whoever removed the job's unique
    /// `JobRef` from a deque — mutual exclusion comes from the deque, not from here.
    unsafe fn run(&self, stolen: bool) {
        let f = (*self.func.get())
            .take()
            .expect("StackJob executed more than once");
        let outcome = catch_unwind(AssertUnwindSafe(|| f(stolen)));
        *self.result.get() = Some(outcome);
        self.state.store(DONE, Ordering::Release);
    }

    /// True once the closure has finished (its result is published).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    /// Takes the branch's outcome.
    ///
    /// # Safety
    ///
    /// Must be called at most once, after [`StackJob::is_done`] returned `true`.
    pub unsafe fn take_result(&self) -> std::thread::Result<R> {
        debug_assert!(self.is_done());
        (*self.result.get())
            .take()
            .expect("StackJob result taken twice or before completion")
    }
}

/// A boxed root task injected from outside the pool, with a latch the external thread
/// blocks on. One of these is allocated per `Pool::run`, never per `join`.
pub struct HeapJob {
    header: JobHeader,
    func: UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
    latch: BlockingLatch,
}

// SAFETY: `func` is taken exactly once by the executing worker (exclusivity from the
// injector queue); the latch is internally synchronized.
unsafe impl Sync for HeapJob {}
unsafe impl Send for HeapJob {}

impl HeapJob {
    /// Boxes `f` into a root job.
    ///
    /// # Safety
    ///
    /// The closure's borrows are lifetime-erased; the caller must not let them expire
    /// before the job has executed (`Pool::run` blocks on [`HeapJob::wait_blocking`]).
    pub unsafe fn new<'a>(f: Box<dyn FnOnce() + Send + 'a>) -> Box<HeapJob> {
        let f: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute(f);
        Box::new(HeapJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            func: UnsafeCell::new(Some(f)),
            latch: BlockingLatch::new(),
        })
    }

    /// The deque handle. The box must stay alive until the job has executed; the
    /// executing worker does **not** free it (the `Pool::run` frame owns it and drops
    /// it after `wait_blocking` returns).
    pub fn as_job_ref(&self) -> JobRef {
        JobRef { ptr: &self.header }
    }

    unsafe fn execute_erased(ptr: *const JobHeader, _stolen: bool) {
        let job = &*(ptr as *const HeapJob);
        let f = (*job.func.get())
            .take()
            .expect("HeapJob executed more than once");
        f();
        job.latch.set();
    }

    /// Blocks the calling (external) thread until the job has executed.
    pub fn wait_blocking(&self) {
        self.latch.wait();
    }

    /// True once the job has executed.
    pub fn is_done(&self) -> bool {
        self.latch.probe()
    }
}

/// A fire-and-forget boxed job that **frees itself** after execution. Used for GC
/// team helper jobs (`Pool::run_gc_team`): the spawner does not wait for the job, so
/// nobody external can own the box — execution reconstitutes and drops it.
///
/// Every spawned `OwnedJob` must eventually be executed exactly once; the pool
/// guarantees this by draining the injector (executing leftovers) when it shuts
/// down.
#[repr(C)]
pub struct OwnedJob {
    /// Read only through the type-erased `JobRef` pointer (`repr(C)` pins it at
    /// offset 0), never as a named field.
    #[allow(dead_code)]
    header: JobHeader,
    func: UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
}

// SAFETY: `func` is taken exactly once by the executing worker; exclusivity comes
// from the queue protocol (each JobRef removed exactly once).
unsafe impl Sync for OwnedJob {}
unsafe impl Send for OwnedJob {}

impl OwnedJob {
    /// Boxes `f` and leaks it into a [`JobRef`]; executing the ref runs `f` and then
    /// frees the box.
    pub fn spawn(f: Box<dyn FnOnce() + Send + 'static>) -> JobRef {
        let job = Box::new(OwnedJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            func: UnsafeCell::new(Some(f)),
        });
        JobRef {
            ptr: Box::into_raw(job) as *const JobHeader,
        }
    }

    unsafe fn execute_erased(ptr: *const JobHeader, _stolen: bool) {
        // Reconstitute the box; dropped (freeing the job) when this frame exits.
        let job = Box::from_raw(ptr as *mut OwnedJob);
        let f = (*job.func.get())
            .take()
            .expect("OwnedJob executed more than once");
        f();
    }
}

/// A set-once latch an external thread can sleep on (mutex + condvar; workers never
/// block here — they help instead).
struct BlockingLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl BlockingLatch {
    fn new() -> Self {
        BlockingLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn set(&self) {
        let mut g = self.done.lock();
        *g = true;
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        *self.done.lock()
    }

    fn wait(&self) {
        let mut g = self.done.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn stack_job_runs_inline_and_reports_result() {
        let job = StackJob::new(|stolen| {
            assert!(!stolen);
            40 + 2
        });
        assert!(!job.is_done());
        unsafe { job.run_inline(false) };
        assert!(job.is_done());
        match unsafe { job.take_result() } {
            Ok(v) => assert_eq!(v, 42),
            Err(_) => panic!("unexpected panic"),
        }
    }

    #[test]
    fn stack_job_transports_panics() {
        let job: StackJob<'_, _, ()> = StackJob::new(|_| panic!("boom"));
        unsafe { job.as_job_ref().execute(true) };
        assert!(job.is_done());
        assert!(unsafe { job.take_result() }.is_err());
    }

    #[test]
    fn stack_job_sees_the_steal_flag() {
        let job = StackJob::new(|stolen| stolen);
        unsafe { job.as_job_ref().execute(true) };
        assert!(unsafe { job.take_result() }.unwrap());
    }

    #[test]
    fn stack_job_executes_across_threads() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let job = StackJob::new(move |stolen| {
            assert!(stolen);
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let job_ref = unsafe { job.as_job_ref() };
        std::thread::scope(|s| {
            s.spawn(move || unsafe { job_ref.execute(true) });
        });
        assert!(job.is_done());
        assert_eq!(count.load(Ordering::SeqCst), 1);
        unsafe { job.take_result() }.unwrap();
    }

    #[test]
    fn heap_job_latch_wakes_blocked_waiter() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let job = unsafe {
            HeapJob::new(Box::new(move || {
                h2.fetch_add(1, Ordering::SeqCst);
            }))
        };
        assert!(!job.is_done());
        let job_ref = job.as_job_ref();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                unsafe { job_ref.execute(false) };
            });
            job.wait_blocking();
        });
        assert!(job.is_done());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn heap_job_wait_after_completion_is_immediate() {
        let job = unsafe { HeapJob::new(Box::new(|| {})) };
        unsafe { job.as_job_ref().execute(false) };
        job.wait_blocking();
        assert!(job.is_done());
    }
}
