//! Work-stealing deques.
//!
//! Each worker owns a [`JobQueue`] — a lock-free Chase–Lev deque (Chase & Lev, SPAA
//! 2005, with the C11 orderings of Lê et al., PPoPP 2013). The owner pushes and pops at
//! the bottom (LIFO, which preserves the depth-first execution order that makes
//! hierarchical heaps cheap), while thieves steal from the top (FIFO, stealing the
//! shallowest — largest — task first, the standard work-stealing heuristic the paper's
//! scheduler also uses). Owner operations are a handful of atomic instructions with no
//! locks; thieves synchronize through a single CAS on `top`.
//!
//! The element type is [`JobRef`], a single word, so buffer slots are plain
//! `AtomicPtr`s and the classic algorithm applies without torn-read caveats. The
//! buffer grows geometrically when full; retired buffers are kept alive until the
//! deque is dropped (racing thieves may still read them), which bounds the waste to
//! less than the final buffer's size.
//!
//! External (non-worker) threads inject root jobs through the [`Injector`], a small
//! mutex-protected FIFO: injection happens once per `Pool::run`, so it is nowhere near
//! a fast path and the simple structure is easy to show correct.

use crate::job::{JobHeader, JobRef};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Initial deque capacity (must be a power of two). Forks deeper than this are rare,
/// but growth is supported and tested.
const INITIAL_CAPACITY: usize = 64;

/// A fixed-capacity ring buffer of job slots. Never shrinks; replaced wholesale on
/// growth.
struct Buffer {
    slots: Box<[AtomicPtr<JobHeader>]>,
    mask: usize,
}

impl Buffer {
    fn new(capacity: usize) -> Box<Buffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots: Vec<AtomicPtr<JobHeader>> = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::new(Buffer {
            slots: slots.into_boxed_slice(),
            mask: capacity - 1,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn put(&self, index: isize, job: JobRef) {
        // Relaxed: publication happens through the Release store of `bottom` (push) or
        // the CAS on `top` (after growth).
        self.slots[index as usize & self.mask].store(job.as_ptr(), Ordering::Relaxed);
    }

    #[inline]
    fn get(&self, index: isize) -> JobRef {
        JobRef::from_ptr(self.slots[index as usize & self.mask].load(Ordering::Relaxed))
    }
}

/// A lock-free Chase–Lev work-stealing deque of [`JobRef`]s.
///
/// Contract: [`JobQueue::push`] and [`JobQueue::pop`] may only be called by the owning
/// worker thread; [`JobQueue::steal`] may be called by any thread. Each pushed job is
/// removed exactly once (by pop or by steal), never duplicated, never lost.
pub struct JobQueue {
    /// Next slot the owner will push into. Only the owner writes it.
    bottom: AtomicIsize,
    /// Next slot thieves will steal from. Advanced by CAS.
    top: AtomicIsize,
    /// Current ring buffer. Only the owner replaces it (on growth).
    buffer: AtomicPtr<Buffer>,
    /// Retired buffers, kept alive until drop because in-flight thieves may still read
    /// them. Geometric growth keeps the total below one final-buffer's worth.
    /// The `Box` is load-bearing despite clippy's advice: thieves hold `&Buffer`
    /// obtained from the raw `buffer` pointer, so the `Buffer` struct itself must not
    /// move when the retirement vector grows.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
}

// SAFETY: all shared state is atomic; the owner-only contract on push/pop is
// documented above and upheld by the pool (each worker touches only its own queue's
// owner operations).
unsafe impl Send for JobQueue {}
unsafe impl Sync for JobQueue {}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl JobQueue {
    /// Creates an empty deque.
    pub fn new() -> Self {
        JobQueue {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(INITIAL_CAPACITY))),
            retired: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn buffer(&self, order: Ordering) -> &Buffer {
        // SAFETY: the buffer pointer is always valid: it is only replaced by the owner,
        // and old buffers are retired (kept alive), not freed, until `drop`.
        unsafe { &*self.buffer.load(order) }
    }

    /// Owner operation: pushes a job at the bottom.
    pub fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let buf = self.buffer(Ordering::Relaxed);
        if b - t >= buf.capacity() as isize {
            self.grow(b, t);
        }
        let buf = self.buffer(Ordering::Relaxed);
        buf.put(b, job);
        // Publish the slot write before making it visible to thieves.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner operation: doubles the buffer, copying the live range `[t, b)`.
    #[cold]
    fn grow(&self, b: isize, t: isize) {
        let old = self.buffer(Ordering::Relaxed);
        let new = Buffer::new(old.capacity() * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        // SAFETY: old_ptr came from Box::into_raw in `new`/`grow` and is retired, not
        // freed, because thieves may still hold a reference to it.
        self.retired.lock().push(unsafe { Box::from_raw(old_ptr) });
    }

    /// Owner operation: pops the most recently pushed job.
    pub fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the `bottom` store against the `top` load below —
        // the flag-and-read handshake with concurrent thieves.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = buf.get(b);
            if t == b {
                // Last element: race the thieves for it with a CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief operation: steals the oldest job. Retries internally on CAS contention
    /// and returns `None` only when the deque is (momentarily) empty.
    pub fn steal(&self) -> Option<JobRef> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            // Order the `top` load before the `bottom` load (pairs with the fence in
            // `pop`).
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Read the slot *before* the CAS: a successful CAS licenses the value read.
            let buf = self.buffer(Ordering::Acquire);
            let job = buf.get(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(job);
            }
            // Lost the race to another thief (or to the owner's pop); try again.
            std::hint::spin_loop();
        }
    }

    /// Number of queued jobs (racy, for heuristics and tests only).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True if no jobs are queued (racy, for heuristics and tests only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the pointer came from Box::into_raw.
        drop(unsafe { Box::from_raw(*self.buffer.get_mut()) });
        // Retired buffers drop with the Vec. Any un-executed JobRefs are plain
        // pointers owned elsewhere (stack frames / Pool::run boxes); nothing to free.
    }
}

/// The mutex-protected FIFO through which external threads inject root jobs.
#[derive(Default)]
pub struct Injector {
    inner: Mutex<VecDeque<JobRef>>,
}

impl Injector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a root job (called from external threads).
    pub fn push(&self, job: JobRef) {
        self.inner.lock().push_back(job);
    }

    /// Dequeues the oldest root job (called by workers).
    pub fn steal(&self) -> Option<JobRef> {
        self.inner.lock().pop_front()
    }

    /// True if no root jobs are waiting (racy, for sleep rechecks only).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

// Conversion helpers between JobRef and raw slot pointers, private to this crate.
impl JobRef {
    #[inline]
    fn as_ptr(self) -> *mut JobHeader {
        self.raw() as *mut JobHeader
    }

    #[inline]
    fn from_ptr(p: *mut JobHeader) -> JobRef {
        // SAFETY: `p` was produced by `as_ptr` on a JobRef stored in this deque.
        unsafe { JobRef::from_raw(p) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::HeapJob;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// A boxed marker job that bumps a counter when executed; the boxes are kept alive
    /// by the caller for the duration of the test (`JobRef`s point into them, so the
    /// jobs must not move — hence `Box` despite clippy's `vec_box` advice).
    #[allow(clippy::vec_box)]
    fn marker_jobs(n: usize, counter: &Arc<AtomicUsize>) -> Vec<Box<HeapJob>> {
        (0..n)
            .map(|_| {
                let c = Arc::clone(counter);
                unsafe {
                    HeapJob::new(Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }))
                }
            })
            .collect()
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = JobQueue::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs = marker_jobs(3, &counter);
        for j in &jobs {
            q.push(j.as_job_ref());
        }
        assert_eq!(q.len(), 3);
        // Thief takes the oldest (job 0); owner takes the newest (job 2).
        let stolen = q.steal().unwrap();
        assert!(stolen.points_to(jobs[0].as_job_ref().raw()));
        let popped = q.pop().unwrap();
        assert!(popped.points_to(jobs[2].as_job_ref().raw()));
        let remaining = q.pop().unwrap();
        assert!(remaining.points_to(jobs[1].as_job_ref().raw()));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.steal().is_none());
    }

    #[test]
    fn growth_preserves_every_job_in_order() {
        let q = JobQueue::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = INITIAL_CAPACITY * 8 + 3; // force three growths
        let jobs = marker_jobs(n, &counter);
        for j in &jobs {
            q.push(j.as_job_ref());
        }
        assert_eq!(q.len(), n);
        // Owner pops everything back in LIFO order.
        for k in (0..n).rev() {
            let popped = q.pop().unwrap();
            assert!(popped.points_to(jobs[k].as_job_ref().raw()), "index {k}");
        }
        assert!(q.pop().is_none());
    }

    /// The satellite stress test: one owner thread interleaving pushes and pops with
    /// several concurrent thieves, across multiple buffer growths. Every job must be
    /// executed exactly once — no duplication, no loss.
    #[test]
    fn stress_concurrent_pop_and_steal_never_duplicates_or_loses_jobs() {
        const N: usize = 50_000;
        const THIEVES: usize = 5;
        let q = Arc::new(JobQueue::new());
        let executed = Arc::new(AtomicUsize::new(0));
        let jobs = Arc::new(marker_jobs(N, &executed));
        let stop = Arc::new(AtomicUsize::new(0));

        let mut thieves = Vec::new();
        for _ in 0..THIEVES {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            let _jobs = Arc::clone(&jobs); // keep the boxes alive in every thread
            thieves.push(std::thread::spawn(move || {
                let mut taken = 0usize;
                loop {
                    match q.steal() {
                        Some(job) => {
                            unsafe { job.execute(true) };
                            taken += 1;
                        }
                        None => {
                            if stop.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                taken
            }));
        }

        // Owner: push in bursts (forcing growth), pop in bursts (racing the thieves
        // for the tail), like a join-heavy worker would.
        let mut popped = 0usize;
        for (i, j) in jobs.iter().enumerate() {
            q.push(j.as_job_ref());
            if i % 3 == 0 {
                if let Some(job) = q.pop() {
                    unsafe { job.execute(false) };
                    popped += 1;
                }
            }
        }
        while let Some(job) = q.pop() {
            unsafe { job.execute(false) };
            popped += 1;
        }
        stop.store(1, Ordering::Release);
        let stolen: usize = thieves.into_iter().map(|h| h.join().unwrap()).sum();

        assert_eq!(popped + stolen, N, "every job removed exactly once");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            N,
            "every job executed exactly once"
        );
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs = marker_jobs(2, &counter);
        inj.push(jobs[0].as_job_ref());
        inj.push(jobs[1].as_job_ref());
        assert!(!inj.is_empty());
        assert!(inj.steal().unwrap().points_to(jobs[0].as_job_ref().raw()));
        assert!(inj.steal().unwrap().points_to(jobs[1].as_job_ref().raw()));
        assert!(inj.steal().is_none());
        assert!(inj.is_empty());
    }
}
