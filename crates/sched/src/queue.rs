//! Per-worker job queues.
//!
//! Each worker owns a [`JobQueue`]. The owner pushes and pops at the back (LIFO, which
//! preserves the depth-first execution order that makes hierarchical heaps cheap), while
//! thieves steal from the front (FIFO, stealing the shallowest — largest — task first,
//! the standard work-stealing heuristic the paper's scheduler also uses).

use crate::job::JobCell;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A mutex-protected work-stealing deque of jobs.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<VecDeque<Arc<JobCell>>>,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Owner operation: pushes a job at the back.
    pub fn push(&self, job: Arc<JobCell>) {
        self.inner.lock().push_back(job);
    }

    /// Owner operation: pops the most recently pushed job.
    pub fn pop(&self) -> Option<Arc<JobCell>> {
        self.inner.lock().pop_back()
    }

    /// Thief operation: steals the oldest job.
    pub fn steal(&self) -> Option<Arc<JobCell>> {
        self.inner.lock().pop_front()
    }

    /// Number of queued jobs (racy, for heuristics and tests only).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no jobs are queued (racy, for heuristics and tests only).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn marker_job(counter: &Arc<AtomicUsize>) -> Arc<JobCell> {
        let c = Arc::clone(counter);
        JobCell::new(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }))
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = JobQueue::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let a = marker_job(&counter);
        let b = marker_job(&counter);
        let c = marker_job(&counter);
        q.push(Arc::clone(&a));
        q.push(Arc::clone(&b));
        q.push(Arc::clone(&c));
        assert_eq!(q.len(), 3);
        // Thief takes the oldest (a); owner takes the newest (c).
        let stolen = q.steal().unwrap();
        assert!(Arc::ptr_eq(&stolen, &a));
        let popped = q.pop().unwrap();
        assert!(Arc::ptr_eq(&popped, &c));
        let remaining = q.pop().unwrap();
        assert!(Arc::ptr_eq(&remaining, &b));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.steal().is_none());
    }

    #[test]
    fn concurrent_pop_and_steal_never_duplicate_or_lose_jobs() {
        let q = Arc::new(JobQueue::new());
        let executed = Arc::new(AtomicUsize::new(0));
        let n = 10_000usize;
        for _ in 0..n {
            q.push(marker_job(&executed));
        }
        let mut handles = Vec::new();
        for t in 0..6 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut taken = 0usize;
                loop {
                    let job = if t % 2 == 0 { q.pop() } else { q.steal() };
                    match job {
                        Some(j) => {
                            j.execute();
                            taken += 1;
                        }
                        None => break,
                    }
                }
                taken
            }));
        }
        let total_taken: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_taken, n, "every job removed exactly once");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            n,
            "every job executed exactly once"
        );
    }
}
