//! Work-stealing deques.
//!
//! Each worker owns a [`JobQueue`] — a lock-free Chase–Lev deque (Chase & Lev, SPAA
//! 2005, with the C11 orderings of Lê et al., PPoPP 2013). The owner pushes and pops at
//! the bottom (LIFO, which preserves the depth-first execution order that makes
//! hierarchical heaps cheap), while thieves steal from the top (FIFO, stealing the
//! shallowest — largest — task first, the standard work-stealing heuristic the paper's
//! scheduler also uses). Owner operations are a handful of atomic instructions with no
//! locks; thieves synchronize through a single CAS on `top`.
//!
//! The element type is [`JobRef`], a single word, so buffer slots are plain
//! `AtomicPtr`s and the classic algorithm applies without torn-read caveats. The
//! buffer grows geometrically when full; retired buffers are kept alive until the
//! deque is dropped (racing thieves may still read them), which bounds the waste to
//! less than the final buffer's size.
//!
//! External (non-worker) threads inject root jobs through the [`Injector`], a small
//! mutex-protected FIFO: injection happens once per `Pool::run`, so it is nowhere near
//! a fast path and the simple structure is easy to show correct.

use crate::job::{JobHeader, JobRef};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU64, Ordering};

/// Initial deque capacity (must be a power of two). Forks deeper than this are rare,
/// but growth is supported and tested.
const INITIAL_CAPACITY: usize = 64;

/// A fixed-capacity ring buffer of job slots. Never shrinks; replaced wholesale on
/// growth.
struct Buffer {
    slots: Box<[AtomicPtr<JobHeader>]>,
    mask: usize,
}

impl Buffer {
    fn new(capacity: usize) -> Box<Buffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots: Vec<AtomicPtr<JobHeader>> = (0..capacity)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::new(Buffer {
            slots: slots.into_boxed_slice(),
            mask: capacity - 1,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn put(&self, index: isize, job: JobRef) {
        // Relaxed: publication happens through the Release store of `bottom` (push) or
        // the CAS on `top` (after growth).
        self.slots[index as usize & self.mask].store(job.as_ptr(), Ordering::Relaxed);
    }

    #[inline]
    fn get(&self, index: isize) -> JobRef {
        JobRef::from_ptr(self.slots[index as usize & self.mask].load(Ordering::Relaxed))
    }
}

/// A lock-free Chase–Lev work-stealing deque of [`JobRef`]s.
///
/// Contract: [`JobQueue::push`] and [`JobQueue::pop`] may only be called by the owning
/// worker thread; [`JobQueue::steal`] may be called by any thread. Each pushed job is
/// removed exactly once (by pop or by steal), never duplicated, never lost.
pub struct JobQueue {
    /// Next slot the owner will push into. Only the owner writes it.
    bottom: AtomicIsize,
    /// Next slot thieves will steal from. Advanced by CAS.
    top: AtomicIsize,
    /// Current ring buffer. Only the owner replaces it (on growth).
    buffer: AtomicPtr<Buffer>,
    /// Retired buffers, kept alive until drop because in-flight thieves may still read
    /// them. Geometric growth keeps the total below one final-buffer's worth.
    /// The `Box` is load-bearing despite clippy's advice: thieves hold `&Buffer`
    /// obtained from the raw `buffer` pointer, so the `Buffer` struct itself must not
    /// move when the retirement vector grows.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
}

// SAFETY: all shared state is atomic; the owner-only contract on push/pop is
// documented above and upheld by the pool (each worker touches only its own queue's
// owner operations).
unsafe impl Send for JobQueue {}
unsafe impl Sync for JobQueue {}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl JobQueue {
    /// Creates an empty deque.
    pub fn new() -> Self {
        JobQueue {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(INITIAL_CAPACITY))),
            retired: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn buffer(&self, order: Ordering) -> &Buffer {
        // SAFETY: the buffer pointer is always valid: it is only replaced by the owner,
        // and old buffers are retired (kept alive), not freed, until `drop`.
        unsafe { &*self.buffer.load(order) }
    }

    /// Owner operation: pushes a job at the bottom.
    pub fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let buf = self.buffer(Ordering::Relaxed);
        if b - t >= buf.capacity() as isize {
            self.grow(b, t);
        }
        let buf = self.buffer(Ordering::Relaxed);
        buf.put(b, job);
        // Publish the slot write before making it visible to thieves.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner operation: doubles the buffer, copying the live range `[t, b)`.
    #[cold]
    fn grow(&self, b: isize, t: isize) {
        let old = self.buffer(Ordering::Relaxed);
        let new = Buffer::new(old.capacity() * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        // SAFETY: old_ptr came from Box::into_raw in `new`/`grow` and is retired, not
        // freed, because thieves may still hold a reference to it.
        self.retired.lock().push(unsafe { Box::from_raw(old_ptr) });
    }

    /// Owner operation: pops the most recently pushed job.
    pub fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the `bottom` store against the `top` load below —
        // the flag-and-read handshake with concurrent thieves.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = buf.get(b);
            if t == b {
                // Last element: race the thieves for it with a CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief operation: steals the oldest job. Retries internally on CAS contention
    /// and returns `None` only when the deque is (momentarily) empty.
    pub fn steal(&self) -> Option<JobRef> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            // Order the `top` load before the `bottom` load (pairs with the fence in
            // `pop`).
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Read the slot *before* the CAS: a successful CAS licenses the value read.
            let buf = self.buffer(Ordering::Acquire);
            let job = buf.get(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(job);
            }
            // Lost the race to another thief (or to the owner's pop); try again.
            std::hint::spin_loop();
        }
    }

    /// Number of queued jobs (racy, for heuristics and tests only).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True if no jobs are queued (racy, for heuristics and tests only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the pointer came from Box::into_raw.
        drop(unsafe { Box::from_raw(*self.buffer.get_mut()) });
        // Retired buffers drop with the Vec. Any un-executed JobRefs are plain
        // pointers owned elsewhere (stack frames / Pool::run boxes); nothing to free.
    }
}

// ---------------------------------------------------------------------------
// Scan-span deques (GC v2).
// ---------------------------------------------------------------------------

/// A two-word payload moved by a [`SpanDeque`] — in practice a GC *scan block*:
/// a span of a to-space chunk whose freshly copied objects still need their pointer
/// fields scanned. The deque treats it as an opaque pair of words.
pub type Span = (u64, u64);

/// A fixed-capacity ring of two-word span slots (the [`Buffer`] of [`SpanDeque`]).
struct SpanBuffer {
    slots: Box<[(AtomicU64, AtomicU64)]>,
    mask: usize,
}

impl SpanBuffer {
    fn new(capacity: usize) -> Box<SpanBuffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots: Vec<(AtomicU64, AtomicU64)> = (0..capacity)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect();
        Box::new(SpanBuffer {
            slots: slots.into_boxed_slice(),
            mask: capacity - 1,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn put(&self, index: isize, span: Span) {
        let slot = &self.slots[index as usize & self.mask];
        slot.0.store(span.0, Ordering::Relaxed);
        slot.1.store(span.1, Ordering::Relaxed);
    }

    #[inline]
    fn get(&self, index: isize) -> Span {
        let slot = &self.slots[index as usize & self.mask];
        (
            slot.0.load(Ordering::Relaxed),
            slot.1.load(Ordering::Relaxed),
        )
    }
}

/// The [`JobQueue`] Chase–Lev algorithm over two-word [`Span`] elements — the
/// work-stealing substrate of the parallel collector (GC v2): each collector worker
/// owns one, pushing and popping scan blocks at the bottom while idle collectors
/// steal blocks from the top.
///
/// Same orderings and contract as [`JobQueue`] (owner-only `push`/`pop`, any-thread
/// `steal`, exactly-once removal). The one twist of a two-word element: a slow thief
/// racing a wrapped-around owner `put` can observe a *torn* pair, but the value is
/// only used after the CAS on `top` succeeds, and that CAS fails whenever the tear
/// was possible (the owner can only overwrite a ring slot whose index has been
/// consumed, i.e. `top` moved past it). Each word is individually atomic, so the
/// torn read is well-defined and simply discarded.
pub struct SpanDeque {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buffer: AtomicPtr<SpanBuffer>,
    /// Retired buffers (see [`JobQueue::retired`]); the `Box` keeps grown-over
    /// buffers pinned while in-flight thieves may still read them.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<SpanBuffer>>>,
}

impl Default for SpanDeque {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanDeque {
    /// Creates an empty deque.
    pub fn new() -> Self {
        SpanDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(SpanBuffer::new(INITIAL_CAPACITY))),
            retired: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn buffer(&self, order: Ordering) -> &SpanBuffer {
        // SAFETY: as in `JobQueue::buffer` — replaced only by the owner, old buffers
        // retired (kept alive) until drop.
        unsafe { &*self.buffer.load(order) }
    }

    /// Owner operation: pushes a span at the bottom.
    pub fn push(&self, span: Span) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buffer(Ordering::Relaxed).capacity() as isize {
            self.grow(b, t);
        }
        self.buffer(Ordering::Relaxed).put(b, span);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    #[cold]
    fn grow(&self, b: isize, t: isize) {
        let old = self.buffer(Ordering::Relaxed);
        let new = SpanBuffer::new(old.capacity() * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        // SAFETY: `old_ptr` came from `Box::into_raw`; retired, not freed, because
        // in-flight thieves may still read it.
        self.retired.lock().push(unsafe { Box::from_raw(old_ptr) });
    }

    /// Owner operation: pops the most recently pushed span.
    pub fn pop(&self) -> Option<Span> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let span = buf.get(b);
            if t == b {
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(span)
            } else {
                Some(span)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief operation: steals the oldest span. Returns `None` only when the deque
    /// is (momentarily) empty.
    pub fn steal(&self) -> Option<Span> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            // Read before the CAS; a successful CAS licenses the (possibly torn —
            // then the CAS fails) value just read.
            let span = self.buffer(Ordering::Acquire).get(t);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(span);
            }
            std::hint::spin_loop();
        }
    }

    /// True if no spans are queued (racy; used by the collector's termination
    /// protocol *after* all workers have announced themselves idle, when no new
    /// spans can appear).
    pub fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b - t <= 0
    }
}

impl Drop for SpanDeque {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the pointer came from Box::into_raw.
        drop(unsafe { Box::from_raw(*self.buffer.get_mut()) });
    }
}

/// The mutex-protected FIFO through which external threads inject root jobs.
#[derive(Default)]
pub struct Injector {
    inner: Mutex<VecDeque<JobRef>>,
}

impl Injector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a root job (called from external threads).
    pub fn push(&self, job: JobRef) {
        self.inner.lock().push_back(job);
    }

    /// Dequeues the oldest root job (called by workers).
    pub fn steal(&self) -> Option<JobRef> {
        self.inner.lock().pop_front()
    }

    /// True if no root jobs are waiting (racy, for sleep rechecks only).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

// Conversion helpers between JobRef and raw slot pointers, private to this crate.
impl JobRef {
    #[inline]
    fn as_ptr(self) -> *mut JobHeader {
        self.raw() as *mut JobHeader
    }

    #[inline]
    fn from_ptr(p: *mut JobHeader) -> JobRef {
        // SAFETY: `p` was produced by `as_ptr` on a JobRef stored in this deque.
        unsafe { JobRef::from_raw(p) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::HeapJob;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// A boxed marker job that bumps a counter when executed; the boxes are kept alive
    /// by the caller for the duration of the test (`JobRef`s point into them, so the
    /// jobs must not move — hence `Box` despite clippy's `vec_box` advice).
    #[allow(clippy::vec_box)]
    fn marker_jobs(n: usize, counter: &Arc<AtomicUsize>) -> Vec<Box<HeapJob>> {
        (0..n)
            .map(|_| {
                let c = Arc::clone(counter);
                unsafe {
                    HeapJob::new(Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }))
                }
            })
            .collect()
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let q = JobQueue::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs = marker_jobs(3, &counter);
        for j in &jobs {
            q.push(j.as_job_ref());
        }
        assert_eq!(q.len(), 3);
        // Thief takes the oldest (job 0); owner takes the newest (job 2).
        let stolen = q.steal().unwrap();
        assert!(stolen.points_to(jobs[0].as_job_ref().raw()));
        let popped = q.pop().unwrap();
        assert!(popped.points_to(jobs[2].as_job_ref().raw()));
        let remaining = q.pop().unwrap();
        assert!(remaining.points_to(jobs[1].as_job_ref().raw()));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.steal().is_none());
    }

    #[test]
    fn growth_preserves_every_job_in_order() {
        let q = JobQueue::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = INITIAL_CAPACITY * 8 + 3; // force three growths
        let jobs = marker_jobs(n, &counter);
        for j in &jobs {
            q.push(j.as_job_ref());
        }
        assert_eq!(q.len(), n);
        // Owner pops everything back in LIFO order.
        for k in (0..n).rev() {
            let popped = q.pop().unwrap();
            assert!(popped.points_to(jobs[k].as_job_ref().raw()), "index {k}");
        }
        assert!(q.pop().is_none());
    }

    /// The satellite stress test: one owner thread interleaving pushes and pops with
    /// several concurrent thieves, across multiple buffer growths. Every job must be
    /// executed exactly once — no duplication, no loss.
    #[test]
    fn stress_concurrent_pop_and_steal_never_duplicates_or_loses_jobs() {
        const N: usize = 50_000;
        const THIEVES: usize = 5;
        let q = Arc::new(JobQueue::new());
        let executed = Arc::new(AtomicUsize::new(0));
        let jobs = Arc::new(marker_jobs(N, &executed));
        let stop = Arc::new(AtomicUsize::new(0));

        let mut thieves = Vec::new();
        for _ in 0..THIEVES {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            let _jobs = Arc::clone(&jobs); // keep the boxes alive in every thread
            thieves.push(std::thread::spawn(move || {
                let mut taken = 0usize;
                loop {
                    match q.steal() {
                        Some(job) => {
                            unsafe { job.execute(true) };
                            taken += 1;
                        }
                        None => {
                            if stop.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                taken
            }));
        }

        // Owner: push in bursts (forcing growth), pop in bursts (racing the thieves
        // for the tail), like a join-heavy worker would.
        let mut popped = 0usize;
        for (i, j) in jobs.iter().enumerate() {
            q.push(j.as_job_ref());
            if i % 3 == 0 {
                if let Some(job) = q.pop() {
                    unsafe { job.execute(false) };
                    popped += 1;
                }
            }
        }
        while let Some(job) = q.pop() {
            unsafe { job.execute(false) };
            popped += 1;
        }
        stop.store(1, Ordering::Release);
        let stolen: usize = thieves.into_iter().map(|h| h.join().unwrap()).sum();

        assert_eq!(popped + stolen, N, "every job removed exactly once");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            N,
            "every job executed exactly once"
        );
    }

    #[test]
    fn span_deque_lifo_owner_fifo_thief_and_growth() {
        let q = SpanDeque::new();
        let n = INITIAL_CAPACITY * 4 + 5; // force growth
        for k in 0..n as u64 {
            q.push((k, k.wrapping_mul(0x9E37_79B9)));
        }
        // Thief takes the oldest.
        assert_eq!(q.steal(), Some((0, 0)));
        // Owner takes the newest, with the paired word intact.
        let (a, b) = q.pop().unwrap();
        assert_eq!(a, n as u64 - 1);
        assert_eq!(b, a.wrapping_mul(0x9E37_79B9));
        // Drain the rest; every element appears exactly once.
        let mut seen = vec![false; n];
        seen[0] = true;
        seen[n - 1] = true;
        while let Some((a, b)) = q.pop() {
            assert_eq!(b, a.wrapping_mul(0x9E37_79B9), "torn pair");
            assert!(!seen[a as usize], "duplicate {a}");
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(q.is_empty());
    }

    /// Owner pushing/popping against several thieves: every span removed exactly
    /// once, and no thief ever observes a torn (mismatched) pair as a *returned*
    /// value — the license argument for two-word elements.
    #[test]
    fn span_deque_stress_no_loss_duplication_or_tearing() {
        const N: u64 = 40_000;
        const THIEVES: usize = 4;
        let q = Arc::new(SpanDeque::new());
        let stop = Arc::new(AtomicUsize::new(0));
        let mut thieves = Vec::new();
        for _ in 0..THIEVES {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            thieves.push(std::thread::spawn(move || {
                let mut taken = Vec::new();
                loop {
                    match q.steal() {
                        Some((a, b)) => {
                            assert_eq!(b, a.wrapping_mul(0x9E37_79B9), "torn steal");
                            taken.push(a);
                        }
                        None => {
                            if stop.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                taken
            }));
        }
        let mut mine = Vec::new();
        for k in 0..N {
            q.push((k, k.wrapping_mul(0x9E37_79B9)));
            if k % 3 == 0 {
                if let Some((a, b)) = q.pop() {
                    assert_eq!(b, a.wrapping_mul(0x9E37_79B9), "torn pop");
                    mine.push(a);
                }
            }
        }
        while let Some((a, b)) = q.pop() {
            assert_eq!(b, a.wrapping_mul(0x9E37_79B9));
            mine.push(a);
        }
        stop.store(1, Ordering::Release);
        for h in thieves {
            mine.extend(h.join().unwrap());
        }
        mine.sort_unstable();
        let expect: Vec<u64> = (0..N).collect();
        assert_eq!(mine, expect, "every span exactly once");
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs = marker_jobs(2, &counter);
        inj.push(jobs[0].as_job_ref());
        inj.push(jobs[1].as_job_ref());
        assert!(!inj.is_empty());
        assert!(inj.steal().unwrap().points_to(jobs[0].as_job_ref().raw()));
        assert!(inj.steal().unwrap().points_to(jobs[1].as_job_ref().raw()));
        assert!(inj.steal().is_none());
        assert!(inj.is_empty());
    }
}
