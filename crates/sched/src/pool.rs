//! The worker pool and the work-first `join` primitive (scheduler v2).
//!
//! The fast path of a fork is allocation-free and lock-free: the right branch lives in
//! a stack-resident [`StackJob`], its one-word handle is published on the forking
//! worker's Chase–Lev deque, and — in the common, unstolen case — popped back and run
//! inline. Waking is pay-per-sleeper: a push only touches the sleep lock when the
//! sleeper count says somebody is actually parked, and then wakes exactly one worker.
//! Idle workers spin briefly (stealing from randomized victims), then park on a
//! condvar until a push, an injection, a shutdown, or an external
//! [`PoolWaker::wake_all`] (used by the stop-the-world baseline's safepoint protocol).

use crate::job::{HeapJob, JobRef, OwnedJob, StackJob};
use crate::queue::{Injector, JobQueue};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Configuration for a [`Pool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads. Must be at least 1.
    pub n_workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

type IdleHook = Arc<dyn Fn(usize) + Send + Sync>;
type StealHook = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// How many fruitless scan rounds an idle worker spins through before it announces
/// itself as a sleeper and parks. Each round scans every victim once.
const SPIN_ROUNDS: usize = 32;

/// Safety-net parking timeout. Wakeups are delivered through the token protocol; the
/// timeout only bounds the damage of a protocol bug and keeps the idle hook running
/// (slowly) even for a worker that somehow missed a wake.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Scheduler counters exposed to runtimes and the harness.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Successful steals from worker deques (injector pops are not steals).
    pub steals: usize,
    /// Times a worker parked on the sleep condvar.
    pub parks: usize,
    /// Wakeups delivered to parked workers (tokens deposited).
    pub wakes: usize,
    /// Panics contained by the worker-loop shield (a detached job — GC helper
    /// or idle-hook work — unwound; the worker survived and kept scheduling).
    /// Fork/join branch panics are *not* counted here: those propagate to the
    /// forking frame by design.
    pub worker_panics: usize,
}

/// State guarded by the sleep lock: outstanding wake tokens. A parking worker consumes
/// a token instead of sleeping; a worker woken by the condvar consumes the token that
/// woke it. Tokens make the wake protocol immune to the push-vs-park race.
#[derive(Default)]
struct SleepState {
    tokens: usize,
}

struct PoolInner {
    queues: Vec<JobQueue>,
    injector: Injector,
    shutdown: AtomicBool,
    /// Number of workers parked or committed to parking (announced sleepers).
    sleepers: AtomicUsize,
    sleep: Mutex<SleepState>,
    sleep_cv: Condvar,
    idle_hook: Mutex<Option<IdleHook>>,
    /// Bumped on every `set_idle_hook`; lets workers cache the hook (satellite: no
    /// lock-and-clone per idle iteration).
    idle_hook_epoch: AtomicUsize,
    steal_hook: OnceLock<StealHook>,
    /// Per-worker xorshift state for randomized victim selection.
    rng: Vec<AtomicU64>,
    live_workers: AtomicUsize,
    steals: AtomicUsize,
    parks: AtomicUsize,
    wakes: AtomicUsize,
    worker_panics: AtomicUsize,
    /// GC helper jobs injected but not yet executed. Bounds the injector backlog:
    /// when a saturated pool never drains its helper jobs, later collections stop
    /// injecting new ones instead of queueing an unbounded pile of stale jobs
    /// (each pinning its team's shared state until executed).
    gc_helper_jobs: AtomicUsize,
}

impl PoolInner {
    /// Wakes one parked worker, if any. Call *after* publishing work; the SeqCst fence
    /// pairs with the sleeper's announce-then-recheck sequence, so either this load
    /// sees the sleeper (and leaves a token) or the sleeper's recheck sees the work.
    fn wake_one(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let mut st = self.sleep.lock();
            if st.tokens < self.queues.len() {
                st.tokens += 1;
                self.wakes.fetch_add(1, Ordering::Relaxed);
            }
            self.sleep_cv.notify_one();
        }
    }

    /// Wakes every parked worker (shutdown, or an external event like a pending
    /// stop-the-world collection that parked workers must go poll).
    fn wake_all(&self) {
        let n = self.queues.len();
        let mut st = self.sleep.lock();
        self.wakes.fetch_add(n - st.tokens, Ordering::Relaxed);
        st.tokens = n;
        self.sleep_cv.notify_all();
    }

    /// One xorshift64 step of worker `me`'s private generator. The slot is atomic only
    /// to be shareable; each worker touches its own.
    fn next_rand(&self, me: usize) -> u64 {
        let mut x = self.rng[me].load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng[me].store(x, Ordering::Relaxed);
        x
    }

    /// Steals a job from the injector or from a worker deque other than `me`,
    /// scanning victims from a random starting point so contending thieves spread out
    /// instead of converging on the same victims.
    fn steal_any(&self, me: usize) -> Option<JobRef> {
        if let Some(j) = self.injector.steal() {
            return Some(j);
        }
        let n = self.queues.len();
        if n <= 1 {
            return None;
        }
        let start = (self.next_rand(me) % n as u64) as usize;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            if let Some(j) = self.queues[victim].steal() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(hook) = self.steal_hook.get() {
                    hook(me, victim);
                }
                return Some(j);
            }
        }
        None
    }

    /// True if any queue (injector included) has visible work. Used only in the
    /// sleeper's pre-park recheck — this is the fix for the missed-wakeup window: the
    /// old recheck consulted the injector only, so a job pushed to a *peer deque* just
    /// before the wait slept the full timeout.
    fn has_any_work(&self) -> bool {
        !self.injector.is_empty() || self.queues.iter().any(|q| !q.is_empty())
    }

    fn idle_hook_epoch(&self) -> usize {
        self.idle_hook_epoch.load(Ordering::Acquire)
    }

    fn load_idle_hook(&self) -> Option<IdleHook> {
        self.idle_hook.lock().clone()
    }

    /// Executes a *detached* job under the worker panic shield: a panic
    /// escaping the job (a GC helper killed by fault injection — stack jobs
    /// and root jobs transport their panics internally) is contained and
    /// counted, never allowed to unwind the caller. That matters in two
    /// places: the worker main loop (an unwinding worker thread would strand
    /// its deque and shrink the pool for the rest of its life) and the
    /// fork/join help loop (whose stack frame a still-running stolen
    /// `StackJob` borrows — unwinding past it would be a use-after-free, see
    /// `Worker::join_context`'s safety comment).
    ///
    /// # Safety
    /// Same contract as [`JobRef::execute`]: the handle must be executed
    /// exactly once, by the thread holding it.
    unsafe fn execute_shielded(&self, j: JobRef, stolen: bool) {
        // SAFETY: forwarded caller contract.
        if catch_unwind(AssertUnwindSafe(|| unsafe { j.execute(stolen) })).is_err() {
            self.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A worker-local cache of the pool's idle hook, refreshed only when the hook is
/// replaced (epoch check: one relaxed load per idle iteration instead of a
/// lock-and-clone).
struct CachedIdleHook {
    epoch: usize,
    hook: Option<IdleHook>,
}

impl CachedIdleHook {
    fn new() -> Self {
        CachedIdleHook {
            epoch: usize::MAX,
            hook: None,
        }
    }

    #[inline]
    fn run(&mut self, pool: &PoolInner, index: usize) {
        let epoch = pool.idle_hook_epoch();
        if epoch != self.epoch {
            self.hook = pool.load_idle_hook();
            self.epoch = epoch;
        }
        if let Some(hook) = &self.hook {
            // Idle-hook work is detached (it drains other runs' GC increments);
            // a panic there — an injected fault at a finalize hook site — must
            // not unwind the worker loop or a fork/join help loop.
            if catch_unwind(AssertUnwindSafe(|| hook(index))).is_err() {
                pool.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Encodes the pool identity + worker index in the TLS slot. The pool identity is the
/// address of its `PoolInner`, which is stable for the pool's lifetime.
fn set_current_worker(pool: &Arc<PoolInner>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(pool) as usize, index))));
}

fn clear_current_worker() {
    CURRENT_WORKER.with(|c| c.set(None));
}

/// A handle to the worker thread currently executing, used to fork new work.
#[derive(Clone)]
pub struct Worker {
    pool: Arc<PoolInner>,
    index: usize,
}

impl Worker {
    /// Index of this worker within its pool (`0 .. n_workers`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers in the pool this worker belongs to.
    pub fn pool_size(&self) -> usize {
        self.pool.queues.len()
    }

    /// The work-first fork/join primitive.
    ///
    /// Runs `fa` inline on the current worker while exposing `fb` to thieves; see
    /// [`Worker::join_context`] for the mechanics. Use `join_context` when the right
    /// branch needs to know whether it was actually stolen.
    pub fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce() -> RA + Send,
        FB: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.join_context(fa, |_stolen| fb())
    }

    /// The work-first fork/join primitive, steal-aware.
    ///
    /// Runs `fa` inline on the current worker while exposing `fb` to thieves through a
    /// stack-resident job — **no heap allocation happens on this path**. If nobody
    /// steals `fb`, the current worker pops it back and runs it inline with
    /// `stolen == false` (the common, cheap case the paper's scheduler optimizes
    /// for); if a thief took it, the thief runs it with `stolen == true` — this is the
    /// on-steal hook through which upper layers observe steals (the hierarchical
    /// runtime creates child heaps there, lazily) — while the current worker *helps*:
    /// executing other local jobs or stealing elsewhere until `fb`'s latch is set.
    /// Panics in either branch are re-raised here after both branches have finished,
    /// so the scheduler never leaks a running job that borrows a dead frame.
    pub fn join_context<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce() -> RA + Send,
        FB: FnOnce(bool) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // The Chase–Lev deque's push/pop are owner-only, so resolve the index of the
        // worker actually executing this call from TLS instead of trusting
        // `self.index`: `Worker` is `Clone + Send`, and a handle captured into a
        // branch closure that gets *stolen* would otherwise push to the victim's
        // deque from the thief's thread — unsynchronized and unsound. With the TLS
        // index a captured handle simply forks on whichever of the pool's workers is
        // running it.
        let index = CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool_id, index)| {
                (pool_id == Arc::as_ptr(&self.pool) as usize).then_some(index)
            })
            .expect("Worker::join must be called on a worker thread of the same pool");
        let job = StackJob::new(fb);
        // SAFETY: we do not return from this frame (even on panic of `fa`) until the
        // job's latch is set or the job has been popped back un-stolen and executed
        // inline, so the job outlives every execution of its handle.
        self.pool.queues[index].push(unsafe { job.as_job_ref() });
        // Wake an idle worker only if somebody is actually parked.
        self.pool.wake_one();

        let result_a = catch_unwind(AssertUnwindSafe(fa));

        // Retrieve the right branch: pop it back if still local, otherwise help until
        // the thief finishes it.
        let mut idle_hook = CachedIdleHook::new();
        while !job.is_done() {
            if let Some(j) = self.pool.queues[index].pop() {
                if j.points_to(job.header_ptr()) {
                    // Unstolen fast path: run the branch inline, no heap, no latch
                    // contention.
                    // SAFETY: we hold the unique reclaimed handle.
                    unsafe { job.run_inline(false) };
                    break;
                }
                // A job pushed by an enclosing join on this worker; running it here is
                // safe (same thread, its frame is suspended below ours) and useful.
                // SAFETY: popped from our own deque, executed exactly once.
                unsafe { self.pool.execute_shielded(j, false) };
            } else if let Some(j) = self.pool.steal_any(index) {
                // SAFETY: stolen handle, executed exactly once.
                unsafe { self.pool.execute_shielded(j, true) };
            } else {
                // Nothing to help with. Give the idle hook a chance to run — the
                // stop-the-world baseline uses it to park waiting workers at a
                // safepoint so a pending collection can proceed — then yield.
                idle_hook.run(&self.pool, index);
                std::thread::yield_now();
            }
        }
        debug_assert!(job.is_done());

        // SAFETY: the job is done and this frame is its unique consumer.
        let result_b = unsafe { job.take_result() };
        match (result_a, result_b) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) => resume_unwind(p),
            (Ok(_), Err(p)) => resume_unwind(p),
        }
    }

    /// The worker the calling thread is running on, if it is a pool worker.
    pub fn current_in(pool: &Pool) -> Option<Worker> {
        CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool_id, index)| {
                if pool_id == Arc::as_ptr(&pool.inner) as usize {
                    Some(Worker {
                        pool: Arc::clone(&pool.inner),
                        index,
                    })
                } else {
                    None
                }
            })
    }
}

/// A cheap, clonable handle that can wake every parked worker of a pool. Handed to
/// external coordination layers (the safepoint protocol) that must get parked workers
/// moving again without owning the pool.
///
/// Holds only a `Weak` reference: wakers typically end up stored inside structures
/// the pool itself references (the baselines install one in their `Safepoints`, whose
/// `poll` is the pool's idle hook), and a strong reference would make that loop leak
/// the pool's state. A waker whose pool is gone is a no-op.
#[derive(Clone)]
pub struct PoolWaker {
    inner: std::sync::Weak<PoolInner>,
}

impl PoolWaker {
    /// Wakes all parked workers so they re-scan for work and re-run the idle hook.
    /// No-op if the pool has been dropped.
    pub fn wake_all(&self) {
        if let Some(pool) = self.inner.upgrade() {
            pool.wake_all();
        }
    }
}

/// A pool of worker threads executing fork/join tasks.
pub struct Pool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `n_workers` worker threads.
    pub fn new(n_workers: usize) -> Pool {
        Self::with_config(PoolConfig { n_workers })
    }

    /// Spawns a pool from a [`PoolConfig`].
    pub fn with_config(config: PoolConfig) -> Pool {
        let n = config.n_workers.max(1);
        let inner = Arc::new(PoolInner {
            queues: (0..n).map(|_| JobQueue::new()).collect(),
            injector: Injector::new(),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(SleepState::default()),
            sleep_cv: Condvar::new(),
            idle_hook: Mutex::new(None),
            idle_hook_epoch: AtomicUsize::new(0),
            steal_hook: OnceLock::new(),
            rng: (0..n)
                .map(|i| AtomicU64::new(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i as u64 + 1)))
                .collect(),
            live_workers: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            parks: AtomicUsize::new(0),
            wakes: AtomicUsize::new(0),
            worker_panics: AtomicUsize::new(0),
            gc_helper_jobs: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hh-worker-{index}"))
                    .spawn(move || worker_loop(inner, index))
                    .expect("failed to spawn worker thread"),
            );
        }
        Pool { inner, handles }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Total number of successful steals so far (scheduler statistic).
    pub fn steal_count(&self) -> usize {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// Snapshot of the scheduler counters (cumulative over the pool's lifetime).
    pub fn sched_stats(&self) -> SchedStats {
        SchedStats {
            steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            wakes: self.inner.wakes.load(Ordering::Relaxed),
            worker_panics: self.inner.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Installs a hook called by idle workers between steal attempts. The stop-the-world
    /// baseline uses this to park idle workers at safepoints during a collection.
    /// Workers cache the hook and refresh it on replacement.
    pub fn set_idle_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        *self.inner.idle_hook.lock() = Some(Arc::new(hook));
        self.inner.idle_hook_epoch.fetch_add(1, Ordering::Release);
    }

    /// Installs the on-steal hook, called as `hook(thief, victim)` on every successful
    /// steal from a worker deque. Set-once (typically at runtime construction);
    /// subsequent calls are ignored. The *per-fork* steal observation — "was this
    /// particular right branch stolen?" — is delivered through
    /// [`Worker::join_context`]'s flag instead.
    pub fn set_steal_hook(&self, hook: impl Fn(usize, usize) + Send + Sync + 'static) {
        let _ = self.inner.steal_hook.set(Arc::new(hook));
    }

    /// Drafts up to `helpers` pool workers into a collection team (GC v2): the
    /// calling thread runs `work(0)` inline as team member 0, and `helpers`
    /// fire-and-forget jobs calling `work(1) .. work(helpers)` are injected for idle
    /// workers to pick up. Every parked worker is woken so a sleeping pool joins the
    /// collection instead of sleeping through it.
    ///
    /// Helpers are **best-effort**: a worker busy with mutator tasks simply never
    /// takes its helper job, and a job executed after the collection finished must
    /// return immediately — `work` is responsible for that (the collectors gate on a
    /// team-done flag; see `hh_sched::TeamSync`). The jobs own their closures
    /// ([`OwnedJob`]); any still queued when the pool shuts down are executed (and
    /// thereby freed) by the shutdown drain.
    ///
    /// May be called from a pool worker (the common case: a collection triggered
    /// inside a task) or from an external thread.
    pub fn run_gc_team(&self, helpers: usize, work: Arc<dyn Fn(usize) + Send + Sync>) {
        // Bound the injector backlog: a saturated pool visits the injector rarely,
        // so frequent collections could otherwise pile up thousands of stale
        // helper jobs, each pinning its team's shared state until executed. Past
        // the cap the team simply runs with fewer helpers — a pool that busy
        // would not have drafted any anyway.
        let backlog_cap = 2 * self.inner.queues.len();
        let mut injected = 0;
        for slot in 1..=helpers {
            if self.inner.gc_helper_jobs.load(Ordering::Relaxed) >= backlog_cap {
                break;
            }
            self.inner.gc_helper_jobs.fetch_add(1, Ordering::Relaxed);
            let w = Arc::clone(&work);
            let inner = Arc::clone(&self.inner);
            self.inner.injector.push(OwnedJob::spawn(Box::new(move || {
                // Release the backlog slot on drop, not fall-through: helper
                // work can panic (an injected fault inside a collection), and
                // a skipped decrement would permanently shrink the backlog cap
                // and trip the shutdown drain's leak assertion.
                struct BacklogSlot(Arc<PoolInner>);
                impl Drop for BacklogSlot {
                    fn drop(&mut self) {
                        self.0.gc_helper_jobs.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _slot = BacklogSlot(inner);
                w(slot);
            })));
            injected += 1;
        }
        if injected > 0 {
            // Parked workers are exactly the ones we want: they have no mutator
            // work, so draft them all.
            self.inner.wake_all();
        }
        work(0);
    }

    /// A handle that can wake all parked workers (see [`PoolWaker`]).
    pub fn waker(&self) -> PoolWaker {
        PoolWaker {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Runs `f` on some worker thread and blocks the calling (external) thread until it
    /// finishes, returning its result. Panics in `f` are propagated.
    ///
    /// Must not be called from inside the pool's own workers (use [`Worker::join`] for
    /// nested parallelism instead).
    pub fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Worker) -> R + Send,
    {
        assert!(
            Worker::current_in(self).is_none(),
            "Pool::run called from inside the pool; use Worker::join for nested work"
        );
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let inner = &self.inner;
        let job = {
            let slot = &result;
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let worker = CURRENT_WORKER.with(|c| c.get()).map(|(_, index)| Worker {
                    pool: Arc::clone(inner),
                    index,
                });
                let worker = worker.expect("root job executed off-pool");
                let r = catch_unwind(AssertUnwindSafe(|| f(&worker)));
                *slot.lock() = Some(r);
            });
            // SAFETY: we block on `wait_blocking` below until the job has executed, so
            // the borrows of `result` and `inner` outlive the closure's execution.
            unsafe { HeapJob::new(f) }
        };
        self.inner.injector.push(job.as_job_ref());
        self.inner.wake_one();
        job.wait_blocking();
        let outcome = result
            .lock()
            .take()
            .expect("root job completed without result");
        match outcome {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Drain leftover injected jobs. These can only be self-owning GC helper
        // jobs whose team already finished (`Pool::run` blocks until its job has
        // executed, and stack jobs never reach the injector): executing them makes
        // them return immediately and free their own boxes.
        while let Some(job) = self.inner.injector.steal() {
            // SAFETY: removed from the injector exactly once; all worker threads
            // have been joined, so we are the only executor.
            unsafe { job.execute(false) };
        }
        // Every drained helper job has now decremented its backlog slot; a
        // residue would mean a job escaped both the workers and the drain (its
        // closure — and the team state it pins — leaked). Zero the counter
        // unconditionally so a surviving `PoolWaker`/`PoolInner` clone can never
        // observe a stale backlog bound.
        debug_assert_eq!(
            self.inner.gc_helper_jobs.load(Ordering::Relaxed),
            0,
            "helper jobs escaped the shutdown drain"
        );
        self.inner.gc_helper_jobs.store(0, Ordering::Relaxed);
    }
}

/// The worker main loop: run local work, steal, spin briefly, then park.
///
/// Parking protocol (the replacement for the old 1 ms condvar poll): the worker
/// announces itself in `sleepers`, re-checks *all* queues plus the shutdown flag
/// (closing the missed-wakeup window), and only then parks. Every wake source —
/// `wake_one` after a push, `wake_all` on shutdown or from a [`PoolWaker`] — either
/// sees the announcement and deposits a wake token under the sleep lock, or is
/// ordered before the recheck so the recheck finds the work. Tokens are consumed
/// either instead of parking or on wake, so no wake is ever lost.
fn worker_loop(pool: Arc<PoolInner>, index: usize) {
    set_current_worker(&pool, index);
    pool.live_workers.fetch_add(1, Ordering::Relaxed);
    let mut idle_hook = CachedIdleHook::new();
    'main: loop {
        // Phase 1: drain local work and steal.
        if let Some(j) = pool.queues[index].pop() {
            // SAFETY: popped from our own deque; executed exactly once.
            unsafe { pool.execute_shielded(j, false) };
            continue 'main;
        }
        if let Some(j) = pool.steal_any(index) {
            // SAFETY: stolen handle; executed exactly once.
            unsafe { pool.execute_shielded(j, true) };
            continue 'main;
        }
        if pool.shutdown.load(Ordering::Acquire) {
            break 'main;
        }

        // Phase 2: bounded spin, re-trying randomized steals and running the idle
        // hook (the stop-the-world baselines poll safepoints there).
        for _ in 0..SPIN_ROUNDS {
            idle_hook.run(&pool, index);
            if let Some(j) = pool.steal_any(index) {
                // SAFETY: stolen handle; executed exactly once.
                unsafe { pool.execute_shielded(j, true) };
                continue 'main;
            }
            if pool.shutdown.load(Ordering::Acquire) {
                break 'main;
            }
            std::thread::yield_now();
        }

        // Phase 3: park. Announce first; the SeqCst ordering against a pusher's
        // publish-then-check means either the pusher sees us (token) or we see the
        // pushed work in the recheck.
        pool.sleepers.fetch_add(1, Ordering::SeqCst);
        if pool.has_any_work() || pool.shutdown.load(Ordering::Acquire) {
            pool.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue 'main;
        }
        {
            let mut st = pool.sleep.lock();
            if st.tokens > 0 {
                st.tokens -= 1;
            } else {
                pool.parks.fetch_add(1, Ordering::Relaxed);
                pool.sleep_cv.wait_for(&mut st, PARK_TIMEOUT);
                if st.tokens > 0 {
                    st.tokens -= 1;
                }
            }
        }
        pool.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
    pool.live_workers.fetch_sub(1, Ordering::Relaxed);
    clear_current_worker();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fork/join fib. The current worker is re-derived inside each branch (as the
    /// real runtimes do): a *stolen* branch executes on a different worker, and using
    /// a captured parent `Worker` there would push onto the victim's deque from the
    /// thief's thread, violating the Chase–Lev owner-only contract.
    fn fib(pool: &Pool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let w = Worker::current_in(pool).expect("fib must run on a pool worker");
        let (a, b) = w.join(|| fib(pool, n - 1), || fib(pool, n - 2));
        a + b
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    /// A fork tree whose leaves do real sequential work *and yield the CPU once*: on
    /// single-core machines (CI containers often have one) a fast owner can otherwise
    /// finish an entire run inside one OS timeslice, so the thief threads are never
    /// scheduled and no steal can be observed. The yield hands them a slice while the
    /// owner's deque is full of pending right branches.
    fn steal_prone_tree(pool: &Pool, depth: usize) -> u64 {
        if depth == 0 {
            let v = std::hint::black_box(fib_seq(18));
            std::thread::yield_now();
            return v % 2;
        }
        let w = Worker::current_in(pool).expect("on a pool worker");
        let (a, b) = w.join(
            || steal_prone_tree(pool, depth - 1),
            || steal_prone_tree(pool, depth - 1),
        );
        a + b
    }

    #[test]
    fn run_returns_result() {
        let pool = Pool::new(2);
        let r = pool.run(|_| 41 + 1);
        assert_eq!(r, 42);
    }

    /// Regression: helper jobs still queued at shutdown must be executed (and
    /// freed) — by a worker on its way out or by the drop drain — exactly once,
    /// and the backlog bound they occupied must be returned: the counter reads
    /// zero afterwards, never a stale positive that surviving pool-state clones
    /// would mistake for a full backlog.
    #[test]
    fn shutdown_drain_retires_stale_helper_jobs() {
        let pool = Pool::new(1);
        let inner = Arc::clone(&pool.inner);
        let ran = Arc::new(AtomicUsize::new(0));
        let started = std::sync::Barrier::new(2);
        let release = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let holder = scope.spawn(|| {
                pool.run(|_| {
                    started.wait();
                    release.wait();
                })
            });
            started.wait();
            // The only worker is pinned inside the job above, so every drafted
            // helper slot (backlog cap = 2 × pool size) stays on the injector.
            let counter = Arc::clone(&ran);
            pool.run_gc_team(
                4,
                Arc::new(move |slot| {
                    if slot > 0 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                }),
            );
            assert_eq!(
                inner.gc_helper_jobs.load(Ordering::Relaxed),
                2,
                "both backlog slots must be occupied while the worker is pinned"
            );
            release.wait();
            holder.join().unwrap();
        });
        drop(pool);
        assert_eq!(
            inner.gc_helper_jobs.load(Ordering::Relaxed),
            0,
            "shutdown must return every backlog slot"
        );
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "each stale helper job runs exactly once"
        );
    }

    #[test]
    fn nested_join_computes_fib() {
        let pool = Pool::new(4);
        let r = pool.run(|_| fib(&pool, 24));
        assert_eq!(r, 46_368);
    }

    #[test]
    fn join_on_single_worker_pool_still_completes() {
        let pool = Pool::new(1);
        let r = pool.run(|_| fib(&pool, 20));
        assert_eq!(r, 6_765);
    }

    #[test]
    fn many_sequential_runs_reuse_the_pool() {
        let pool = Pool::new(3);
        for i in 0..20u64 {
            let r = pool.run(|w| {
                let (a, b) = w.join(|| i * 2, || i * 3);
                a + b
            });
            assert_eq!(r, i * 5);
        }
    }

    #[test]
    fn join_results_come_from_the_right_branches() {
        let pool = Pool::new(4);
        let (a, b) = pool.run(|w| w.join(|| "left", || 7u32));
        assert_eq!(a, "left");
        assert_eq!(b, 7);
    }

    #[test]
    fn join_context_reports_unstolen_on_one_worker() {
        // On a single-worker pool nothing can be stolen, so every right branch must
        // see `stolen == false`.
        let pool = Pool::new(1);
        let stolen_seen = pool.run(|w| {
            let mut any = false;
            for _ in 0..100 {
                let (_, s) = w.join_context(|| (), |stolen| stolen);
                any |= s;
            }
            any
        });
        assert!(!stolen_seen);
    }

    #[test]
    fn join_context_observes_steals_under_parallel_slack() {
        // With several workers and real, yielding work in both branches, at least one
        // right branch should report having been stolen (retry to absorb scheduling
        // noise; the leaves yield so thieves run even on a single-core machine).
        fn probe(pool: &Pool, depth: usize) -> usize {
            if depth == 0 {
                std::hint::black_box(fib_seq(18));
                std::thread::yield_now();
                return 0;
            }
            let w = Worker::current_in(pool).expect("on a pool worker");
            let (a, b) = w.join_context(
                || probe(pool, depth - 1),
                |stolen| probe(pool, depth - 1) + usize::from(stolen),
            );
            a + b
        }
        let pool = Pool::new(4);
        for attempt in 0..10 {
            let stolen = pool.run(|_| probe(&pool, 6));
            if stolen > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10 * attempt));
        }
        panic!("expected at least one stolen right branch across ten runs");
    }

    #[test]
    fn deep_unbalanced_join_tree() {
        // A degenerate chain of joins stresses the help-while-waiting path.
        fn chain(w: &Worker, depth: usize) -> usize {
            if depth == 0 {
                return 0;
            }
            let (a, b) = w.join(|| chain(w, depth - 1), || 1usize);
            a + b
        }
        let pool = Pool::new(4);
        let r = pool.run(|w| chain(w, 500));
        assert_eq!(r, 500);
    }

    #[test]
    fn steals_happen_with_multiple_workers() {
        // Steal counts depend on OS scheduling; under heavy load (e.g. the whole
        // workspace's tests running in parallel) a single attempt can legitimately see
        // none, so retry a few times before declaring the work-stealing path dead.
        let pool = Pool::new(4);
        for attempt in 0..10 {
            let r = pool.run(|_| steal_prone_tree(&pool, 6));
            assert_eq!(r, 0, "fib_seq(18) is even, so every leaf contributes 0");
            if pool.steal_count() > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10 * attempt));
        }
        panic!("expected at least one steal across ten runs");
    }

    #[test]
    fn steal_hook_fires_on_steals() {
        let pool = Pool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        pool.set_steal_hook(move |thief, victim| {
            assert_ne!(thief, victim);
            h2.fetch_add(1, Ordering::Relaxed);
        });
        for attempt in 0..10 {
            let r = pool.run(|_| steal_prone_tree(&pool, 6));
            assert_eq!(r, 0);
            let observed = hits.load(Ordering::Relaxed);
            if observed > 0 {
                assert_eq!(observed, pool.steal_count());
                return;
            }
            std::thread::sleep(Duration::from_millis(10 * attempt));
        }
        panic!("steal hook never fired");
    }

    #[test]
    fn panics_propagate_from_left_branch() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                let (_a, _b): ((), u32) = w.join(|| panic!("left boom"), || 3);
            })
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        assert_eq!(pool.run(|_| 5), 5);
    }

    #[test]
    fn panics_propagate_from_right_branch() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                let (_a, _b): (u32, ()) = w.join(|| 3, || panic!("right boom"));
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.run(|_| 6), 6);
    }

    #[test]
    fn both_branches_panic_left_payload_wins() {
        // First-panicking-branch-wins, deterministically: the left branch runs
        // first under work-first scheduling, so when both branches panic the
        // join must resume with the *left* payload (the right one is drained
        // and dropped).
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                let ((), ()) = w.join(|| panic!("left boom"), || panic!("right boom"));
            })
        }));
        let payload = result.expect_err("join with two panicking branches must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "left boom");
        assert_eq!(pool.run(|_| 7), 7);
    }

    #[test]
    fn panicking_left_branch_still_drains_right_sibling() {
        // A panic in one branch must not resume until the sibling has fully
        // completed: the sibling may borrow the joining frame (stolen StackJob),
        // so unwinding past it would be a use-after-free. Observable contract:
        // the right branch runs to completion on every iteration.
        let pool = Pool::new(2);
        let right_ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&right_ran);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(|w| {
                    let ((), ()) = w.join(
                        || panic!("left boom"),
                        || {
                            std::thread::yield_now();
                            c.fetch_add(1, Ordering::Relaxed);
                        },
                    );
                })
            }));
            assert!(result.is_err());
        }
        assert_eq!(
            right_ran.load(Ordering::Relaxed),
            50,
            "every right sibling must run to completion before the panic resumes"
        );
    }

    #[test]
    fn gc_helper_panic_is_contained_and_counted() {
        // A detached GC helper job that panics must be absorbed by the worker
        // shield (counted, backlog slot returned, worker thread survives) —
        // there is no joining frame to propagate it to.
        let pool = Pool::new(2);
        let inner = Arc::clone(&pool.inner);
        pool.run_gc_team(
            2,
            Arc::new(|slot| {
                if slot > 0 {
                    panic!("injected helper fault");
                }
            }),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (pool.sched_stats().worker_panics < 2
            || inner.gc_helper_jobs.load(Ordering::Relaxed) != 0)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.sched_stats().worker_panics, 2);
        assert_eq!(
            inner.gc_helper_jobs.load(Ordering::Relaxed),
            0,
            "panicked helpers must return their backlog slots"
        );
        // Both workers survived their helper's death: the pool still runs jobs.
        let r = pool.run(|w| {
            let (a, b) = w.join(|| 20u64, || 22u64);
            a + b
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn idle_hook_is_invoked() {
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        pool.set_idle_hook(move |_| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(hits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn replaced_idle_hook_is_picked_up_by_cached_workers() {
        let pool = Pool::new(2);
        let first = Arc::new(AtomicUsize::new(0));
        let second = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&first);
        pool.set_idle_hook(move |_| {
            f2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(30));
        let s2 = Arc::clone(&second);
        pool.set_idle_hook(move |_| {
            s2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(first.load(Ordering::Relaxed) > 0);
        assert!(
            second.load(Ordering::Relaxed) > 0,
            "epoch-cached workers must refresh to the replacement hook"
        );
    }

    #[test]
    fn workers_park_when_idle_and_wake_for_work() {
        let pool = Pool::new(3);
        // Give the workers time to burn through their spin budget and park.
        std::thread::sleep(Duration::from_millis(60));
        let parked = pool.sched_stats().parks;
        assert!(parked > 0, "idle workers should park, not busy-wait");
        // Parked workers must still pick work up promptly.
        let r = pool.run(|w| {
            let (a, b) = w.join(|| 20u64, || 22u64);
            a + b
        });
        assert_eq!(r, 42);
        assert!(pool.sched_stats().wakes > 0, "the push must wake a sleeper");
    }

    #[test]
    fn worker_identity_is_stable_within_a_task() {
        let pool = Pool::new(4);
        pool.run(|w| {
            let before = w.index();
            let (_, _) = w.join(|| (), || ());
            // The frame keeps running on the same worker after a join.
            assert_eq!(w.index(), before);
        });
    }
}
