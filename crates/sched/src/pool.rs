//! The worker pool and the work-first `join` primitive.

use crate::job::{erase_lifetime, JobCell};
use crate::queue::JobQueue;
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for a [`Pool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of worker threads. Must be at least 1.
    pub n_workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            n_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

type IdleHook = Arc<dyn Fn(usize) + Send + Sync>;

struct PoolInner {
    queues: Vec<JobQueue>,
    injector: JobQueue,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    idle_hook: Mutex<Option<IdleHook>>,
    live_workers: AtomicUsize,
    steals: AtomicUsize,
}

impl PoolInner {
    fn notify_all(&self) {
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    /// Steals a job from the injector or from any worker queue other than `me`.
    fn steal_any(&self, me: usize) -> Option<Arc<JobCell>> {
        if let Some(j) = self.injector.steal() {
            return Some(j);
        }
        let n = self.queues.len();
        for k in 1..=n {
            let victim = (me + k) % n;
            if victim == me {
                continue;
            }
            if let Some(j) = self.queues[victim].steal() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(j);
            }
        }
        None
    }

    fn idle_hook(&self) -> Option<IdleHook> {
        self.idle_hook.lock().clone()
    }
}

thread_local! {
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Encodes the pool identity + worker index in the TLS slot. The pool identity is the
/// address of its `PoolInner`, which is stable for the pool's lifetime.
fn set_current_worker(pool: &Arc<PoolInner>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(pool) as usize, index))));
}

fn clear_current_worker() {
    CURRENT_WORKER.with(|c| c.set(None));
}

/// A handle to the worker thread currently executing, used to fork new work.
#[derive(Clone)]
pub struct Worker {
    pool: Arc<PoolInner>,
    index: usize,
}

impl Worker {
    /// Index of this worker within its pool (`0 .. n_workers`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers in the pool this worker belongs to.
    pub fn pool_size(&self) -> usize {
        self.pool.queues.len()
    }

    /// The work-first fork/join primitive.
    ///
    /// Runs `fa` inline on the current worker while exposing `fb` to thieves. If nobody
    /// steals `fb`, the current worker pops it back and runs it itself (the common,
    /// cheap case the paper's scheduler optimizes for); if it was stolen, the worker
    /// *helps* — executing other local jobs or stealing elsewhere — until `fb`'s latch
    /// is set. Panics in either branch are re-raised here after both branches have
    /// finished, so the scheduler never leaks a running job that borrows a dead frame.
    pub fn join<RA, RB, FA, FB>(&self, fa: FA, fb: FB) -> (RA, RB)
    where
        FA: FnOnce() -> RA + Send,
        FB: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let result_b: Mutex<Option<std::thread::Result<RB>>> = Mutex::new(None);
        let job = {
            let slot = &result_b;
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(fb));
                *slot.lock() = Some(r);
            });
            // SAFETY: `job` captures `slot`, a borrow of this frame. We do not return
            // from `join` (even on panic of `fa`) until the job's latch is set or the
            // job has been popped back un-stolen and executed inline, so the borrow
            // outlives every execution of the closure.
            JobCell::new(unsafe { erase_lifetime(f) })
        };
        self.pool.queues[self.index].push(Arc::clone(&job));
        // Wake an idle worker: there is stealable work now.
        self.pool.notify_all();

        let result_a = catch_unwind(AssertUnwindSafe(fa));

        // Retrieve the right branch: pop it back if still local, otherwise help until
        // the thief finishes it.
        while !job.is_done() {
            if let Some(j) = self.pool.queues[self.index].pop() {
                // Either our own right branch or a job pushed by a nested join we are
                // helping with; both are safe and useful to run here.
                j.execute();
                if Arc::ptr_eq(&j, &job) {
                    break;
                }
            } else if let Some(j) = self.pool.steal_any(self.index) {
                j.execute();
            } else {
                // Nothing to help with. Give the idle hook a chance to run — the
                // stop-the-world baseline uses it to park waiting workers at a
                // safepoint so a pending collection can proceed — then yield.
                if let Some(hook) = self.pool.idle_hook() {
                    hook(self.index);
                }
                std::thread::yield_now();
            }
        }
        debug_assert!(job.is_done());

        let rb = result_b
            .lock()
            .take()
            .expect("right branch completed without storing a result");
        match (result_a, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) => resume_unwind(p),
            (Ok(_), Err(p)) => resume_unwind(p),
        }
    }

    /// The worker the calling thread is running on, if it is a pool worker.
    pub fn current_in(pool: &Pool) -> Option<Worker> {
        CURRENT_WORKER
            .with(|c| c.get())
            .and_then(|(pool_id, index)| {
                if pool_id == Arc::as_ptr(&pool.inner) as usize {
                    Some(Worker {
                        pool: Arc::clone(&pool.inner),
                        index,
                    })
                } else {
                    None
                }
            })
    }
}

/// A pool of worker threads executing fork/join tasks.
pub struct Pool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `n_workers` worker threads.
    pub fn new(n_workers: usize) -> Pool {
        Self::with_config(PoolConfig { n_workers })
    }

    /// Spawns a pool from a [`PoolConfig`].
    pub fn with_config(config: PoolConfig) -> Pool {
        let n = config.n_workers.max(1);
        let inner = Arc::new(PoolInner {
            queues: (0..n).map(|_| JobQueue::new()).collect(),
            injector: JobQueue::new(),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle_hook: Mutex::new(None),
            live_workers: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hh-worker-{index}"))
                    .spawn(move || worker_loop(inner, index))
                    .expect("failed to spawn worker thread"),
            );
        }
        Pool { inner, handles }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Total number of successful steals so far (scheduler statistic).
    pub fn steal_count(&self) -> usize {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// Installs a hook called by idle workers between steal attempts. The stop-the-world
    /// baseline uses this to park idle workers at safepoints during a collection.
    pub fn set_idle_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        *self.inner.idle_hook.lock() = Some(Arc::new(hook));
    }

    /// Runs `f` on some worker thread and blocks the calling (external) thread until it
    /// finishes, returning its result. Panics in `f` are propagated.
    ///
    /// Must not be called from inside the pool's own workers (use [`Worker::join`] for
    /// nested parallelism instead).
    pub fn run<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&Worker) -> R + Send,
    {
        assert!(
            Worker::current_in(self).is_none(),
            "Pool::run called from inside the pool; use Worker::join for nested work"
        );
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let inner = &self.inner;
        let job = {
            let slot = &result;
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let worker = CURRENT_WORKER.with(|c| c.get()).map(|(_, index)| Worker {
                    pool: Arc::clone(inner),
                    index,
                });
                let worker = worker.expect("root job executed off-pool");
                let r = catch_unwind(AssertUnwindSafe(|| f(&worker)));
                *slot.lock() = Some(r);
            });
            // SAFETY: we block on `wait_blocking` below until the job has executed, so
            // the borrows of `result` and `inner` outlive the closure's execution.
            JobCell::new(unsafe { erase_lifetime(f) })
        };
        self.inner.injector.push(Arc::clone(&job));
        self.inner.notify_all();
        job.wait_blocking();
        let outcome = result
            .lock()
            .take()
            .expect("root job completed without result");
        match outcome {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(pool: Arc<PoolInner>, index: usize) {
    set_current_worker(&pool, index);
    pool.live_workers.fetch_add(1, Ordering::Relaxed);
    loop {
        let job = pool.queues[index].pop().or_else(|| pool.steal_any(index));
        match job {
            Some(j) => j.execute(),
            None => {
                if pool.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if let Some(hook) = pool.idle_hook() {
                    hook(index);
                }
                let mut guard = pool.idle_lock.lock();
                // Re-check for work under the lock to avoid missed wakeups.
                if pool.injector.is_empty() && pool.shutdown.load(Ordering::Acquire) {
                    break;
                }
                pool.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }
    pool.live_workers.fetch_sub(1, Ordering::Relaxed);
    clear_current_worker();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(w: &Worker, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let (a, b) = w.join(|| fib(w, n - 1), || fib(w, n - 2));
        a + b
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    #[test]
    fn run_returns_result() {
        let pool = Pool::new(2);
        let r = pool.run(|_| 41 + 1);
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_join_computes_fib() {
        let pool = Pool::new(4);
        let r = pool.run(|w| fib(w, 24));
        assert_eq!(r, 46_368);
    }

    #[test]
    fn join_on_single_worker_pool_still_completes() {
        let pool = Pool::new(1);
        let r = pool.run(|w| fib(w, 20));
        assert_eq!(r, 6_765);
    }

    #[test]
    fn many_sequential_runs_reuse_the_pool() {
        let pool = Pool::new(3);
        for i in 0..20u64 {
            let r = pool.run(|w| {
                let (a, b) = w.join(|| i * 2, || i * 3);
                a + b
            });
            assert_eq!(r, i * 5);
        }
    }

    #[test]
    fn join_results_come_from_the_right_branches() {
        let pool = Pool::new(4);
        let (a, b) = pool.run(|w| w.join(|| "left", || 7u32));
        assert_eq!(a, "left");
        assert_eq!(b, 7);
    }

    #[test]
    fn deep_unbalanced_join_tree() {
        // A degenerate chain of joins stresses the help-while-waiting path.
        fn chain(w: &Worker, depth: usize) -> usize {
            if depth == 0 {
                return 0;
            }
            let (a, b) = w.join(|| chain(w, depth - 1), || 1usize);
            a + b
        }
        let pool = Pool::new(4);
        let r = pool.run(|w| chain(w, 500));
        assert_eq!(r, 500);
    }

    #[test]
    fn steals_happen_with_multiple_workers() {
        // Steal counts depend on OS scheduling; under heavy load (e.g. the whole
        // workspace's tests running in parallel) a single attempt can legitimately see
        // none, so retry a few times before declaring the work-stealing path dead.
        let pool = Pool::new(4);
        for attempt in 0..10 {
            let r = pool.run(|w| fib(w, 27));
            assert_eq!(r, 196_418);
            if pool.steal_count() > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10 * attempt));
        }
        panic!("expected at least one steal across ten runs");
    }

    #[test]
    fn panics_propagate_from_left_branch() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                let (_a, _b): ((), u32) = w.join(|| panic!("left boom"), || 3);
            })
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        assert_eq!(pool.run(|_| 5), 5);
    }

    #[test]
    fn panics_propagate_from_right_branch() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                let (_a, _b): (u32, ()) = w.join(|| 3, || panic!("right boom"));
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.run(|_| 6), 6);
    }

    #[test]
    fn idle_hook_is_invoked() {
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        pool.set_idle_hook(move |_| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(hits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn worker_identity_is_stable_within_a_task() {
        let pool = Pool::new(4);
        pool.run(|w| {
            let before = w.index();
            let (_, _) = w.join(|| (), || ());
            // The frame keeps running on the same worker after a join.
            assert_eq!(w.index(), before);
        });
    }
}
