//! The shared evacuation engine (GC v3) — **one** copy of the span pack/steal
//! loop, the team-member body, and the idle-termination protocol, consumed by
//! both the hierarchical collector (`hh-runtime`'s `collect_zone`) and the flat
//! baseline collector (`hh-baselines`' `par_semispace_collect`).
//!
//! GC v2 (PR 5) grew this machinery twice — once per collector — and its
//! trigger-preregistration race had to be fixed in both copies. The engine
//! factors the duplicated ~1.7k lines down to one parameterized implementation:
//! an [`EvacZone`] maps *zone slots* (the `u16` carried by from-space chunk
//! tags, see [`hh_objmodel::ChunkGcState`]) to to-space allocation — per-heap
//! slots for the hierarchical runtime, a single slot for the flat baselines.
//! Everything else is identical between the two collectors and lives here:
//!
//! * **per-member to-space cursors** — each team member bump-allocates copies
//!   into private chunks ([`EvacZone::alloc_chunk`]) which the engine stamps
//!   `ToSpace` for this collection's epoch, so membership tests stay one atomic
//!   chunk-metadata load;
//! * **scan blocks** — contiguous spans of fully written copies, published on a
//!   per-member Chase–Lev [`SpanDeque`] once [`SCAN_BLOCK_WORDS`] accumulate;
//!   idle members steal blocks from busy ones, wavefront-style;
//! * **the CAS forwarding race** — concurrent members (or mutators, below)
//!   racing to evacuate one object resolve through
//!   [`hh_objmodel::ObjView::try_set_fwd`]; the loser retags its copy as an
//!   opaque filler and adopts the winner's;
//! * **idle-based termination** — [`TeamSync`]: all registered members idle ∧
//!   all deques empty ⇒ no work can ever appear again.
//!
//! ## Two drive modes
//!
//! **Synchronous team** (GC v2's shape, ablation A6 of the hierarchical
//! runtime): the triggering thread runs [`EvacEngine::run_trigger`] while
//! drafted helpers run [`EvacEngine::run_helper`]; the trigger then
//! [`EvacEngine::await_team`]s and [`EvacEngine::merge`]s. Mutators are
//! quiescent throughout.
//!
//! **Incremental / mutator-concurrent** (GC v3): the initial pause only seeds
//! the roots ([`EvacEngine::seed_roots`]); mutators then resume against the
//! still-unscanned wavefront. Three engine entry points keep that sound:
//!
//! * [`EvacEngine::barrier_forward`] — the mutator write barrier: before any
//!   field write touching a FROM-tagged chunk, the object (and, for pointer
//!   stores, the value) is forwarded on access. This closes the lost-update
//!   race of concurrent evacuation (mutator writes from-space original after
//!   the collector copied its fields but before the forwarding install).
//! * [`EvacEngine::drain_increment`] — a bounded slice of the scan wavefront,
//!   run at mutator safepoints and by idle pool workers. The pause cost of any
//!   single call is ~one scan block (plus at most one oversized object).
//! * [`EvacEngine::finalize`] — retires the collection: closes increments,
//!   drains the residue, and waits out in-flight barrier operations before the
//!   caller merges and retires the from-space. The quiescence handshake is a
//!   Dekker-style store/load protocol on two `SeqCst` flags (`closed`,
//!   `retired`) against the in-flight counters; see the method docs.
//!
//! Scanners in mutator-concurrent mode rewrite pointer fields by **CAS**
//! ([`hh_objmodel::ObjView::cas_field_ptr`]) instead of a plain store: a
//! concurrent mutator pointer store must win (its value was pre-forwarded by
//! the write barrier), so a failed CAS is skipped, never retried.
//!
//! DESIGN.md §9 (team protocol) and §11 (incremental protocol) give the full
//! correctness arguments.

use crate::queue::{Span, SpanDeque};
use crate::team::TeamSync;
use hh_objmodel::{Chunk, ChunkGcState, ChunkId, ChunkStore, Header, ObjPtr, ObjView, OFF_FIELDS};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A member flushes the unscanned tail of its current to-space chunk to its
/// deque (making it stealable) whenever it grows past this many words. Blocks
/// therefore carry at least this much scan work (except final tails), keeping
/// steal traffic amortized over hundreds of objects. It is also the unit of
/// incremental draining: one [`EvacEngine::drain_increment`] budget is
/// expressed in multiples of this.
pub const SCAN_BLOCK_WORDS: u32 = 512;

/// Flag bit (in a span's second word) marking a **raw pointer-range** span:
/// `start..end` are word offsets of consecutive pointer *fields* of one large
/// object, not an object-header walk. See [`pack_raw_span`].
const SPAN_RAW_PTRS: u64 = 1 << 63;

#[inline]
fn pack_span(chunk: ChunkId, start: u32, end: u32) -> Span {
    (((chunk.0 as u64) << 32) | start as u64, end as u64)
}

/// Packs a raw pointer-range span. Ordinary spans are parsed by walking object
/// headers from `start`, which forces a whole object to be scanned by one
/// party in one go — unacceptable for a multi-thousand-word array inside a
/// bounded increment. An object's pointer fields are a contiguous word prefix
/// (`OFF_FIELDS .. OFF_FIELDS + n_ptr`), so a large object's scan work is
/// instead published as raw ranges over that prefix, splittable at *any* word:
/// increments honor their budget exactly and team members parallelize the
/// scan of a single huge object.
#[inline]
fn pack_raw_span(chunk: ChunkId, start: u32, end: u32) -> Span {
    (
        ((chunk.0 as u64) << 32) | start as u64,
        end as u64 | SPAN_RAW_PTRS,
    )
}

#[inline]
fn span_is_raw(span: Span) -> bool {
    span.1 & SPAN_RAW_PTRS != 0
}

#[inline]
fn unpack_span(span: Span) -> (ChunkId, u32, u32) {
    (ChunkId((span.0 >> 32) as u32), span.0 as u32, span.1 as u32)
}

/// The slot-to-heap mapping of one collection zone: how to-space memory is
/// allocated for each zone slot (the `u16` stamped into from-space chunk tags).
///
/// The hierarchical runtime implements this with one slot per zone heap (so a
/// subtree collection preserves each survivor's placement in the hierarchy);
/// the flat baselines implement it with a single slot backed by one global
/// heap. The engine stamps every returned chunk `ToSpace` for the collection's
/// epoch, so implementations only allocate.
pub trait EvacZone: Send + Sync {
    /// Number of zone slots (heaps being evacuated). From-space tags carry
    /// slots in `0..n_slots()`.
    fn n_slots(&self) -> usize;

    /// Allocates a dedicated large-object chunk for `header` on behalf of
    /// `slot`, returning the chunk and the object pointer placed in it.
    fn alloc_dedicated(&self, slot: u16, header: Header) -> (Arc<Chunk>, ObjPtr);

    /// Allocates a fresh to-space bump chunk of at least `min_words` usable
    /// words on behalf of `slot`.
    fn alloc_chunk(&self, slot: u16, min_words: usize) -> Arc<Chunk>;
}

/// One member's private to-space state for one zone slot.
#[derive(Default)]
struct ToCursor {
    /// Chunks this member allocated for the slot, in allocation order.
    chunks: Vec<ChunkId>,
    /// Current bump chunk, held by `Arc` so the per-copy path performs no
    /// chunk-table lookup.
    current: Option<Arc<Chunk>>,
    /// End offset of the last fully written copy in `current`. Everything
    /// below it is walkable: completed survivors or scrubbed race-loser
    /// fillers.
    filled: u32,
    /// Offset up to which spans of `current` have been handed out for
    /// scanning.
    scanned: u32,
    /// Words occupied in this to-space (survivors plus race-loser fillers) —
    /// the slot's post-collection allocation volume.
    words: usize,
}

/// One member's collection state: per-slot to-space cursors plus statistics.
#[derive(Default)]
struct EvacWorker {
    tos: Vec<ToCursor>,
    /// Words of survivors this member won (excludes race-loser fillers).
    copied_words: u64,
    /// Words of large objects this member promoted in place (dedicated chunks
    /// retagged to-space instead of copied).
    inplace_words: u64,
    /// Words wasted on evacuation-race losses.
    waste_words: u64,
    /// Scan blocks this member stole from other members' deques.
    steal_blocks: u64,
    /// Xorshift state for randomized steal-victim order.
    rng: u64,
}

/// Merged result of one evacuation: per-slot chunk lists plus statistics.
pub struct EvacOutcome {
    /// Per zone slot: the to-space chunk list (a partially filled bump chunk
    /// last, so heaps resume allocation from it) and the words occupying it.
    pub per_slot: Vec<(Vec<ChunkId>, usize)>,
    /// Words of live data copied (survivors; excludes evacuation-race waste).
    pub copied_words: u64,
    /// Words of live large objects promoted in place (their dedicated chunks
    /// were retagged to-space and handed over wholesale, never copied).
    pub inplace_words: u64,
    /// Words wasted on evacuation-race losses (opaque fillers).
    pub waste_words: u64,
    /// Total words occupying the to-spaces (`copied + waste`).
    pub occupied_words: u64,
    /// Scan blocks stolen between members (0 for a solo collection).
    pub steal_blocks: u64,
}

/// The evacuation engine: shared state of one collection, driven either by a
/// synchronous team or incrementally under running mutators (see the module
/// docs).
pub struct EvacEngine<Z: EvacZone> {
    zone: Z,
    store: Arc<ChunkStore>,
    /// This collection's epoch (chunk tags are tested against it).
    epoch: u64,
    /// One scan-block deque per slot (owner pushes/pops, others steal). The
    /// barrier slot's deque is owned by whichever thread holds the barrier
    /// slot's mutex — lock hand-off gives successive owners the release/
    /// acquire edge the deque's owner-side contract needs.
    deques: Vec<SpanDeque>,
    /// One private state per slot (locked by its member for a synchronous
    /// collection; locked per-operation by incremental drains and barriers).
    slots: Vec<Mutex<EvacWorker>>,
    sync: TeamSync,
    /// Set once every root has been forwarded; checked before merging to catch
    /// any regression of the trigger pre-registration (a team terminating
    /// without the trigger would retire the zone with all live data).
    roots_seeded: AtomicBool,
    /// Install forwarding by CAS (more than one evacuating party); plain store
    /// when single-threaded.
    concurrent: bool,
    /// Mutators run during the collection: scanners must CAS pointer rewrites
    /// and the barrier/drain/finalize surface is live.
    mutator_concurrent: bool,
    /// Stops new [`EvacEngine::drain_increment`] slices (finalize has taken
    /// over the remaining wavefront).
    closed: AtomicBool,
    /// Stops new [`EvacEngine::barrier_forward`] operations (the collection is
    /// complete; every reachable from-space object carries a forwarding
    /// pointer).
    retired: AtomicBool,
    /// In-flight [`EvacEngine::drain_increment`] calls.
    drain_inflight: AtomicUsize,
    /// In-flight [`EvacEngine::barrier_forward`] calls.
    barrier_inflight: AtomicUsize,
}

impl<Z: EvacZone> EvacEngine<Z> {
    /// Creates the engine for one collection over `zone`.
    ///
    /// `members` is the team size (slot 0 is the trigger); a
    /// `mutator_concurrent` engine gets one extra hidden slot through which
    /// [`EvacEngine::barrier_forward`] evacuates. The trigger is
    /// **pre-registered** ([`TeamSync::with_trigger`]): helper jobs are
    /// published before the trigger runs its member body, and a fast helper
    /// alone must not be able to terminate the team before the roots have
    /// seeded the wavefront.
    pub fn new(
        zone: Z,
        store: Arc<ChunkStore>,
        epoch: u64,
        members: usize,
        mutator_concurrent: bool,
    ) -> EvacEngine<Z> {
        let n_slots = members + usize::from(mutator_concurrent);
        EvacEngine {
            zone,
            store,
            epoch,
            deques: (0..n_slots).map(|_| SpanDeque::new()).collect(),
            slots: (0..n_slots)
                .map(|_| Mutex::new(EvacWorker::default()))
                .collect(),
            sync: TeamSync::with_trigger(),
            roots_seeded: AtomicBool::new(false),
            concurrent: members > 1 || mutator_concurrent,
            mutator_concurrent,
            closed: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            drain_inflight: AtomicUsize::new(0),
            barrier_inflight: AtomicUsize::new(0),
        }
    }

    /// This collection's epoch (callers test chunk tags against it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of team member slots (excluding the hidden barrier slot).
    fn member_slots(&self) -> usize {
        self.slots.len() - usize::from(self.mutator_concurrent)
    }

    /// The hidden barrier slot's index.
    fn barrier_slot(&self) -> usize {
        debug_assert!(self.mutator_concurrent);
        self.slots.len() - 1
    }

    fn init_worker(&self, w: &mut EvacWorker, slot: usize) {
        w.tos.resize_with(self.zone.n_slots(), ToCursor::default);
        w.rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(slot as u64 + 1) | 1;
    }

    // --- The copy step (shared by every drive mode). -------------------------

    /// Allocates a copy of `header` in `w`'s to-space for zone slot `slot`,
    /// returning the pointer, the chunk it landed in, and whether that chunk is
    /// a dedicated large-object chunk. Mirrors the placement rules of heap
    /// allocation: large objects get dedicated chunks without displacing the
    /// bump chunk.
    fn alloc_to(
        &self,
        w: &mut EvacWorker,
        my_slot: usize,
        slot: u16,
        header: Header,
    ) -> (ObjPtr, Arc<Chunk>, bool) {
        let to = &mut w.tos[slot as usize];
        let size = header.size_words();
        to.words += size;
        if self.store.needs_dedicated_chunk(header) {
            let (chunk, ptr) = self.zone.alloc_dedicated(slot, header);
            chunk.set_gc_to_space(self.epoch, slot);
            to.chunks.push(chunk.id());
            return (ptr, chunk, true);
        }
        if let Some(cur) = &to.current {
            if let Some(ptr) = self.store.alloc_in_chunk_for_copy(cur, header) {
                return (ptr, Arc::clone(cur), false);
            }
        }
        // Current chunk absent or full: open a new one. Flush the old chunk's
        // unscanned tail first — `take_tail` only looks at the *current* chunk,
        // so scan work left behind in a retired cursor would otherwise be lost.
        if let Some(prev) = &to.current {
            if to.filled > to.scanned {
                self.deques[my_slot].push(pack_span(prev.id(), to.scanned, to.filled));
            }
        }
        let chunk = self.zone.alloc_chunk(slot, size);
        chunk.set_gc_to_space(self.epoch, slot);
        to.chunks.push(chunk.id());
        to.current = Some(Arc::clone(&chunk));
        to.filled = 0;
        to.scanned = 0;
        let ptr = self
            .store
            .alloc_in_chunk_for_copy(&chunk, header)
            .expect("fresh to-space chunk too small for the object it was sized for");
        (ptr, chunk, false)
    }

    /// Publishes the pointer-field prefix of a large object (one alone in its
    /// dedicated chunk) as raw pointer-range blocks of at most
    /// [`SCAN_BLOCK_WORDS`] each, so no single increment or steal swallows the
    /// whole object.
    fn push_ptr_prefix_spans(&self, my_slot: usize, obj: ObjPtr, n_ptr: usize) {
        let first = obj.offset() + OFF_FIELDS as u32;
        let end = first + n_ptr as u32;
        let mut off = first;
        while off < end {
            let stop = (off + SCAN_BLOCK_WORDS).min(end);
            self.deques[my_slot].push(pack_raw_span(obj.chunk(), off, stop));
            off = stop;
        }
    }

    /// Records a completed (fully written, forwarding-resolved) copy: advances
    /// the member's filled boundary and publishes scan blocks. Called for
    /// winners *and* scrubbed race losers — both are walkable and must be
    /// covered by some span so block walks stay contiguous. `dedicated` is
    /// `Some(n_ptr)` when the copy sits alone in a dedicated chunk (race
    /// losers pass `Some(0)` — a filler is never scanned).
    fn complete_copy(
        &self,
        w: &mut EvacWorker,
        my_slot: usize,
        heap_slot: u16,
        copy: ObjPtr,
        size: usize,
        dedicated: Option<usize>,
    ) {
        if let Some(n_ptr) = dedicated {
            // Dedicated chunks hold exactly one object; publish its pointer
            // prefix in bounded raw ranges.
            self.push_ptr_prefix_spans(my_slot, copy, n_ptr);
            return;
        }
        let to = &mut w.tos[heap_slot as usize];
        debug_assert_eq!(to.filled, copy.offset(), "out-of-order copy completion");
        to.filled = copy.offset() + size as u32;
        if to.filled - to.scanned >= SCAN_BLOCK_WORDS {
            let chunk = to.current.as_ref().expect("completing into no chunk").id();
            self.deques[my_slot].push(pack_span(chunk, to.scanned, to.filled));
            to.scanned = to.filled;
        }
    }

    /// `cheneyCopy` — the hash-free, race-tolerant step. Returns the relocated
    /// address of `obj` with respect to this collection.
    ///
    /// * a chunk tag of `ToSpace` identifies a copy made by this collection —
    ///   reuse it;
    /// * `Outside` identifies an object beyond the zone — an ancestor heap, a
    ///   copy made by an earlier *promotion* (reusing it eliminates the
    ///   duplicate left in the subtree), or, defensively, any unrelated heap;
    /// * `FromSpace(slot)` is live data of the zone: follow its forwarding
    ///   chain if one exists, otherwise evacuate it into `slot`'s to-space and
    ///   race to install the forwarding pointer.
    fn forward(&self, w: &mut EvacWorker, my_slot: usize, obj: ObjPtr) -> ObjPtr {
        if obj.is_null() {
            return ObjPtr::NULL;
        }
        let mut cur = obj;
        loop {
            let chunk = self.store.chunk(cur.chunk());
            let heap_slot = match chunk.gc_state(self.epoch) {
                // Case 1: already a to-space copy made by this collection.
                // Case 2: outside the collection zone.
                ChunkGcState::ToSpace(_) | ChunkGcState::Outside => return cur,
                ChunkGcState::FromSpace(slot) => slot,
            };
            let v = ObjView::new(chunk, cur.offset());
            // Follow forwarding chains (they may lead to a promotion copy above
            // us, to a to-space copy, or to another from-space object of the
            // zone).
            let fwd = v.fwd();
            if !fwd.is_null() {
                cur = fwd;
                continue;
            }
            // Case 3a: a live large object fills a dedicated chunk of its own
            // (the store's placement invariant for anything over the default
            // chunk size), so it can be transferred wholesale: retag the chunk
            // to-space and hand the object to the scan wavefront. This skips
            // both the copy and — the expensive part under running mutators —
            // a dedicated-chunk mint inside a bounded pause. The object never
            // moves, so no forwarding pointer is installed; the chunk-tag CAS
            // arbitrates racing evacuators, and a loser re-reads the tag as
            // `ToSpace` on its next loop iteration. Chunks already retired
            // (quarantine rescues) are excluded: their lifecycle belongs to
            // the store, so their objects are copied out as usual.
            let header = v.header();
            let size = header.size_words();
            if self.store.needs_dedicated_chunk(header) && !chunk.is_retired() {
                if chunk.try_gc_promote_in_place(self.epoch, heap_slot) {
                    // The retirement test above races with the store (a
                    // quarantine rescue may retire the chunk between the load
                    // and the CAS). Promoting a retired chunk in place would
                    // hand its id to the finalizer's adopt list while the
                    // store's reclamation also owns it — the same
                    // double-ownership shape as the end_run overlap race
                    // (DESIGN.md §11.5). Re-check after winning and revert.
                    if chunk.is_retired() {
                        chunk.set_gc_from_space(self.epoch, heap_slot);
                        continue;
                    }
                    let to = &mut w.tos[heap_slot as usize];
                    to.words += size;
                    to.chunks.push(cur.chunk());
                    w.inplace_words += size as u64;
                    self.push_ptr_prefix_spans(my_slot, cur, header.n_ptr());
                    return cur;
                }
                continue;
            }
            // Case 3b: live from-space object — evacuate it into its own slot's
            // to-space, then race to publish the copy.
            let (copy, copy_chunk, dedicated) = self.alloc_to(w, my_slot, heap_slot, header);
            let cv = ObjView::new(&copy_chunk, copy.offset());
            for f in 0..header.n_fields() {
                cv.set_field(f, v.field(f));
            }
            let won = if self.concurrent {
                v.try_set_fwd(copy).is_ok()
            } else {
                v.set_fwd(copy);
                true
            };
            if won {
                w.copied_words += size as u64;
                let ded = dedicated.then(|| header.n_ptr());
                self.complete_copy(w, my_slot, heap_slot, copy, size, ded);
                return copy;
            }
            // Another party won the race: our copy is unreachable. Retag it as
            // an opaque filler so scans and invariant walks never interpret its
            // fields as pointers, keep it covered by the span (walkers must be
            // able to step over it), and adopt the winner's copy.
            cv.retag_as_filler();
            w.waste_words += size as u64;
            self.complete_copy(w, my_slot, heap_slot, copy, size, dedicated.then_some(0));
            cur = v.fwd();
            debug_assert!(!cur.is_null(), "lost the forwarding race to a NULL");
        }
    }

    /// Walks every object of a scan block, forwarding its pointer fields. The
    /// block covers only fully written copies (winners and scrubbed fillers),
    /// starts and ends at object boundaries, and is owned exclusively by this
    /// member (deque removal is exactly-once).
    ///
    /// Under quiescent mutators (synchronous mode) plain field stores suffice.
    /// Under running mutators the rewrite is a CAS: a concurrent mutator
    /// pointer store must win — its value was pre-forwarded by the write
    /// barrier — so a failed CAS is skipped, never retried.
    fn scan_span(&self, w: &mut EvacWorker, my_slot: usize, span: Span) {
        let mut budget = usize::MAX;
        self.scan_span_bounded(w, my_slot, span, &mut budget);
    }

    /// As [`EvacEngine::scan_span`], but stops at an object boundary once
    /// `budget` words have been walked, pushing the span's remainder back onto
    /// this member's deque. A single call therefore scans at most `budget`
    /// words plus one oversized object — and large objects never appear whole:
    /// anything over the default chunk size is published as raw pointer-range
    /// spans (see [`pack_raw_span`]), which split at any word, so those honor
    /// the budget exactly.
    fn scan_span_bounded(
        &self,
        w: &mut EvacWorker,
        my_slot: usize,
        span: Span,
        budget: &mut usize,
    ) {
        let (chunk_id, start, end) = unpack_span(span);
        let chunk = Arc::clone(self.store.chunk(chunk_id));
        if span_is_raw(span) {
            // Consecutive pointer fields of one large object: forward each
            // word, CAS-rewriting under running mutators exactly as the
            // object walk below does.
            let mut off = start;
            while off < end {
                if *budget == 0 {
                    self.deques[my_slot].push(pack_raw_span(chunk_id, off, end));
                    return;
                }
                let word = chunk.word(off as usize);
                let old = ObjPtr::from_bits(word.load(Ordering::Acquire));
                let new = self.forward(w, my_slot, old);
                if new != old {
                    if self.mutator_concurrent {
                        let _ = word.compare_exchange(
                            old.to_bits(),
                            new.to_bits(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                    } else {
                        word.store(new.to_bits(), Ordering::Release);
                    }
                }
                off += 1;
                *budget -= 1;
            }
            return;
        }
        let mut off = start;
        while off < end {
            if *budget == 0 {
                // Out of budget mid-span: hand the rest back as a fresh block.
                self.deques[my_slot].push(pack_span(chunk_id, off, end));
                return;
            }
            let v = ObjView::new(&chunk, off);
            let header = v.header();
            for f in 0..header.n_ptr() {
                let old = v.field_ptr(f);
                let new = self.forward(w, my_slot, old);
                if new != old {
                    if self.mutator_concurrent {
                        v.cas_field_ptr(f, old, new);
                    } else {
                        v.set_field_ptr(f, new);
                    }
                }
            }
            let size = header.size_words() as u32;
            off += size;
            *budget = budget.saturating_sub(size as usize);
        }
    }

    /// Claims the unscanned tail of one of this member's own current chunks,
    /// if any.
    fn take_tail(w: &mut EvacWorker) -> Option<Span> {
        for to in w.tos.iter_mut() {
            if to.filled > to.scanned {
                let chunk = to.current.as_ref().expect("filled words without a chunk");
                let span = pack_span(chunk.id(), to.scanned, to.filled);
                to.scanned = to.filled;
                return Some(span);
            }
        }
        None
    }

    /// Flushes every unscanned tail of `w` onto this member's deque, making
    /// the work visible to other parties. Incremental drains and barriers must
    /// do this before releasing their slot: the slot may next be claimed by a
    /// different thread (or inspected by finalize), and tails are otherwise
    /// invisible.
    fn flush_tails(&self, w: &mut EvacWorker, my_slot: usize) {
        while let Some(span) = Self::take_tail(w) {
            self.deques[my_slot].push(span);
        }
    }

    /// Steals a scan block from another slot's deque, scanning victims from a
    /// random starting point.
    fn steal_span(&self, my_slot: usize, w: &mut EvacWorker) -> Option<Span> {
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        let mut x = w.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        w.rng = x;
        let start = (x % n as u64) as usize;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == my_slot {
                continue;
            }
            if let Some(span) = self.deques[victim].steal() {
                return Some(span);
            }
        }
        None
    }

    // --- Synchronous team mode. ----------------------------------------------

    /// The team-member body: process own blocks, then own tails, then steal;
    /// announce idle when nothing is visible and terminate when the whole team
    /// is idle with empty deques.
    fn member_loop(&self, w: &mut EvacWorker, slot: usize) {
        loop {
            if let Some(span) = self.deques[slot].pop() {
                self.scan_span(w, slot, span);
                continue;
            }
            if let Some(span) = Self::take_tail(w) {
                self.scan_span(w, slot, span);
                continue;
            }
            if let Some(span) = self.steal_span(slot, w) {
                w.steal_blocks += 1;
                self.scan_span(w, slot, span);
                continue;
            }
            // Nothing visible: announce idle and wait for either work or
            // termination.
            self.sync.enter_idle();
            let finished = loop {
                if self.sync.is_done() {
                    break true;
                }
                if self.deques.iter().any(|d| !d.is_empty()) {
                    self.sync.exit_idle();
                    break false;
                }
                if self.sync.all_idle() && self.deques.iter().all(|d| d.is_empty()) {
                    // Every member idle and no block queued: idle members
                    // create no work, so this state is stable — the collection
                    // is complete.
                    self.sync.finish();
                    break true;
                }
                std::thread::yield_now();
            };
            if finished {
                break;
            }
        }
    }

    /// Runs the triggering member (slot 0): seeds the roots through the
    /// supplied closure — which receives the engine's forward step and must
    /// apply it to every root — then works the wavefront to termination.
    ///
    /// The trigger is pre-registered and non-idle throughout seeding, so a
    /// fast helper that joins first and finds no work can never observe an
    /// all-idle team and finish the collection before the roots have seeded
    /// the wavefront.
    pub fn run_trigger(&self, seed: impl FnOnce(&mut dyn FnMut(ObjPtr) -> ObjPtr)) {
        // Depart on drop (unwind included): a trigger killed mid-collection
        // must still count as departed, or a later `await_team` caller would
        // spin forever on its registration.
        let _depart = self.sync.depart_on_drop();
        let mut w = self.slots[0].lock();
        self.init_worker(&mut w, 0);
        seed(&mut |p| self.forward(&mut w, 0, p));
        self.roots_seeded.store(true, Ordering::Release);
        self.member_loop(&mut w, 0);
    }

    /// Runs a drafted helper member. A helper arriving after the collection
    /// finished (stale injector job) registers nothing and returns
    /// immediately; a slot beyond the team size likewise bounces.
    pub fn run_helper(&self, slot: usize) {
        if slot == 0 || slot >= self.member_slots() {
            return;
        }
        if !self.sync.try_register() {
            return;
        }
        // As in `run_trigger`: a helper that panics out of its member loop
        // (contained by the pool's worker shield) must not leave a dangling
        // registration behind.
        let _depart = self.sync.depart_on_drop();
        let mut w = self.slots[slot].lock();
        self.init_worker(&mut w, slot);
        self.member_loop(&mut w, slot);
    }

    /// Blocks until every registered member has departed (only the triggering
    /// thread calls this, after its own member body returned). After this, all
    /// per-member state is owned by the caller again.
    pub fn await_team(&self) {
        self.sync.await_departures();
        debug_assert!(
            self.roots_seeded.load(Ordering::Acquire),
            "evacuation team finished without the trigger forwarding the roots"
        );
    }

    // --- Incremental / mutator-concurrent mode. ------------------------------

    /// Seeds the roots (the only stop-the-world work of an incremental
    /// collection): forwards every root through the supplied closure, then
    /// publishes the resulting scan blocks. Mutators may resume as soon as
    /// this returns; the remaining wavefront drains through
    /// [`EvacEngine::drain_increment`] / [`EvacEngine::barrier_forward`] /
    /// [`EvacEngine::finalize`].
    pub fn seed_roots(&self, seed: impl FnOnce(&mut dyn FnMut(ObjPtr) -> ObjPtr)) {
        debug_assert!(
            self.mutator_concurrent,
            "seed_roots on a synchronous engine"
        );
        let mut w = self.slots[0].lock();
        self.init_worker(&mut w, 0);
        seed(&mut |p| self.forward(&mut w, 0, p));
        // Publish the seeded tail: increments from any thread must see it.
        self.flush_tails(&mut w, 0);
        self.roots_seeded.store(true, Ordering::Release);
    }

    /// Drains up to `budget_words` of the remaining scan wavefront (plus at
    /// most one oversized object), on behalf of whichever member slot is free.
    /// Returns `true` if the caller observed the wavefront empty — a hint to
    /// attempt [`EvacEngine::finalize`]; the authoritative quiescence check
    /// lives there.
    ///
    /// Called from mutator safepoints and idle pool workers. If every slot is
    /// busy (other threads are draining) or finalize has closed the engine,
    /// the call is a no-op returning `false`.
    pub fn drain_increment(&self, budget_words: usize) -> bool {
        self.drain_inflight.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.drain_inflight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        let mut claimed = None;
        for slot in 0..self.member_slots() {
            if let Some(w) = self.slots[slot].try_lock() {
                claimed = Some((slot, w));
                break;
            }
        }
        let Some((slot, mut w)) = claimed else {
            self.drain_inflight.fetch_sub(1, Ordering::SeqCst);
            return false;
        };
        if w.tos.len() != self.zone.n_slots() {
            self.init_worker(&mut w, slot);
        }
        let mut budget = budget_words;
        let drained = loop {
            if budget == 0 {
                break false;
            }
            if let Some(span) = self.deques[slot].pop() {
                self.scan_span_bounded(&mut w, slot, span, &mut budget);
                continue;
            }
            if let Some(span) = Self::take_tail(&mut w) {
                self.scan_span_bounded(&mut w, slot, span, &mut budget);
                continue;
            }
            if let Some(span) = self.steal_span(slot, &mut w) {
                w.steal_blocks += 1;
                self.scan_span_bounded(&mut w, slot, span, &mut budget);
                continue;
            }
            break true;
        };
        // The slot may be claimed by a different thread next: leave no work
        // hidden in tails.
        self.flush_tails(&mut w, slot);
        drop(w);
        self.drain_inflight.fetch_sub(1, Ordering::SeqCst);
        drained
    }

    /// The mutator write barrier: forwards `obj` on access (installing its
    /// forwarding pointer if this is the first touch), returning the relocated
    /// address — or `None` if the collection has already been retired, in
    /// which case the caller falls back to the ordinary forwarding-chain
    /// resolution (every reachable from-space object carries one by then).
    ///
    /// The in-flight counter and the `retired` flag form a Dekker-style
    /// handshake with [`EvacEngine::finalize`]: an operation that saw
    /// `retired == false` is visible in `barrier_inflight` to the finalizer's
    /// subsequent wait, so the engine is never dismantled under a live
    /// barrier operation.
    pub fn barrier_forward(&self, obj: ObjPtr) -> Option<ObjPtr> {
        self.barrier_inflight.fetch_add(1, Ordering::SeqCst);
        if self.retired.load(Ordering::SeqCst) {
            self.barrier_inflight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        let slot = self.barrier_slot();
        let mut w = self.slots[slot].lock();
        if w.tos.len() != self.zone.n_slots() {
            self.init_worker(&mut w, slot);
        }
        let res = self.forward(&mut w, slot, obj);
        // Flush after *every* operation: the barrier slot runs no member loop,
        // so an unflushed tail here would never be scanned.
        self.flush_tails(&mut w, slot);
        drop(w);
        if self.closed.load(Ordering::SeqCst) {
            // Finalize is draining toward quiescence: consume our own spill so
            // an operation that raced past finalize's empty-deques check
            // leaves no orphaned work behind its inflight decrement.
            self.drain_own(slot);
        }
        self.barrier_inflight.fetch_sub(1, Ordering::SeqCst);
        Some(res)
    }

    /// Drains this slot's own deque (and any tails its scans spill) to empty.
    fn drain_own(&self, slot: usize) {
        let mut w = self.slots[slot].lock();
        loop {
            if let Some(span) = self.deques[slot].pop() {
                self.scan_span(&mut w, slot, span);
                continue;
            }
            if let Some(span) = Self::take_tail(&mut w) {
                self.scan_span(&mut w, slot, span);
                continue;
            }
            break;
        }
    }

    /// Solo-drains the whole wavefront (own deque, tails, steals) on slot 0.
    fn drain_solo(&self) {
        let mut w = self.slots[0].lock();
        if w.tos.len() != self.zone.n_slots() {
            self.init_worker(&mut w, 0);
        }
        loop {
            if let Some(span) = self.deques[0].pop() {
                self.scan_span(&mut w, 0, span);
                continue;
            }
            if let Some(span) = Self::take_tail(&mut w) {
                self.scan_span(&mut w, 0, span);
                continue;
            }
            if let Some(span) = self.steal_span(0, &mut w) {
                w.steal_blocks += 1;
                self.scan_span(&mut w, 0, span);
                continue;
            }
            break;
        }
        self.flush_tails(&mut w, 0);
    }

    /// Retires an incremental collection: drains the remaining wavefront to
    /// empty (with the write barrier still active — disabling it any earlier
    /// would reopen the lost-update race for the residue), then quiesces the
    /// barrier surface. On return the engine holds the complete evacuation:
    /// every reachable from-space object carries a forwarding pointer, no
    /// operation is in flight, and the caller may [`EvacEngine::merge`] and
    /// retire the from-space.
    ///
    /// Quiescence handshake (all `SeqCst`):
    /// 1. `closed := true`; wait `drain_inflight == 0`. New drain increments
    ///    bounce; in-flight ones flushed their tails before decrementing, so
    ///    their work is visible in the deques.
    /// 2. Loop: solo-drain; stop once *deques empty* then
    ///    `barrier_inflight == 0` (in that order). A barrier operation that
    ///    decremented before the counter read either flushed its spill before
    ///    our deque check (we saw it) or observed `closed` and self-drained
    ///    ([`EvacEngine::barrier_forward`]); one still in flight holds the
    ///    counter up. Either way no orphaned work can hide behind the
    ///    observation.
    /// 3. `retired := true`; wait `barrier_inflight == 0` again (Dekker: an
    ///    operation that saw `retired == false` is counted), then mop up
    ///    defensively. Post-quiescence operations find forwarding chains
    ///    already installed — the wavefront was complete — so they create no
    ///    new work.
    pub fn finalize(&self) {
        debug_assert!(self.mutator_concurrent, "finalize on a synchronous engine");
        self.closed.store(true, Ordering::SeqCst);
        while self.drain_inflight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        loop {
            self.drain_solo();
            if self.deques.iter().all(|d| d.is_empty())
                && self.barrier_inflight.load(Ordering::SeqCst) == 0
            {
                break;
            }
            std::thread::yield_now();
        }
        self.retired.store(true, Ordering::SeqCst);
        while self.barrier_inflight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        self.drain_solo();
        debug_assert!(
            self.deques.iter().all(|d| d.is_empty()),
            "work appeared after barrier retirement"
        );
    }

    // --- Merging. ------------------------------------------------------------

    /// Merges every member's to-spaces into per-slot chunk lists. Within each
    /// slot, *a* partially filled bump chunk is moved to the end of the list —
    /// it becomes the heap's resume point; other members' partial chunks keep
    /// their unused tails (bounded internal fragmentation, reclaimed at the
    /// next collection).
    ///
    /// Call after [`EvacEngine::await_team`] (synchronous mode) or
    /// [`EvacEngine::finalize`] (incremental mode); the engine must be
    /// quiescent.
    pub fn merge(&self) -> EvacOutcome {
        debug_assert!(
            self.roots_seeded.load(Ordering::Acquire),
            "merging an evacuation whose roots were never seeded"
        );
        let n_slots = self.zone.n_slots();
        let mut copied_words = 0u64;
        let mut inplace_words = 0u64;
        let mut waste_words = 0u64;
        let mut occupied_words = 0u64;
        let mut steal_blocks = 0u64;
        let mut per_slot: Vec<(Vec<ChunkId>, usize, Option<ChunkId>)> =
            (0..n_slots).map(|_| (Vec::new(), 0, None)).collect();
        for slot in self.slots.iter() {
            let mut w = slot.lock();
            copied_words += w.copied_words;
            inplace_words += w.inplace_words;
            waste_words += w.waste_words;
            steal_blocks += w.steal_blocks;
            for (si, to) in w.tos.iter_mut().enumerate() {
                let merged = &mut per_slot[si];
                merged.0.append(&mut to.chunks);
                merged.1 += to.words;
                occupied_words += to.words as u64;
                if let Some(cur) = to.current.take() {
                    merged.2 = Some(cur.id());
                }
            }
        }
        // To-space conservation: every occupying word is a copied survivor, an
        // in-place-promoted survivor, or an evacuation-race filler.
        debug_assert_eq!(
            copied_words + inplace_words + waste_words,
            occupied_words,
            "to-space words unaccounted for"
        );
        let per_slot = per_slot
            .into_iter()
            .map(|(mut chunks, words, partial)| {
                // Resume-point invariant: heaps bump-allocate from the *last*
                // chunk of the list, so make sure that is a partially filled
                // bump chunk, not a full or dedicated chunk that happened to be
                // merged after it. Constant-time swap_remove — the list is
                // otherwise unordered, and the common single-member case
                // already has the bump chunk last.
                if let Some(cur) = partial {
                    if chunks.last() != Some(&cur) {
                        if let Some(pos) = chunks.iter().position(|&c| c == cur) {
                            chunks.swap_remove(pos);
                            chunks.push(cur);
                        }
                    }
                }
                (chunks, words)
            })
            .collect();
        EvacOutcome {
            per_slot,
            copied_words,
            inplace_words,
            waste_words,
            occupied_words,
            steal_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_objmodel::ObjKind;

    #[test]
    fn span_packing_roundtrips() {
        let span = pack_span(ChunkId(7), 12, 400);
        assert_eq!(unpack_span(span), (ChunkId(7), 12, 400));
        let span = pack_span(ChunkId(u32::MAX), u32::MAX, u32::MAX);
        assert_eq!(unpack_span(span), (ChunkId(u32::MAX), u32::MAX, u32::MAX));
        assert!(!span_is_raw(span));
        let raw = pack_raw_span(ChunkId(7), 12, 400);
        assert!(span_is_raw(raw));
        assert_eq!(unpack_span(raw), (ChunkId(7), 12, 400));
    }

    /// A single-slot zone over one owner — the flat baselines' shape, reused
    /// here to exercise the engine without a heap hierarchy.
    struct TestZone {
        store: Arc<ChunkStore>,
        owner: u32,
        hint: usize,
    }

    impl EvacZone for TestZone {
        fn n_slots(&self) -> usize {
            1
        }
        fn alloc_dedicated(&self, _slot: u16, header: Header) -> (Arc<Chunk>, ObjPtr) {
            self.store.alloc_dedicated(self.owner, header)
        }
        fn alloc_chunk(&self, _slot: u16, min_words: usize) -> Arc<Chunk> {
            self.store.alloc_chunk(self.owner, min_words.max(self.hint))
        }
    }

    fn build_list(store: &Arc<ChunkStore>, owner: u32, n: u64) -> (Vec<ChunkId>, ObjPtr) {
        let mut chunks = Vec::new();
        let mut cur_chunk: Option<Arc<Chunk>> = None;
        let mut list = ObjPtr::NULL;
        for i in 0..n {
            let header = Header::new(3, 2, ObjKind::Cons);
            let ptr = loop {
                if let Some(c) = &cur_chunk {
                    if let Some(p) = store.alloc_in_chunk(c, header) {
                        break p;
                    }
                }
                let c = store.alloc_chunk(owner, header.size_words());
                chunks.push(c.id());
                cur_chunk = Some(c);
            };
            let v = store.view(ptr);
            v.set_field_ptr(0, ObjPtr::NULL);
            v.set_field_ptr(1, list);
            v.set_field(2, i);
            list = ptr;
        }
        (chunks, list)
    }

    fn walk_tags(store: &Arc<ChunkStore>, mut cur: ObjPtr) -> Vec<u64> {
        let mut tags = Vec::new();
        while !cur.is_null() {
            let v = store.view(cur);
            tags.push(v.field(2));
            cur = v.field_ptr(1);
        }
        tags
    }

    #[test]
    fn solo_synchronous_evacuation_preserves_the_graph() {
        let store = Arc::new(ChunkStore::new(256));
        let owner = 9;
        let (chunks, list) = build_list(&store, owner, 5);
        let epoch = store.next_gc_epoch();
        for &c in &chunks {
            store.chunk(c).set_gc_from_space(epoch, 0);
        }
        let engine = EvacEngine::new(
            TestZone {
                store: Arc::clone(&store),
                owner,
                hint: 256,
            },
            Arc::clone(&store),
            epoch,
            1,
            false,
        );
        let roots = Mutex::new(vec![list]);
        engine.run_trigger(|fwd| {
            for r in roots.lock().iter_mut() {
                *r = fwd(*r);
            }
        });
        engine.await_team();
        let outcome = engine.merge();
        assert_eq!(outcome.copied_words, 5 * 5);
        assert_eq!(outcome.waste_words, 0);
        assert_eq!(outcome.per_slot.len(), 1);
        assert_eq!(outcome.per_slot[0].1, 25);
        let new_root = roots.lock()[0];
        assert_ne!(new_root, list);
        assert_eq!(walk_tags(&store, new_root), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn incremental_evacuation_drains_in_bounded_slices() {
        let store = Arc::new(ChunkStore::new(256));
        let owner = 11;
        let (chunks, list) = build_list(&store, owner, 200);
        let epoch = store.next_gc_epoch();
        for &c in &chunks {
            store.chunk(c).set_gc_from_space(epoch, 0);
        }
        let engine = EvacEngine::new(
            TestZone {
                store: Arc::clone(&store),
                owner,
                hint: 256,
            },
            Arc::clone(&store),
            epoch,
            1,
            true,
        );
        let roots = Mutex::new(vec![list]);
        engine.seed_roots(|fwd| {
            for r in roots.lock().iter_mut() {
                *r = fwd(*r);
            }
        });
        // Drain in small increments; each slice is bounded.
        let mut increments = 0;
        while !engine.drain_increment(64) {
            increments += 1;
            assert!(increments < 1_000, "incremental drain failed to terminate");
        }
        engine.finalize();
        let outcome = engine.merge();
        assert_eq!(outcome.copied_words, 200 * 5);
        assert!(
            increments > 1,
            "budget of 64 words must take several slices"
        );
        let new_root = roots.lock()[0];
        assert_eq!(walk_tags(&store, new_root).len(), 200);
    }

    #[test]
    fn barrier_forward_evacuates_on_access_and_bounces_after_retirement() {
        let store = Arc::new(ChunkStore::new(256));
        let owner = 13;
        let (chunks, list) = build_list(&store, owner, 3);
        let epoch = store.next_gc_epoch();
        for &c in &chunks {
            store.chunk(c).set_gc_from_space(epoch, 0);
        }
        let engine = EvacEngine::new(
            TestZone {
                store: Arc::clone(&store),
                owner,
                hint: 256,
            },
            Arc::clone(&store),
            epoch,
            1,
            true,
        );
        let roots = Mutex::new(vec![list]);
        engine.seed_roots(|fwd| {
            for r in roots.lock().iter_mut() {
                *r = fwd(*r);
            }
        });
        // A mutator touches the (already-evacuated) head through a stale
        // pointer: the barrier returns the existing copy.
        let via_barrier = engine.barrier_forward(list).expect("engine is live");
        assert_eq!(via_barrier, roots.lock()[0]);
        engine.finalize();
        assert_eq!(engine.barrier_forward(list), None, "retired engine bounces");
        let outcome = engine.merge();
        assert_eq!(outcome.copied_words, 3 * 5);
    }
}
