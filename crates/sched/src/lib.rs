//! # hh-sched — work-stealing fork/join scheduler
//!
//! The paper's runtime (Appendix B) schedules nested fork/join tasks with a
//! work-stealing scheduler: `forkjoin` is cheap because the left branch runs immediately
//! in the calling user-level thread while only the right branch is exposed to thieves;
//! expensive task bookkeeping happens only when a steal actually occurs.
//!
//! This crate reproduces that structure for the Rust runtimes in this repository:
//!
//! * a [`Pool`] of worker OS threads, each with its own LIFO [`JobQueue`] plus a shared
//!   injector for external (root) work;
//! * [`Worker::join`], the work-first fork/join primitive: the left closure runs inline,
//!   the right is pushed onto the current worker's queue, and while the right branch is
//!   stolen the parent *helps* by executing other local jobs or stealing;
//! * a [`Safepoints`] coordinator used by the stop-the-world baseline runtime to park
//!   every worker at a safe point while a single thread collects.
//!
//! The queues use a mutex-protected deque rather than a lock-free Chase–Lev deque: the
//! evaluation of this repository compares *runtimes against each other on the same
//! scheduler*, so scheduler constant factors cancel out, and the simpler structure is
//! easy to show correct (see `queue::tests`).
//!
//! The only `unsafe` code in the whole workspace lives in [`job::erase_lifetime`], which
//! lifetime-erases the boxed right-branch closure exactly the way rayon does; soundness
//! is argued there (the parent never returns before the branch has finished executing).

#![warn(missing_docs)]

pub mod job;
pub mod pool;
pub mod queue;
pub mod safepoint;

pub use job::JobCell;
pub use pool::{Pool, PoolConfig, Worker};
pub use queue::JobQueue;
pub use safepoint::Safepoints;
