//! # hh-sched — work-stealing fork/join scheduler (v2)
//!
//! The paper's runtime (Appendix B) schedules nested fork/join tasks with a
//! work-stealing scheduler: `forkjoin` is cheap because the left branch runs immediately
//! in the calling user-level thread while only the right branch is exposed to thieves;
//! expensive task bookkeeping happens only when a steal actually occurs.
//!
//! This crate reproduces that structure for the Rust runtimes in this repository:
//!
//! * a [`Pool`] of worker OS threads, each with its own lock-free Chase–Lev
//!   [`JobQueue`] (owner-LIFO, thief-FIFO), plus a mutex-protected injector for
//!   external (root) work;
//! * [`Worker::join`] / [`Worker::join_context`], the work-first fork/join primitive:
//!   the left closure runs inline, the right lives in a **stack-resident job** (no
//!   heap allocation on the unstolen fast path) pushed onto the current worker's
//!   deque. `join_context` hands the right branch a `stolen` flag — the on-steal hook
//!   through which upper layers pay steal-only costs, like the hierarchical runtime's
//!   lazy child-heap creation;
//! * a parking-based idle protocol: pushes wake at most one sleeper (and only when the
//!   sleeper counter says someone is parked), idle workers spin briefly over
//!   randomized steal victims and then park on a condvar; wake tokens close the
//!   park-vs-push race. See `pool::worker_loop`;
//! * a [`Safepoints`] coordinator used by the stop-the-world baseline runtime to park
//!   every worker at a safe point while a single thread collects; its wake hook plugs
//!   into [`Pool::waker`] so parked workers promptly reach the safepoint.
//!
//! DESIGN.md (repository root) describes the deque memory orderings, the wake-token
//! protocol, and the steal-time heap-creation interplay in detail.
//!
//! The `unsafe` code in this crate is confined to the job layer ([`job`]): stack jobs
//! are lifetime-erased exactly the way rayon's are, and soundness is argued where the
//! erasure happens (the forking frame never returns before the branch has finished
//! executing); the Chase–Lev deque's orderings follow Lê et al. (PPoPP 2013) and are
//! exercised by a growth-and-theft stress test in `queue::tests`.

#![warn(missing_docs)]

pub mod evac;
pub mod job;
pub mod pool;
pub mod queue;
pub mod safepoint;
pub mod team;

pub use evac::{EvacEngine, EvacOutcome, EvacZone, SCAN_BLOCK_WORDS};
pub use job::JobRef;
pub use pool::{Pool, PoolConfig, PoolWaker, SchedStats, Worker};
pub use queue::{Injector, JobQueue, Span, SpanDeque};
pub use safepoint::Safepoints;
pub use team::TeamSync;
