//! Dynamic-membership team synchronization for parallel collections (GC v2).
//!
//! A *GC team* is the set of threads cooperating on one collection: the thread that
//! triggered it (always member 0) plus any drafted helpers — idle pool workers that
//! picked up a helper job ([`crate::Pool::run_gc_team`]) or mutators parked at a
//! stop-the-world safepoint ([`crate::Safepoints::begin_pause_work`]). Helpers are
//! **best-effort**: the collection must complete with whichever members actually
//! arrive, and a helper arriving after the work is done must get out of the way
//! immediately. [`TeamSync`] provides exactly that:
//!
//! * trigger pre-registration ([`TeamSync::with_trigger`]): the triggering member
//!   counts as registered from the moment the team state is constructed — i.e.
//!   **before** any helper job or pause-work offer is published. Without this, a
//!   fast helper could register, find no work (roots not seeded yet), observe
//!   itself as the whole team idle, and finish the collection before the trigger
//!   ever joined — silently retiring the zone with all live data in it;
//! * [`TeamSync::try_register`] — dynamic membership for helpers: joins the team
//!   unless the collection has already finished;
//! * idle tracking ([`TeamSync::enter_idle`] / [`TeamSync::exit_idle`]) feeding the
//!   termination rule *all registered members idle ∧ no visible work*. Idle members
//!   create no work, so once every member is idle and the shared queues are empty no
//!   work can ever appear again — the member that observes this calls
//!   [`TeamSync::finish`];
//! * departure counting: the triggering thread blocks in
//!   [`TeamSync::await_departures`] until every member has deposited its results and
//!   left, after which it owns all per-member state again and can merge it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Registration, idle-based termination, and departure tracking for one collection
/// team (see the module docs).
#[derive(Default)]
pub struct TeamSync {
    registered: AtomicUsize,
    idle: AtomicUsize,
    departed: AtomicUsize,
    done: AtomicBool,
}

impl TeamSync {
    /// Creates the synchronization state of a team with no members yet.
    pub fn new() -> TeamSync {
        TeamSync::default()
    }

    /// Creates the synchronization state of a team with the **triggering member
    /// already registered**. Use this whenever helpers are published before the
    /// trigger runs its member body (the usual shape: inject helper jobs / post the
    /// pause-work offer, then run member 0 inline): the trigger counts toward
    /// [`TeamSync::all_idle`] from the start, so a fast helper can never observe an
    /// all-idle team and [`TeamSync::finish`] before member 0 has seeded the roots.
    /// The trigger must **not** call [`TeamSync::try_register`]; it still departs
    /// normally.
    pub fn with_trigger() -> TeamSync {
        let t = TeamSync::default();
        t.registered.store(1, Ordering::SeqCst);
        t
    }

    /// Joins the team. Returns `false` if the collection has already finished (the
    /// caller must not touch any team state); membership is withdrawn again if the
    /// team finished while we were joining.
    pub fn try_register(&self) -> bool {
        if self.done.load(Ordering::Acquire) {
            return false;
        }
        self.registered.fetch_add(1, Ordering::SeqCst);
        if self.done.load(Ordering::SeqCst) {
            // Raced with completion; withdraw so `await_departures` doesn't wait
            // for a member that never worked.
            self.registered.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Number of members currently registered.
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::SeqCst)
    }

    /// Announces this member as idle (it holds no work and will create none until
    /// [`TeamSync::exit_idle`]).
    pub fn enter_idle(&self) {
        self.idle.fetch_add(1, Ordering::SeqCst);
    }

    /// Revokes the idle announcement (the member found work).
    pub fn exit_idle(&self) {
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }

    /// True if every registered member is currently idle. Combined with "no visible
    /// work" by the caller, this is the termination condition: idle members create
    /// no work, so the conjunction is stable once observed.
    pub fn all_idle(&self) -> bool {
        self.idle.load(Ordering::SeqCst) == self.registered.load(Ordering::SeqCst)
    }

    /// Marks the collection finished. Idempotent; every member observes it and
    /// departs.
    pub fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
    }

    /// True once the collection has finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Records this member's departure (its per-member state is complete and will
    /// not be touched again).
    pub fn depart(&self) {
        self.departed.fetch_add(1, Ordering::Release);
    }

    /// RAII departure: the returned guard calls [`TeamSync::depart`] when
    /// dropped, including on unwind. Members take one right after registering
    /// (or, for the trigger, right after construction), so a member that
    /// panics out of its work loop still departs — without this, the
    /// trigger's [`TeamSync::await_departures`] would spin forever on a
    /// registration whose thread is gone.
    pub fn depart_on_drop(&self) -> DepartGuard<'_> {
        DepartGuard { team: self }
    }

    /// Blocks (spinning with yields — departures are imminent once the team is
    /// done) until every registered member has departed. Only the triggering member
    /// calls this, after its own [`TeamSync::depart`].
    pub fn await_departures(&self) {
        debug_assert!(self.is_done(), "awaiting departures before finish");
        while self.departed.load(Ordering::Acquire) != self.registered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    }
}

/// Guard returned by [`TeamSync::depart_on_drop`]: departs the team exactly
/// once, when dropped.
pub struct DepartGuard<'a> {
    team: &'a TeamSync,
}

impl Drop for DepartGuard<'_> {
    fn drop(&mut self) {
        self.team.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_member_lifecycle() {
        let t = TeamSync::new();
        assert!(t.try_register());
        let guard = t.depart_on_drop();
        t.enter_idle();
        t.finish();
        drop(guard);
        t.await_departures();
    }

    #[test]
    fn depart_guard_departs_on_unwind() {
        let t = TeamSync::new();
        assert!(t.try_register());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = t.depart_on_drop();
            panic!("member killed mid-collection");
        }));
        assert!(r.is_err());
        t.finish();
        // The registration did not dangle: await_departures returns.
        t.await_departures();
    }

    #[test]
    fn solo_member_lifecycle_manual() {
        let t = TeamSync::new();
        assert!(t.try_register());
        assert_eq!(t.registered(), 1);
        assert!(!t.all_idle());
        t.enter_idle();
        assert!(t.all_idle());
        t.finish();
        assert!(t.is_done());
        t.depart();
        t.await_departures();
        // Late arrivals bounce off.
        assert!(!t.try_register());
        assert_eq!(t.registered(), 1);
    }

    #[test]
    fn members_arriving_after_finish_are_rejected_and_withdrawn() {
        let t = Arc::new(TeamSync::new());
        assert!(t.try_register());
        t.enter_idle();
        t.finish();
        t.depart();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || t.try_register()));
        }
        for h in handles {
            assert!(!h.join().unwrap());
        }
        t.await_departures();
        assert_eq!(t.registered(), 1, "late arrivals must not inflate the team");
    }

    #[test]
    fn pre_registered_trigger_blocks_early_termination() {
        // The bug this guards against: helpers are published before the trigger
        // runs, so a fast helper that registers into an otherwise-empty team and
        // finds no work must NOT be able to finish the collection — the trigger is
        // pre-registered and non-idle until it has seeded the roots.
        let t = Arc::new(TeamSync::with_trigger());
        assert_eq!(t.registered(), 1);
        // A helper joins before the trigger's member body has started.
        assert!(t.try_register());
        t.enter_idle(); // helper is idle...
        assert!(
            !t.all_idle(),
            "an idle helper alone must not satisfy the termination condition \
             while the pre-registered trigger has not gone idle"
        );
        // Trigger runs: seeds roots (non-idle), then goes idle — now the team may
        // terminate.
        t.enter_idle();
        assert!(t.all_idle());
        t.finish();
        t.depart(); // helper
        t.depart(); // trigger
        t.await_departures();
    }

    #[test]
    fn idle_tracking_across_threads() {
        let t = Arc::new(TeamSync::new());
        assert!(t.try_register());
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            if !t2.try_register() {
                return;
            }
            t2.enter_idle();
            while !t2.is_done() {
                std::thread::yield_now();
            }
            t2.depart();
        });
        // Wait until the helper is idle, then terminate.
        t.enter_idle();
        while !t.all_idle() {
            t.exit_idle();
            std::thread::yield_now();
            t.enter_idle();
        }
        t.finish();
        t.depart();
        h.join().unwrap();
        t.await_departures();
    }
}
