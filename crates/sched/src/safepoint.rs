//! Cooperative stop-the-world safepoints.
//!
//! The `mlton-spoonhower` baseline in the paper performs *sequential, stop-the-world*
//! garbage collection: when a collection is needed, every processor stops at a safe
//! point and a single thread collects. [`Safepoints`] provides that coordination for
//! the baseline runtimes in this repository:
//!
//! * every worker thread participating in mutator work [`register`](Safepoints::register)s
//!   itself;
//! * mutators call [`poll`](Safepoints::poll) at allocation sites, writes, and scheduler
//!   idle loops; if a collection has been requested they park until it finishes;
//! * the thread that wants to collect calls [`stop_the_world`](Safepoints::stop_the_world)
//!   with the collection closure; it runs once all *other* registered threads are parked.
//!
//! This is a cooperative protocol: a registered thread that never polls delays the
//! collection (a liveness, not a safety, concern). The runtimes in this repository poll
//! on every allocation and at every fork/join, which bounds the wait by one sequential
//! grain of work.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

#[derive(Default)]
struct State {
    parked: usize,
}

type WakeHook = Arc<dyn Fn() + Send + Sync>;

/// Work offered to threads parked at the safepoint (GC v2: the parallel collector's
/// team entry). The generation lets each parked thread run a given offer exactly
/// once — after its helper stint it goes back to waiting for the resume signal.
#[derive(Default)]
struct PauseWork {
    generation: u64,
    work: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// Stop-the-world coordination for the baseline collectors.
#[derive(Default)]
pub struct Safepoints {
    registered: AtomicUsize,
    requested: AtomicBool,
    state: Mutex<State>,
    parked_cv: Condvar,
    resume_cv: Condvar,
    collector_lock: Mutex<()>,
    world_stops: AtomicUsize,
    /// Work offered to parked threads while a collection runs (see [`PauseWork`]).
    pause_work: Mutex<PauseWork>,
    /// Invoked right after a collection is requested. The parking scheduler needs
    /// this: workers parked on the pool's sleep condvar are not polling, so the
    /// collector would otherwise wait out their parking timeout. The baselines install
    /// `PoolWaker::wake_all` here, which kicks every parked worker back into its idle
    /// loop where the idle hook polls (and parks them at this safepoint instead).
    wake_hook: OnceLock<WakeHook>,
}

impl Safepoints {
    /// Creates a coordinator with no registered threads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the calling thread as a mutator that will poll.
    pub fn register(&self) {
        self.registered.fetch_add(1, Ordering::SeqCst);
    }

    /// Unregisters the calling thread (it will no longer poll).
    pub fn unregister(&self) {
        let prev = self.registered.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "unregister without register");
        // A collector may be waiting for this thread to park; wake it so it can
        // re-evaluate its target.
        self.parked_cv.notify_all();
    }

    /// Number of registered mutator threads.
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::SeqCst)
    }

    /// Number of stop-the-world pauses that have completed.
    pub fn world_stops(&self) -> usize {
        self.world_stops.load(Ordering::SeqCst)
    }

    /// Installs the hook run whenever a collection is requested (see the field doc).
    /// Set-once; later calls are ignored.
    pub fn set_wake_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        let _ = self.wake_hook.set(Arc::new(hook));
    }

    /// True if a collection has been requested and mutators should park.
    #[inline]
    pub fn collection_requested(&self) -> bool {
        self.requested.load(Ordering::Acquire)
    }

    /// Fast safepoint check: parks the calling thread for the duration of any pending
    /// collection. Call this at allocation sites, mutation sites, and idle loops.
    #[inline]
    pub fn poll(&self) {
        if self.collection_requested() {
            self.park();
        }
    }

    /// Offers `work` to every thread parked at this safepoint for the duration of
    /// the current stop-the-world pause (GC v2: *drafting* — instead of sleeping
    /// through the collection, parked mutators run the parallel collector's team
    /// entry). Each parked thread runs the offer at most once, then resumes waiting;
    /// the offer must therefore not return until the team has no more work for it.
    ///
    /// Call only from inside the collection closure of
    /// [`Safepoints::stop_the_world`] (the world is stopped, so the drafted threads
    /// are exactly the parked mutators), and pair with
    /// [`Safepoints::end_pause_work`] before the closure returns.
    pub fn begin_pause_work(&self, work: Arc<dyn Fn() + Send + Sync>) {
        {
            let mut pw = self.pause_work.lock();
            pw.generation += 1;
            pw.work = Some(work);
        }
        // Parked threads wait on the resume condvar; poke them so they notice the
        // offer. (Lock the state mutex so the notify cannot slot between a parked
        // thread's re-check and its wait.)
        let _st = self.state.lock();
        self.resume_cv.notify_all();
    }

    /// Withdraws the offer installed by [`Safepoints::begin_pause_work`].
    pub fn end_pause_work(&self) {
        self.pause_work.lock().work = None;
    }

    fn park(&self) {
        // The parked count is decremented through an unwind guard: a pause-work
        // offer that panics (an injected fault inside a drafted helper stint)
        // unwinds through this frame with the state lock *released*, and a
        // leaked `parked` increment would let the next collector count a thread
        // as parked that is actually gone — stopping the world one thread
        // short. Declared before `st` so it drops after the lock guard.
        struct ParkedToken<'a>(&'a Safepoints);
        impl Drop for ParkedToken<'_> {
            fn drop(&mut self) {
                self.0.state.lock().parked -= 1;
            }
        }
        let _token;
        let mut st = self.state.lock();
        st.parked += 1;
        _token = ParkedToken(self);
        self.parked_cv.notify_all();
        // Generations start at 1, so 0 never suppresses a real offer.
        let mut ran_generation = 0u64;
        while self.requested.load(Ordering::Acquire) {
            let offer = {
                let pw = self.pause_work.lock();
                if pw.work.is_some() && pw.generation != ran_generation {
                    ran_generation = pw.generation;
                    pw.work.clone()
                } else {
                    None
                }
            };
            if let Some(work) = offer {
                // Help the collection. The thread stays *logically* parked (it
                // performs no mutator work), but the state lock is released so the
                // collector and other helpers are not serialized on it.
                drop(st);
                work();
                st = self.state.lock();
                continue;
            }
            self.resume_cv.wait(&mut st);
        }
        drop(st);
    }

    /// Stops the world and runs `collect` while all other registered threads are parked.
    ///
    /// Returns `true` if `collect` ran. If another thread is already collecting, this
    /// thread parks like any other mutator and returns `false` once that collection is
    /// over (the caller should then re-check whether a collection is still needed).
    pub fn stop_the_world<F: FnOnce()>(&self, collect: F) -> bool {
        match self.collector_lock.try_lock() {
            Some(_guard) => {
                self.requested.store(true, Ordering::Release);
                // Get parked scheduler workers moving so they hit a poll and park
                // *here* instead of sleeping out their pool timeout.
                if let Some(hook) = self.wake_hook.get() {
                    hook();
                }
                {
                    let mut st = self.state.lock();
                    // Wait until every *other* registered thread is parked. The target is
                    // re-read each iteration because threads may unregister while we wait.
                    loop {
                        let target = self.registered().saturating_sub(1);
                        if st.parked >= target {
                            break;
                        }
                        self.parked_cv.wait(&mut st);
                    }
                }
                // Resume the world through an unwind guard: if `collect` panics
                // (a fault-injected collection), leaving `requested` set would
                // park every future poller forever. The guard also withdraws
                // any pause-work offer the collection left installed, so a
                // stale offer cannot leak into the next pause.
                struct ResumeWorld<'a>(&'a Safepoints);
                impl Drop for ResumeWorld<'_> {
                    fn drop(&mut self) {
                        self.0.pause_work.lock().work = None;
                        self.0.requested.store(false, Ordering::Release);
                        let _st = self.0.state.lock();
                        self.0.resume_cv.notify_all();
                    }
                }
                let resume = ResumeWorld(self);
                collect();
                drop(resume);
                self.world_stops.fetch_add(1, Ordering::SeqCst);
                true
            }
            None => {
                // Somebody else is collecting; behave like a mutator hitting a safepoint.
                self.poll();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn single_thread_world_stop_runs_collector() {
        let sp = Safepoints::new();
        sp.register();
        let mut ran = false;
        assert!(sp.stop_the_world(|| ran = true));
        assert!(ran);
        assert_eq!(sp.world_stops(), 1);
        assert!(!sp.collection_requested());
        sp.unregister();
    }

    #[test]
    fn mutators_park_while_collection_runs() {
        let sp = Arc::new(Safepoints::new());
        let n_mutators = 4;
        let in_mutator_during_gc = Arc::new(AtomicUsize::new(0));
        let gc_running = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));

        for _ in 0..n_mutators {
            sp.register();
        }
        sp.register(); // the collector thread is registered too

        let mut handles = Vec::new();
        for _ in 0..n_mutators {
            let sp = Arc::clone(&sp);
            let flag = Arc::clone(&gc_running);
            let bad = Arc::clone(&in_mutator_during_gc);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sp.poll();
                    // "Mutator work": if we are here while the collector claims the
                    // world is stopped, the protocol is broken.
                    if flag.load(Ordering::SeqCst) {
                        bad.fetch_add(1, Ordering::SeqCst);
                    }
                    std::hint::spin_loop();
                }
            }));
        }

        std::thread::sleep(Duration::from_millis(10));
        for _ in 0..5 {
            let flag = Arc::clone(&gc_running);
            let ran = sp.stop_the_world(|| {
                flag.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                flag.store(false, Ordering::SeqCst);
            });
            assert!(ran);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            in_mutator_during_gc.load(Ordering::SeqCst),
            0,
            "mutator observed running during a stop-the-world pause"
        );
        assert_eq!(sp.world_stops(), 5);
    }

    #[test]
    fn panicking_collection_resumes_the_world() {
        let sp = Safepoints::new();
        sp.register();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sp.stop_the_world(|| panic!("injected collection fault"))
        }));
        assert!(r.is_err());
        // The unwind guard cleared the request; nothing parks forever.
        assert!(!sp.collection_requested());
        // And the coordinator is still usable for the next collection.
        let mut ran = false;
        assert!(sp.stop_the_world(|| ran = true));
        assert!(ran);
        sp.unregister();
    }

    #[test]
    fn panicking_pause_work_does_not_leak_parked_count() {
        let sp = Arc::new(Safepoints::new());
        sp.register(); // collector
        sp.register(); // mutator
        let sp2 = Arc::clone(&sp);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                sp2.poll();
                std::hint::spin_loop();
            }));
            assert!(r.is_err(), "the drafted helper stint should have panicked");
            sp2.unregister();
        });
        let sp3 = Arc::clone(&sp);
        let ran = sp.stop_the_world(|| {
            sp3.begin_pause_work(Arc::new(|| panic!("drafted helper fault")));
            // Wait for the parked mutator to pick up the offer and die of it.
            std::thread::sleep(Duration::from_millis(20));
            sp3.end_pause_work();
        });
        assert!(ran);
        h.join().unwrap();
        // The panicked helper's park token was returned on unwind; a leak here
        // would make a later collector count a dead thread as parked.
        assert_eq!(sp.state.lock().parked, 0);
        let mut ran2 = false;
        assert!(sp.stop_the_world(|| ran2 = true));
        assert!(ran2);
        sp.unregister();
    }

    #[test]
    fn concurrent_collection_requests_do_not_deadlock() {
        let sp = Arc::new(Safepoints::new());
        let collections = Arc::new(AtomicUsize::new(0));
        let n_threads = 4;
        for _ in 0..n_threads {
            sp.register();
        }
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let sp = Arc::clone(&sp);
            let collections = Arc::clone(&collections);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    sp.poll();
                    if sp.stop_the_world(|| {
                        collections.fetch_add(1, Ordering::SeqCst);
                    }) {
                        // collected
                    }
                }
                sp.unregister();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(collections.load(Ordering::SeqCst) > 0);
        assert_eq!(sp.registered(), 0);
    }
}
