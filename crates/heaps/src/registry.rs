//! The heap registry: creation, lookup, hierarchy maintenance, and `heapOf`.

use crate::heap::Heap;
use crate::id::HeapId;
use hh_objmodel::{AppendVec, ChunkForensics, ChunkStore, Header, ObjPtr};
use std::sync::Arc;

/// One disentanglement violation found by [`HeapRegistry::check_disentangled`]:
/// a pointer field whose target's heap is *not* an ancestor of (or equal to) the
/// holder's heap, together with the chunk-level forensics ([`ChunkForensics`]:
/// run tag, gc tag epoch/slot/FROM-TO bits, retirement, generation) of both ends.
/// The context is captured at detection time so a violation seen once under a
/// racy schedule is diagnosable from its report alone.
#[derive(Clone, Debug)]
pub struct EntanglementViolation {
    /// The object holding the offending pointer.
    pub holder: ObjPtr,
    /// Index of the offending pointer field within the holder.
    pub field: usize,
    /// Resolved heap of the holder.
    pub holder_heap: HeapId,
    /// Depth of the holder's heap.
    pub holder_depth: u32,
    /// Forensics of the chunk the holder lives in.
    pub holder_chunk: ChunkForensics,
    /// The pointee.
    pub target: ObjPtr,
    /// Resolved heap of the pointee — not an ancestor of `holder_heap`.
    pub target_heap: HeapId,
    /// Depth of the pointee's heap.
    pub target_depth: u32,
    /// Forensics of the chunk the pointee lives in.
    pub target_chunk: ChunkForensics,
}

impl std::fmt::Display for EntanglementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} field {} in heap {:?} (depth {}) [{}] -> {:?} in non-ancestor heap {:?} (depth {}) [{}]",
            self.holder,
            self.field,
            self.holder_heap,
            self.holder_depth,
            self.holder_chunk,
            self.target,
            self.target_heap,
            self.target_depth,
            self.target_chunk,
        )
    }
}

/// The global table of heaps plus the operations that maintain the hierarchy.
///
/// The registry owns the [`ChunkStore`] so that `heapOf` — chunk lookup followed by
/// merge-link resolution — is a single-object operation.
///
/// Heap creation is lock-free: ids are reserved by the [`AppendVec`]'s fetch-and-add
/// (see [`AppendVec::push_with`]), so concurrent steals — the only multi-threaded
/// source of heap creation under the lazy steal-time policy — never serialize on a
/// global mutex.
pub struct HeapRegistry {
    store: Arc<ChunkStore>,
    heaps: AppendVec<Arc<Heap>>,
}

impl HeapRegistry {
    /// Creates an empty registry over the given chunk store.
    pub fn new(store: Arc<ChunkStore>) -> Self {
        HeapRegistry {
            store,
            heaps: AppendVec::new(),
        }
    }

    /// The underlying chunk store.
    #[inline]
    pub fn store(&self) -> &Arc<ChunkStore> {
        &self.store
    }

    /// Number of heaps ever created.
    pub fn n_heaps(&self) -> usize {
        self.heaps.len()
    }

    fn create(&self, parent: HeapId, depth: u32, run_tag: u64) -> HeapId {
        // Atomic id reservation: the AppendVec's fetch-and-add assigns the index and
        // the heap is constructed *with* that index, so id == table slot holds by
        // construction, without a creation lock.
        let idx = self.heaps.push_with(|idx| {
            Arc::new(Heap::new_tagged(HeapId(idx as u32), parent, depth, run_tag))
        });
        HeapId(idx as u32)
    }

    /// Creates a root heap (depth 0, no parent), not attributed to any run epoch.
    pub fn new_root_heap(&self) -> HeapId {
        self.create(HeapId::NONE, 0, 0)
    }

    /// Creates a root heap attributed to the run holding epoch `run_tag` (drawn from
    /// the store's [`hh_objmodel::RunEpochs`]): every chunk the run's heap tree
    /// allocates carries the tag, so disposal stamps the quarantine with the run's
    /// own epoch and the watermark can reclaim it without global quiescence.
    pub fn new_root_heap_for_run(&self, run_tag: u64) -> HeapId {
        self.create(HeapId::NONE, 0, run_tag)
    }

    /// `newChildHeap`: creates a heap one level below `parent`, inheriting the
    /// parent's run tag (a run's whole heap tree shares one epoch).
    pub fn new_child_heap(&self, parent: HeapId) -> HeapId {
        let parent_heap = self.heap(parent);
        debug_assert!(parent_heap.is_live(), "forking a child under a merged heap");
        self.create(parent, parent_heap.depth() + 1, parent_heap.run_tag())
    }

    /// Looks up a heap by id.
    ///
    /// # Panics
    /// Panics on [`HeapId::NONE`] or an id that was never created.
    #[inline]
    pub fn heap(&self, id: HeapId) -> &Arc<Heap> {
        debug_assert!(!id.is_none(), "looking up HeapId::NONE");
        self.heaps
            .get(id.raw() as usize)
            .expect("dangling HeapId: heap not present in registry")
    }

    /// Resolves a (possibly merged) heap id to the live heap currently holding its
    /// objects, compressing the forwarding chain as it goes.
    pub fn resolve(&self, id: HeapId) -> HeapId {
        let mut cur = id;
        // First pass: find the representative.
        loop {
            let h = self.heap(cur);
            let next = h.merged_into();
            if next.is_none() {
                break;
            }
            cur = next;
        }
        // Second pass: path compression.
        let root = cur;
        let mut walk = id;
        while walk != root {
            let h = self.heap(walk);
            let next = h.merged_into();
            if next.is_none() {
                break;
            }
            h.compress_merged_into(next, root);
            walk = next;
        }
        root
    }

    /// `heapOf`: the live heap currently holding the object at `ptr`.
    ///
    /// Implemented as chunk-metadata lookup (the paper's address-mask lookup) followed by
    /// merge-link resolution; the chunk's owner field is path-compressed so repeated
    /// queries are O(1).
    pub fn heap_of(&self, ptr: ObjPtr) -> HeapId {
        let chunk = self.store.chunk(ptr.chunk());
        let recorded = HeapId::from_raw(chunk.owner());
        let resolved = self.resolve(recorded);
        if resolved != recorded {
            chunk.compare_set_owner(recorded.raw(), resolved.raw());
        }
        resolved
    }

    /// `depth`: the depth of (the resolved version of) heap `id`.
    pub fn depth(&self, id: HeapId) -> u32 {
        self.heap(self.resolve(id)).depth()
    }

    /// `freshObj`: allocates an object with `header` in (the resolved version of) `heap`.
    pub fn alloc_obj(&self, heap: HeapId, header: Header) -> ObjPtr {
        let live = self.resolve(heap);
        self.heap(live).alloc_obj(&self.store, header)
    }

    /// `joinHeap(parent, child)`: merges `child` into `parent`.
    ///
    /// The child's chunks are spliced onto the parent's chunk list and the child records
    /// a forwarding link; no objects are copied. The child must be a live heap whose
    /// resolved parent is `parent`.
    pub fn join_heap(&self, parent: HeapId, child: HeapId) {
        let parent = self.resolve(parent);
        let child_heap = self.heap(child);
        debug_assert!(child_heap.is_live(), "joining an already-merged heap");
        debug_assert_ne!(parent, child, "joining a heap into itself");
        let parent_heap = self.heap(parent);
        parent_heap.absorb_chunks_of(child_heap);
        child_heap.set_merged_into(parent);
    }

    /// True if `ancestor` is `h` itself or a (transitive) parent of `h`, after resolving
    /// merges. This is the relation used to define disentanglement.
    pub fn is_ancestor_or_self(&self, ancestor: HeapId, h: HeapId) -> bool {
        let ancestor = self.resolve(ancestor);
        let mut cur = self.resolve(h);
        loop {
            if cur == ancestor {
                return true;
            }
            let parent = self.heap(cur).parent();
            if parent.is_none() {
                return false;
            }
            cur = self.resolve(parent);
        }
    }

    /// Every live heap in the subtree rooted at (the resolved version of) `root`:
    /// the root itself plus each live descendant, i.e. heaps created by steals that
    /// have not yet been merged back by their fork's join.
    ///
    /// O(heaps ever created): the registry keeps no child lists, so this scans the
    /// table. Collections are rare (they trigger on multi-megabyte thresholds), which
    /// keeps the scan off every hot path; a per-heap child index would pay its
    /// maintenance cost on every fork instead.
    pub fn live_subtree(&self, root: HeapId) -> Vec<HeapId> {
        let root = self.resolve(root);
        let mut out = Vec::new();
        for idx in 0..self.heaps.len() {
            let id = HeapId(idx as u32);
            if self.heap(id).is_live() && self.is_ancestor_or_self(root, id) {
                out.push(id);
            }
        }
        out
    }

    /// Disposes of the heap subtree rooted at `root`: every chunk of every live heap
    /// in the subtree is retired (entering the store's quarantine) and the heaps'
    /// allocation states are emptied.
    ///
    /// Used by runtimes once a run has completed and its result has been consumed:
    /// the tree is unreachable, so its memory can flow back to the allocator via
    /// [`ChunkStore::reclaim_retired`]. Returns the number of chunks retired.
    pub fn dispose_subtree(&self, root: HeapId) -> usize {
        self.dispose_subtree_in(root, 0..self.heaps.len())
    }

    /// As [`HeapRegistry::dispose_subtree`], restricted to heaps whose registry index
    /// lies in `ids` — the range a runtime recorded while the run was active. This
    /// keeps the disposal scan proportional to the *run's* heap count instead of
    /// every heap the registry ever created (heaps never leave the table), which
    /// matters when one runtime serves many runs back to back. `root` need not lie
    /// in the range check itself; it is disposed unconditionally.
    pub fn dispose_subtree_in(&self, root: HeapId, ids: std::ops::Range<usize>) -> usize {
        let root = self.resolve(root);
        let mut retired = 0;
        let mut dispose_one = |id: HeapId| {
            for chunk in self.heap(id).take_all_chunks() {
                self.store.retire_chunk(chunk);
                retired += 1;
            }
        };
        dispose_one(root);
        for idx in ids {
            let id = HeapId(idx as u32);
            if id != root && self.heap(id).is_live() && self.is_ancestor_or_self(root, id) {
                dispose_one(id);
            }
        }
        retired
    }

    /// Walks every pointer field of every object in every live heap and checks the
    /// disentanglement invariant: each pointee's heap is an ancestor of (or equal to)
    /// the pointer's heap. Returns one [`EntanglementViolation`] per offending field,
    /// each carrying the chunk forensics of both ends.
    ///
    /// This is a debugging / property-testing facility: it is O(heap size) and assumes
    /// the hierarchy is quiescent while it runs.
    pub fn check_disentangled(&self) -> Vec<EntanglementViolation> {
        let mut violations = Vec::new();
        for idx in 0..self.heaps.len() {
            let heap = self.heap(HeapId(idx as u32));
            if !heap.is_live() {
                continue;
            }
            let from_heap = heap.id();
            for chunk_id in heap.chunks() {
                let chunk = self.store.chunk(chunk_id);
                let mut off = 0usize;
                while off < chunk.used() {
                    let view = hh_objmodel::ObjView::new(chunk, off as u32);
                    let header = view.header();
                    if off + header.size_words() > chunk.used() {
                        // Raw bump-gap tail: a failed `try_bump` advances the
                        // cursor past the last real object (benign over-bump), so
                        // the words from here on are unwritten — not objects.
                        break;
                    }
                    for f in 0..header.n_ptr() {
                        let target = view.field_ptr(f);
                        if target.is_null() {
                            continue;
                        }
                        let to_heap = self.heap_of(target);
                        if !self.is_ancestor_or_self(to_heap, from_heap) {
                            violations.push(EntanglementViolation {
                                holder: ObjPtr::new(chunk_id, off as u32),
                                field: f,
                                holder_heap: from_heap,
                                holder_depth: self.depth(from_heap),
                                holder_chunk: chunk.forensics(),
                                target,
                                target_heap: to_heap,
                                target_depth: self.depth(to_heap),
                                target_chunk: self.store.chunk(target.chunk()).forensics(),
                            });
                        }
                    }
                    off += header.size_words();
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_objmodel::ObjKind;

    fn registry() -> HeapRegistry {
        HeapRegistry::new(Arc::new(ChunkStore::new(256)))
    }

    #[test]
    fn root_and_children_depths() {
        let reg = registry();
        let root = reg.new_root_heap();
        let a = reg.new_child_heap(root);
        let b = reg.new_child_heap(root);
        let aa = reg.new_child_heap(a);
        assert_eq!(reg.depth(root), 0);
        assert_eq!(reg.depth(a), 1);
        assert_eq!(reg.depth(b), 1);
        assert_eq!(reg.depth(aa), 2);
        assert_eq!(reg.heap(aa).parent(), a);
        assert_eq!(reg.n_heaps(), 4);
    }

    #[test]
    fn heap_of_fresh_allocation() {
        let reg = registry();
        let root = reg.new_root_heap();
        let child = reg.new_child_heap(root);
        let p = reg.alloc_obj(child, Header::new(1, 0, ObjKind::Ref));
        assert_eq!(reg.heap_of(p), child);
        let q = reg.alloc_obj(root, Header::new(1, 0, ObjKind::Ref));
        assert_eq!(reg.heap_of(q), root);
    }

    #[test]
    fn join_redirects_heap_of_and_depth() {
        let reg = registry();
        let root = reg.new_root_heap();
        let child = reg.new_child_heap(root);
        let p = reg.alloc_obj(child, Header::new(2, 0, ObjKind::Tuple));
        reg.join_heap(root, child);
        assert_eq!(reg.heap_of(p), root);
        assert_eq!(reg.depth(child), 0, "resolved depth follows the merge");
        assert_eq!(reg.resolve(child), root);
        assert!(!reg.heap(child).is_live());
        // Allocating "into" the merged heap goes to the parent.
        let q = reg.alloc_obj(child, Header::new(1, 0, ObjKind::Ref));
        assert_eq!(reg.heap_of(q), root);
    }

    #[test]
    fn chained_joins_resolve_to_root() {
        let reg = registry();
        let root = reg.new_root_heap();
        let mut ids = vec![root];
        for _ in 0..10 {
            let child = reg.new_child_heap(*ids.last().unwrap());
            ids.push(child);
        }
        let deepest = *ids.last().unwrap();
        let p = reg.alloc_obj(deepest, Header::new(1, 0, ObjKind::Ref));
        // Join bottom-up.
        for w in ids.windows(2).rev() {
            reg.join_heap(w[0], w[1]);
        }
        assert_eq!(reg.heap_of(p), root);
        for &id in &ids {
            assert_eq!(reg.resolve(id), root);
        }
    }

    #[test]
    fn ancestor_relation() {
        let reg = registry();
        let root = reg.new_root_heap();
        let a = reg.new_child_heap(root);
        let b = reg.new_child_heap(root);
        let aa = reg.new_child_heap(a);
        assert!(reg.is_ancestor_or_self(root, aa));
        assert!(reg.is_ancestor_or_self(a, aa));
        assert!(reg.is_ancestor_or_self(aa, aa));
        assert!(!reg.is_ancestor_or_self(b, aa));
        assert!(!reg.is_ancestor_or_self(aa, a));
        // After joining a into root, root is still an ancestor of aa through the merge.
        reg.join_heap(root, a);
        assert!(reg.is_ancestor_or_self(root, aa));
        assert!(
            reg.is_ancestor_or_self(a, aa),
            "merged heap resolves to root"
        );
    }

    #[test]
    fn disentanglement_checker_accepts_up_pointers_and_flags_down_pointers() {
        let reg = registry();
        let root = reg.new_root_heap();
        let child = reg.new_child_heap(root);
        let parent_obj = reg.alloc_obj(root, Header::new(1, 1, ObjKind::Ref));
        let child_obj = reg.alloc_obj(child, Header::new(1, 1, ObjKind::Ref));
        // Up-pointer: child -> root object. Allowed.
        reg.store().view(child_obj).set_field_ptr(0, parent_obj);
        assert!(reg.check_disentangled().is_empty());
        // Down-pointer: root object -> child object. Violation.
        reg.store().view(parent_obj).set_field_ptr(0, child_obj);
        let violations = reg.check_disentangled();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].holder_heap, root);
        assert_eq!(violations[0].target_heap, child);
        assert_eq!(violations[0].holder_depth, 0);
        assert_eq!(violations[0].target_depth, 1);
        assert_eq!(violations[0].field, 0);
        // Joining the child into the root resolves the violation (same heap now).
        reg.join_heap(root, child);
        assert!(reg.check_disentangled().is_empty());
    }

    #[test]
    fn cross_pointer_between_siblings_is_flagged() {
        let reg = registry();
        let root = reg.new_root_heap();
        let left = reg.new_child_heap(root);
        let right = reg.new_child_heap(root);
        let l = reg.alloc_obj(left, Header::new(1, 1, ObjKind::Ref));
        let r = reg.alloc_obj(right, Header::new(1, 1, ObjKind::Ref));
        reg.store().view(l).set_field_ptr(0, r);
        let violations = reg.check_disentangled();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].holder_heap, left);
        assert_eq!(violations[0].target_heap, right);
        // Both ends report their chunk forensics (fresh chunks: active, untagged).
        assert!(!violations[0].holder_chunk.retired);
        assert_eq!(violations[0].target_chunk.gc_epoch, 0);
    }

    #[test]
    fn live_subtree_tracks_merges() {
        let reg = registry();
        let root = reg.new_root_heap();
        let a = reg.new_child_heap(root);
        let b = reg.new_child_heap(root);
        let aa = reg.new_child_heap(a);
        let other_root = reg.new_root_heap();
        let mut sub = reg.live_subtree(root);
        sub.sort();
        assert_eq!(sub, vec![root, a, b, aa]);
        assert!(!sub.contains(&other_root));
        reg.join_heap(a, aa);
        reg.join_heap(root, a);
        let mut sub = reg.live_subtree(root);
        sub.sort();
        assert_eq!(sub, vec![root, b], "merged heaps leave the live subtree");
        assert_eq!(reg.live_subtree(other_root), vec![other_root]);
    }

    #[test]
    fn dispose_subtree_retires_every_chunk() {
        let reg = registry();
        let root = reg.new_root_heap();
        let child = reg.new_child_heap(root);
        let _p = reg.alloc_obj(root, Header::new(3, 0, ObjKind::Tuple));
        let _q = reg.alloc_obj(child, Header::new(3, 0, ObjKind::Tuple));
        let live_before = reg.store().stats().live_words;
        assert!(live_before > 0);
        let retired = reg.dispose_subtree(root);
        assert!(retired >= 2);
        assert_eq!(reg.heap(root).n_chunks(), 0);
        assert_eq!(reg.heap(child).n_chunks(), 0);
        let s = reg.store().stats();
        assert_eq!(s.live_words, 0);
        assert_eq!(s.chunks_quarantined, retired);
    }

    #[test]
    fn concurrent_child_creation_and_allocation() {
        let reg = Arc::new(HeapRegistry::new(Arc::new(ChunkStore::new(256))));
        let root = reg.new_root_heap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for _ in 0..50 {
                    let child = reg.new_child_heap(root);
                    let p = reg.alloc_obj(child, Header::new(3, 0, ObjKind::Tuple));
                    assert_eq!(reg.heap_of(p), child);
                    reg.join_heap(root, child);
                    assert_eq!(reg.heap_of(p), root);
                    ptrs.push(p);
                }
                ptrs
            }));
        }
        let mut all: Vec<ObjPtr> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8 * 50);
        for p in all {
            assert_eq!(reg.heap_of(p), root);
        }
    }
}
